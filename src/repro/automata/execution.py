"""Executions, histories and fairness of I/O automata (Section 2/3.2).

An execution is an alternating sequence ``s0 a1 s1 a2 ...`` with
``s0`` initial and every ``(s_i, a_{i+1}, s_{i+1})`` a transition; a
history is its external-action subsequence.  The paper's fairness:

* a finite execution is fair iff no action (other than crash actions)
  is enabled at its final state;
* an infinite execution is fair iff every *component* either takes
  infinitely many actions or is infinitely often at a state where none
  of its non-crash actions is enabled.

For finite automata we represent infinite executions as lassos
(``stem + cycle``) and decide the per-component clause on the cycle.
Component attribution is by an action-ownership function (in the
paper, actions carry process subscripts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.automata.automaton import Action, IOAutomaton, State
from repro.util.errors import ModelError


@dataclass(frozen=True)
class Execution:
    """A finite execution: ``states[0] actions[0] states[1] ...``."""

    states: Tuple[State, ...]
    actions: Tuple[Action, ...]

    def __post_init__(self) -> None:
        if len(self.states) != len(self.actions) + 1:
            raise ModelError("execution must alternate states and actions")

    @property
    def final_state(self) -> State:
        return self.states[-1]

    def history(self, automaton: IOAutomaton) -> Tuple[Action, ...]:
        """The external-action subsequence."""
        external = automaton.signature.external
        return tuple(a for a in self.actions if a in external)


def validate_execution(automaton: IOAutomaton, execution: Execution) -> None:
    """Raise :class:`ModelError` unless the execution is legal."""
    if execution.states[0] not in automaton.initial:
        raise ModelError("execution must start in an initial state")
    for i, action in enumerate(execution.actions):
        if execution.states[i + 1] not in automaton.successors(
            execution.states[i], action
        ):
            raise ModelError(
                f"illegal step {execution.states[i]!r} --{action!r}--> "
                f"{execution.states[i + 1]!r}"
            )


def enumerate_executions(
    automaton: IOAutomaton, max_actions: int
) -> List[Execution]:
    """All executions with at most ``max_actions`` actions (DFS)."""
    results: List[Execution] = []

    def extend(states: List[State], actions: List[Action]) -> None:
        results.append(Execution(tuple(states), tuple(actions)))
        if len(actions) >= max_actions:
            return
        current = states[-1]
        for action in sorted(automaton.enabled(current), key=repr):
            for target in sorted(automaton.successors(current, action), key=repr):
                extend(states + [target], actions + [action])

    for initial in sorted(automaton.initial, key=repr):
        extend([initial], [])
    return results


def is_fair_finite(
    automaton: IOAutomaton,
    execution: Execution,
    crash_actions: FrozenSet[Action] = frozenset(),
) -> bool:
    """Clause (I): no non-crash action enabled at the final state."""
    enabled = automaton.enabled(execution.final_state)
    return not (enabled - crash_actions)


@dataclass(frozen=True)
class Lasso:
    """An infinite execution ``stem · cycle^ω`` of a finite automaton."""

    stem: Execution
    cycle_actions: Tuple[Action, ...]
    cycle_states: Tuple[State, ...]  # states *after* each cycle action

    def __post_init__(self) -> None:
        if len(self.cycle_actions) != len(self.cycle_states):
            raise ModelError("cycle actions and states must align")
        if not self.cycle_actions:
            raise ModelError("a lasso needs a non-empty cycle")
        if self.cycle_states[-1] != self.stem.final_state:
            raise ModelError("cycle must return to the stem's final state")


def is_fair_lasso(
    automaton: IOAutomaton,
    lasso: Lasso,
    owner: Callable[[Action], Optional[Hashable]],
    components: Sequence[Hashable],
    crash_actions: FrozenSet[Action] = frozenset(),
) -> bool:
    """Clause (II) on a lasso.

    A component is treated fairly iff it owns an action occurring in
    the cycle, or some state visited in the cycle enables none of its
    non-crash actions.
    """
    cycle_visited: List[State] = [lasso.stem.final_state, *lasso.cycle_states]
    for component in components:
        acts_in_cycle = any(
            owner(action) == component for action in lasso.cycle_actions
        )
        if acts_in_cycle:
            continue
        idle_somewhere = any(
            not any(
                owner(action) == component
                for action in automaton.enabled(state) - crash_actions
            )
            for state in cycle_visited
        )
        if not idle_somewhere:
            return False
    return True
