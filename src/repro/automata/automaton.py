"""I/O automata (Section 2), faithfully.

An I/O automaton is a 4-tuple ``(states, sig, init, trans)`` with the
action signature partitioning actions into input, output and internal
actions.  The paper uses them to *define* implementations, executions,
histories and fairness; this subpackage implements the definitions for
finite automata so the test suite can check the model-level facts the
paper relies on — input-enabledness, composition with hiding, the
crash construction, and fairness of finite and lassoing executions.

States and actions are arbitrary hashable values.  Transitions are a
set of ``(state, action, state)`` triples; determinism is not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from repro.util.errors import ModelError

State = Hashable
Action = Hashable
Transition = Tuple[State, Action, State]


@dataclass(frozen=True)
class Signature:
    """The action signature ``sig(A) = (in, out, int)``."""

    inputs: FrozenSet[Action]
    outputs: FrozenSet[Action]
    internals: FrozenSet[Action] = frozenset()

    def __post_init__(self) -> None:
        if self.inputs & self.outputs:
            raise ModelError("input and output actions must be disjoint")
        if self.internals & (self.inputs | self.outputs):
            raise ModelError("internal actions must be disjoint from external")

    @property
    def external(self) -> FrozenSet[Action]:
        """External actions: inputs and outputs."""
        return self.inputs | self.outputs

    @property
    def all_actions(self) -> FrozenSet[Action]:
        """``acts(A)``."""
        return self.inputs | self.outputs | self.internals


class IOAutomaton:
    """A finite I/O automaton."""

    def __init__(
        self,
        name: str,
        states: Iterable[State],
        initial: Iterable[State],
        signature: Signature,
        transitions: Iterable[Transition],
    ):
        self.name = name
        self.states: FrozenSet[State] = frozenset(states)
        self.initial: FrozenSet[State] = frozenset(initial)
        self.signature = signature
        self.transitions: FrozenSet[Transition] = frozenset(transitions)
        if not self.initial <= self.states:
            raise ModelError(f"{name}: initial states must be states")
        for source, action, target in self.transitions:
            if source not in self.states or target not in self.states:
                raise ModelError(f"{name}: transition endpoints must be states")
            if action not in self.signature.all_actions:
                raise ModelError(f"{name}: unknown action {action!r}")
        self._successors: Dict[Tuple[State, Action], Set[State]] = {}
        for source, action, target in self.transitions:
            self._successors.setdefault((source, action), set()).add(target)

    # -- basic queries ------------------------------------------------------------

    def enabled(self, state: State) -> FrozenSet[Action]:
        """Actions enabled at ``state``."""
        return frozenset(
            action
            for (source, action) in self._successors
            if source == state
        )

    def successors(self, state: State, action: Action) -> FrozenSet[State]:
        """States reachable by one ``action`` step."""
        return frozenset(self._successors.get((state, action), ()))

    def is_input_enabled(self) -> bool:
        """Every input action enabled at every state (the model's
        requirement on implementation automata)."""
        return all(
            self.successors(state, action)
            for state in self.states
            for action in self.signature.inputs
        )

    # -- crash augmentation (Section 2) -------------------------------------------

    def with_crash(self, crash_action: Action, crashed_state: State) -> "IOAutomaton":
        """The paper's crash construction.

        Adds input action ``crash`` and a fresh state ``s_crashed`` at
        which nothing is enabled, with a crash transition from every
        other state.
        """
        if crashed_state in self.states:
            raise ModelError("crashed state must be fresh")
        transitions = set(self.transitions)
        transitions.update(
            (state, crash_action, crashed_state) for state in self.states
        )
        return IOAutomaton(
            name=f"{self.name}+crash",
            states=set(self.states) | {crashed_state},
            initial=self.initial,
            signature=Signature(
                inputs=self.signature.inputs | {crash_action},
                outputs=self.signature.outputs,
                internals=self.signature.internals,
            ),
            transitions=transitions,
        )
