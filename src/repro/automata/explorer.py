"""Reachability and lasso enumeration for finite I/O automata.

Utility layer used by the model-level tests: reachable state space,
reachable cycles (candidate infinite behaviours) and fair-history
extraction.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.automata.automaton import Action, IOAutomaton, State
from repro.automata.execution import Execution, Lasso


def reachable_states(automaton: IOAutomaton) -> FrozenSet[State]:
    """States reachable from some initial state."""
    seen: Set[State] = set(automaton.initial)
    queue = deque(automaton.initial)
    while queue:
        state = queue.popleft()
        for action in automaton.enabled(state):
            for target in automaton.successors(state, action):
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
    return frozenset(seen)


def shortest_execution_to(
    automaton: IOAutomaton, goal: Callable[[State], bool]
) -> Optional[Execution]:
    """BFS for a shortest execution reaching a goal state."""
    parents: Dict[State, Tuple[Optional[State], Optional[Action]]] = {
        state: (None, None) for state in automaton.initial
    }
    queue = deque(automaton.initial)
    target: Optional[State] = None
    for state in automaton.initial:
        if goal(state):
            target = state
            break
    while queue and target is None:
        state = queue.popleft()
        for action in sorted(automaton.enabled(state), key=repr):
            for nxt in sorted(automaton.successors(state, action), key=repr):
                if nxt in parents:
                    continue
                parents[nxt] = (state, action)
                if goal(nxt):
                    target = nxt
                    queue.clear()
                    break
                queue.append(nxt)
            if target is not None:
                break
    if target is None:
        return None
    states: List[State] = [target]
    actions: List[Action] = []
    cursor = target
    while parents[cursor][0] is not None:
        previous, action = parents[cursor]
        states.append(previous)  # type: ignore[arg-type]
        actions.append(action)  # type: ignore[arg-type]
        cursor = previous  # type: ignore[assignment]
    states.reverse()
    actions.reverse()
    return Execution(tuple(states), tuple(actions))


def find_lasso(
    automaton: IOAutomaton,
    through: Optional[Callable[[State], bool]] = None,
    avoid_actions: FrozenSet[Action] = frozenset(),
) -> Optional[Lasso]:
    """Find some lasso (optionally through states satisfying a
    predicate, avoiding given actions in the cycle)."""
    candidates = reachable_states(automaton)
    if through is not None:
        candidates = frozenset(s for s in candidates if through(s))
    for anchor in sorted(candidates, key=repr):
        cycle = _cycle_from(automaton, anchor, avoid_actions)
        if cycle is None:
            continue
        stem = shortest_execution_to(automaton, lambda s: s == anchor)
        if stem is None:
            continue
        actions, states = cycle
        return Lasso(stem=stem, cycle_actions=actions, cycle_states=states)
    return None


def _cycle_from(
    automaton: IOAutomaton, anchor: State, avoid_actions: FrozenSet[Action]
) -> Optional[Tuple[Tuple[Action, ...], Tuple[State, ...]]]:
    """BFS for a non-empty path anchor -> anchor."""
    parents: Dict[State, Tuple[Optional[State], Optional[Action]]] = {}
    queue = deque()
    for action in sorted(automaton.enabled(anchor) - avoid_actions, key=repr):
        for target in sorted(automaton.successors(anchor, action), key=repr):
            if target == anchor:
                return (action,), (anchor,)
            if target not in parents:
                parents[target] = (None, action)  # edge from anchor
                queue.append(target)
    while queue:
        state = queue.popleft()
        for action in sorted(automaton.enabled(state) - avoid_actions, key=repr):
            for target in sorted(automaton.successors(state, action), key=repr):
                if target == anchor:
                    actions: List[Action] = [action]
                    states: List[State] = [anchor]
                    cursor = state
                    while True:
                        previous, edge = parents[cursor]
                        actions.append(edge)  # type: ignore[arg-type]
                        states.append(cursor)
                        if previous is None:
                            break
                        cursor = previous
                    actions.reverse()
                    states.reverse()
                    return tuple(actions), tuple(states)
                if target not in parents:
                    parents[target] = (state, action)
                    queue.append(target)
    return None
