"""Reachability and lasso enumeration for finite I/O automata.

Utility layer used by the model-level tests: reachable state space,
reachable cycles (candidate infinite behaviours) and fair-history
extraction.  All three are thin clients of the unified exploration
engine's :class:`~repro.engine.frontier.GraphSearch` — the same
deduplicated frontier search that drives kernel-configuration
exploration, here walking explicit automaton states instead of
simulated configurations.  Expansion is sorted (by ``repr``) so the
searches stay deterministic across runs.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.automata.automaton import Action, IOAutomaton, State
from repro.automata.execution import Execution, Lasso
from repro.engine.frontier import GraphSearch


def _sorted_expand(
    automaton: IOAutomaton, avoid_actions: FrozenSet[Action] = frozenset()
) -> Callable[[State], Iterator[Tuple[Action, State]]]:
    """Labelled successor callback with deterministic (sorted) order."""

    def expand(state: State) -> Iterator[Tuple[Action, State]]:
        for action in sorted(automaton.enabled(state) - avoid_actions, key=repr):
            for target in sorted(automaton.successors(state, action), key=repr):
                yield action, target

    return expand


def reachable_states(automaton: IOAutomaton) -> FrozenSet[State]:
    """States reachable from some initial state."""
    search = GraphSearch(strategy="bfs")
    return frozenset(
        visit.node
        for visit in search.run(sorted(automaton.initial, key=repr),
                                _sorted_expand(automaton))
    )


def shortest_execution_to(
    automaton: IOAutomaton, goal: Callable[[State], bool]
) -> Optional[Execution]:
    """BFS for a shortest execution reaching a goal state."""
    search = GraphSearch(strategy="bfs")
    for visit in search.run(
        sorted(automaton.initial, key=repr), _sorted_expand(automaton)
    ):
        if goal(visit.node):
            states = search.path_keys(visit.key)
            actions = search.path_labels(visit.key)
            return Execution(tuple(states), tuple(actions))
    return None


def find_lasso(
    automaton: IOAutomaton,
    through: Optional[Callable[[State], bool]] = None,
    avoid_actions: FrozenSet[Action] = frozenset(),
) -> Optional[Lasso]:
    """Find some lasso (optionally through states satisfying a
    predicate, avoiding given actions in the cycle)."""
    candidates = reachable_states(automaton)
    if through is not None:
        candidates = frozenset(s for s in candidates if through(s))
    for anchor in sorted(candidates, key=repr):
        cycle = _cycle_from(automaton, anchor, avoid_actions)
        if cycle is None:
            continue
        stem = shortest_execution_to(automaton, lambda s: s == anchor)
        if stem is None:
            continue
        actions, states = cycle
        return Lasso(stem=stem, cycle_actions=actions, cycle_states=states)
    return None


def _cycle_from(
    automaton: IOAutomaton, anchor: State, avoid_actions: FrozenSet[Action]
) -> Optional[Tuple[Tuple[Action, ...], Tuple[State, ...]]]:
    """BFS for a non-empty path anchor -> anchor.

    The anchor's successors are the labelled roots of the search (the
    anchor itself is *not* pre-visited), so the first time the anchor is
    discovered — possibly as a root, for a self-loop — the path from
    root to discovery is exactly a shortest cycle through the anchor.
    Returns ``(cycle actions, cycle states)`` where the states are the
    targets of the corresponding actions, ending in the anchor.
    """
    expand = _sorted_expand(automaton, avoid_actions)
    roots = list(expand(anchor))  # (action, target) pairs, sorted
    search = GraphSearch(strategy="bfs")
    for visit in search.run(
        [(target, action) for action, target in roots],
        expand,
        root_labels=True,
    ):
        if visit.node == anchor:
            return search.path_labels(visit.key), search.path_keys(visit.key)
    return None
