"""Composition of I/O automata (Section 2).

The paper composes compatible automata with the *hiding* variant:
actions used for communication between components (an input of one
matched by an output of the other) become internal in the composite —
footnote ‡ justifies this simplification because every invocation and
response carries a unique process identifier.

Compatibility: disjoint output sets, and neither automaton's internal
actions meet the other's actions at all.
"""

from __future__ import annotations

import itertools
from typing import Tuple

from repro.automata.automaton import IOAutomaton, Signature
from repro.util.errors import ModelError


def compatible(a: IOAutomaton, b: IOAutomaton) -> bool:
    """The paper's compatibility predicate."""
    if a.signature.outputs & b.signature.outputs:
        return False
    if a.signature.internals & b.signature.all_actions:
        return False
    if b.signature.internals & a.signature.all_actions:
        return False
    return True


def compose(a: IOAutomaton, b: IOAutomaton) -> IOAutomaton:
    """The composition ``A1 × A2`` with hiding of matched actions."""
    if not compatible(a, b):
        raise ModelError(f"{a.name} and {b.name} are not compatible")
    matched = (a.signature.inputs & b.signature.outputs) | (
        b.signature.inputs & a.signature.outputs
    )
    internals = a.signature.internals | b.signature.internals | matched
    inputs = (a.signature.inputs | b.signature.inputs) - internals
    outputs = (a.signature.outputs | b.signature.outputs) - internals
    signature = Signature(
        inputs=frozenset(inputs),
        outputs=frozenset(outputs),
        internals=frozenset(internals),
    )
    states = frozenset(itertools.product(a.states, b.states))
    initial = frozenset(itertools.product(a.initial, b.initial))
    transitions = set()
    for (sa, sb) in states:
        for action in signature.all_actions:
            in_a = action in a.signature.all_actions
            in_b = action in b.signature.all_actions
            targets_a = a.successors(sa, action) if in_a else frozenset({sa})
            targets_b = b.successors(sb, action) if in_b else frozenset({sb})
            if in_a and not targets_a:
                continue
            if in_b and not targets_b:
                continue
            for ta in targets_a:
                for tb in targets_b:
                    transitions.add(((sa, sb), action, (ta, tb)))
    return IOAutomaton(
        name=f"{a.name}x{b.name}",
        states=states,
        initial=initial,
        signature=signature,
        transitions=transitions,
    )
