"""Faithful I/O automata model (Section 2)."""

from repro.automata.automaton import Action, IOAutomaton, Signature, State, Transition
from repro.automata.composition import compatible, compose
from repro.automata.execution import (
    Execution,
    Lasso,
    enumerate_executions,
    is_fair_finite,
    is_fair_lasso,
    validate_execution,
)
from repro.automata.explorer import (
    find_lasso,
    reachable_states,
    shortest_execution_to,
)

__all__ = [
    "Action",
    "IOAutomaton",
    "Signature",
    "State",
    "Transition",
    "compatible",
    "compose",
    "Execution",
    "Lasso",
    "enumerate_executions",
    "is_fair_finite",
    "is_fair_lasso",
    "validate_execution",
    "find_lasso",
    "reachable_states",
    "shortest_execution_to",
]
