"""Unified observability layer: spans, counters, gauges, traces.

See :mod:`repro.obs.recorder` for the core model (one active
:class:`Recorder`, ``active() is None`` as the disabled fast path),
:mod:`repro.obs.metrics` for the ``repro-metrics`` v1 JSON artifact,
:mod:`repro.obs.trace` for Chrome trace-event export, and
:mod:`repro.obs.profile` for the cProfile-backed ``profile`` command.
"""

from repro.obs.metrics import (
    METRICS_SCHEMA,
    METRICS_VERSION,
    merge_metrics,
    metrics_document,
    render_metrics_summary,
    validate_metrics,
    write_metrics,
)
from repro.obs.recorder import (
    MAX_TRACE_EVENTS,
    Recorder,
    Span,
    active,
    install,
    recording,
    span,
)
from repro.obs.trace import (
    chrome_trace_document,
    merge_trace_fragments,
    write_trace,
    write_trace_fragment,
)

__all__ = [
    "MAX_TRACE_EVENTS",
    "METRICS_SCHEMA",
    "METRICS_VERSION",
    "Recorder",
    "Span",
    "active",
    "chrome_trace_document",
    "install",
    "merge_metrics",
    "merge_trace_fragments",
    "metrics_document",
    "recording",
    "render_metrics_summary",
    "span",
    "validate_metrics",
    "write_metrics",
    "write_trace",
    "write_trace_fragment",
]
