"""The ``repro-metrics`` v1 document: serialize, merge, validate.

One recorder serializes to one *metrics document* — the versioned JSON
artifact written by ``verify --metrics-out``, stored per campaign job,
and merged across worker pools.  The shape (schema ``repro-metrics``,
version 1):

.. code-block:: json

    {
      "schema": "repro-metrics",
      "version": 1,
      "label": "verify:agp-opacity",
      "counters": {"fuzz/fast_walks": 1968, "kernel/steps": 125952},
      "gauges": {"fuzz/corpus": 128},
      "spans": {
        "verify/fuzz": {"count": 1, "total_s": 1.234567, "max_s": 1.234567}
      },
      "meta": {"pid": 1234, "dropped_trace_events": 0, "merged_from": 1}
    }

Counter/gauge/span names are slash-namespaced by subsystem
(``engine/``, ``kernel/``, ``safety/``, ``fuzz/``, ``shrink/``,
``liveness/``, ``verify/``, ``campaign/``); the full key schema is
documented in docs/architecture.md ("Observability layer").

Merging is exact for counters and spans (sums; span ``max_s`` maxes)
and takes the maximum for gauges — the merged document of a campaign is
therefore independent of job execution order, and because job metrics
are stored *per job row* (replaced when a reclaimed job re-executes),
a dead-worker reclaim can never double-count.
"""

from __future__ import annotations

import json

from typing import Any, Dict, Iterable, Optional

from repro.obs.recorder import Recorder
from repro.util.errors import UsageError

METRICS_SCHEMA = "repro-metrics"
METRICS_VERSION = 1

#: Float rounding applied to serialized span durations: enough for
#: microsecond resolution, stable enough to diff.
_ROUND = 6


def metrics_document(
    recorder: Recorder, label: Optional[str] = None
) -> Dict[str, Any]:
    """Serialize a recorder to a ``repro-metrics`` v1 document."""
    spans = {
        name: {
            "count": int(entry[0]),
            "total_s": round(entry[1], _ROUND),
            "max_s": round(entry[2], _ROUND),
        }
        for name, entry in sorted(recorder.spans.items())
    }
    counters = {
        name: (int(v) if float(v).is_integer() else round(v, _ROUND))
        for name, v in sorted(recorder.counters.items())
    }
    gauges = {
        name: (int(v) if float(v).is_integer() else round(v, _ROUND))
        for name, v in sorted(recorder.gauges.items())
    }
    return {
        "schema": METRICS_SCHEMA,
        "version": METRICS_VERSION,
        "label": label if label is not None else recorder.label,
        "counters": counters,
        "gauges": gauges,
        "spans": spans,
        "meta": {
            "pid": recorder.pid,
            "dropped_trace_events": recorder.dropped_trace_events,
            "merged_from": 1,
        },
    }


def validate_metrics(document: Any) -> Dict[str, Any]:
    """Check a metrics document against the v1 schema; returns it.

    Raises :class:`UsageError` naming the first offending field —
    used by the tests, the merge path (so one corrupt per-job blob
    fails loudly instead of poisoning the aggregate), and consumers
    loading artifacts back.
    """
    if not isinstance(document, dict):
        raise UsageError(f"metrics document must be an object, got "
                         f"{type(document).__name__}")
    if document.get("schema") != METRICS_SCHEMA:
        raise UsageError(
            f"metrics document schema must be {METRICS_SCHEMA!r}, got "
            f"{document.get('schema')!r}"
        )
    if document.get("version") != METRICS_VERSION:
        raise UsageError(
            f"metrics document version must be {METRICS_VERSION}, got "
            f"{document.get('version')!r}"
        )
    for section in ("counters", "gauges", "spans"):
        value = document.get(section)
        if not isinstance(value, dict):
            raise UsageError(f"metrics document {section!r} must be an "
                             f"object, got {type(value).__name__}")
    for name, entry in document["spans"].items():
        if not isinstance(entry, dict) or not (
            {"count", "total_s", "max_s"} <= set(entry)
        ):
            raise UsageError(
                f"span entry {name!r} must carry count/total_s/max_s"
            )
    return document


def merge_metrics(
    documents: Iterable[Dict[str, Any]], label: Optional[str] = None
) -> Dict[str, Any]:
    """Merge validated v1 documents into one (see module doc).

    ``meta.merged_from`` totals the source documents so a merged
    campaign export says how many job/worker documents fed it.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    spans: Dict[str, Dict[str, float]] = {}
    merged_from = 0
    dropped = 0
    for document in documents:
        validate_metrics(document)
        merged_from += document.get("meta", {}).get("merged_from", 1)
        dropped += document.get("meta", {}).get("dropped_trace_events", 0)
        for name, value in document["counters"].items():
            counters[name] = counters.get(name, 0) + value
        for name, value in document["gauges"].items():
            if name not in gauges or value > gauges[name]:
                gauges[name] = value
        for name, entry in document["spans"].items():
            merged = spans.get(name)
            if merged is None:
                spans[name] = dict(entry)
            else:
                merged["count"] += entry["count"]
                merged["total_s"] = round(
                    merged["total_s"] + entry["total_s"], _ROUND
                )
                if entry["max_s"] > merged["max_s"]:
                    merged["max_s"] = entry["max_s"]
    return {
        "schema": METRICS_SCHEMA,
        "version": METRICS_VERSION,
        "label": label,
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "spans": {k: spans[k] for k in sorted(spans)},
        "meta": {"merged_from": merged_from,
                 "dropped_trace_events": dropped},
    }


def write_metrics(path: str, document: Dict[str, Any]) -> None:
    """Write a metrics document as stable, sorted-key JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_metrics_summary(document: Dict[str, Any], top: int = 20) -> str:
    """A terminal table of the busiest spans and counters.

    Deterministic ordering: spans by total time descending then name,
    counters by value descending then name — ties can never reorder
    between runs of the same document.
    """
    lines = []
    spans = sorted(
        document["spans"].items(),
        key=lambda item: (-item[1]["total_s"], item[0]),
    )[:top]
    if spans:
        lines.append("spans (top by total time):")
        width = max(len(name) for name, _ in spans)
        lines.append(
            f"  {'name'.ljust(width)}  {'count':>9}  {'total_s':>10}  "
            f"{'max_s':>10}"
        )
        for name, entry in spans:
            lines.append(
                f"  {name.ljust(width)}  {entry['count']:>9}  "
                f"{entry['total_s']:>10.4f}  {entry['max_s']:>10.4f}"
            )
    counters = sorted(
        document["counters"].items(), key=lambda item: (-item[1], item[0])
    )[:top]
    if counters:
        if lines:
            lines.append("")
        lines.append("counters (top by value):")
        width = max(len(name) for name, _ in counters)
        for name, value in counters:
            lines.append(f"  {name.ljust(width)}  {value:>12}")
    gauges = sorted(document["gauges"].items())
    if gauges:
        lines.append("")
        lines.append("gauges:")
        width = max(len(name) for name, _ in gauges)
        for name, value in gauges:
            lines.append(f"  {name.ljust(width)}  {value:>12}")
    if not lines:
        lines.append("no metrics recorded")
    return "\n".join(lines)
