"""cProfile-backed hotspot profiling for one scenario verification.

``python -m repro profile <scenario> [--backend ...]`` runs the normal
:func:`repro.scenarios.verify.verify` facade under :mod:`cProfile` with
a recorder installed, then prints

* a **hotspot table**: the top-N functions by cumulative time.  The
  *rendering* is deterministic — rows sort by cumulative time, then
  internal time, then the fully qualified function label, so equal
  timings can never reorder between runs of the same profile — and the
  row set for a fixed seed/scenario is stable because the underlying
  verification is deterministic;
* the span/counter summary of the run's ``repro-metrics`` document
  (:func:`repro.obs.metrics.render_metrics_summary`).

This is the measurement front-end the ROADMAP's kernel-optimization
and partial-order-reduction items are judged against.
"""

from __future__ import annotations

import cProfile
import pstats

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs.metrics import metrics_document
from repro.obs.recorder import recording


@dataclass
class HotspotRow:
    """One function in the hotspot table."""

    calls: int
    tottime: float
    cumtime: float
    label: str  # file:line(function), path shortened for stable display


@dataclass
class ProfileReport:
    """The outcome of a profiled verification."""

    verdict: Any  # Verdict; typed loose to avoid an import cycle
    hotspots: List[HotspotRow]
    metrics: Dict[str, Any]


def _short_label(filename: str, lineno: int, funcname: str) -> str:
    if filename == "~":  # built-ins have no file
        return funcname
    parts = filename.replace("\\", "/").split("/")
    short = "/".join(parts[-2:]) if len(parts) > 1 else filename
    return f"{short}:{lineno}({funcname})"


def hotspot_rows(
    profiler: cProfile.Profile, top: int = 20
) -> List[HotspotRow]:
    """The top-N functions by cumulative time, deterministically tied."""
    stats = pstats.Stats(profiler)
    rows = []
    for (filename, lineno, funcname), entry in stats.stats.items():
        cc, ncalls, tottime, cumtime = entry[0], entry[1], entry[2], entry[3]
        rows.append(
            HotspotRow(
                calls=ncalls,
                tottime=tottime,
                cumtime=cumtime,
                label=_short_label(filename, lineno, funcname),
            )
        )
    rows.sort(key=lambda r: (-r.cumtime, -r.tottime, r.label))
    return rows[:top]


def render_hotspots(rows: List[HotspotRow]) -> str:
    """The hotspot table as terminal text."""
    if not rows:
        return "no profile samples"
    width = max(max(len(row.label) for row in rows), len("function"))
    lines = [
        f"{'calls':>10}  {'tottime_s':>10}  {'cumtime_s':>10}  "
        f"{'function'.ljust(width)}"
    ]
    for row in rows:
        lines.append(
            f"{row.calls:>10}  {row.tottime:>10.4f}  {row.cumtime:>10.4f}  "
            f"{row.label.ljust(width)}"
        )
    return "\n".join(lines)


def profile_verify(
    scenario_id: str,
    backend: str = "auto",
    overrides: Optional[Dict[str, Any]] = None,
    top: int = 20,
) -> ProfileReport:
    """Run ``verify()`` under cProfile with metrics on; see module doc."""
    from repro.scenarios.verify import verify  # deferred: obs sits below

    profiler = cProfile.Profile()
    with recording(label=f"profile:{scenario_id}") as recorder:
        profiler.enable()
        try:
            verdict = verify(scenario_id, backend=backend,
                             **(overrides or {}))
        finally:
            profiler.disable()
    return ProfileReport(
        verdict=verdict,
        hotspots=hotspot_rows(profiler, top=top),
        metrics=metrics_document(recorder),
    )
