"""Chrome trace-event export (Perfetto / chrome://tracing loadable).

Recorders buffer complete ("X"-phase) trace events — one per finished
span, already in Chrome trace format: ``name``, ``cat`` (the span's
subsystem prefix), ``ts``/``dur`` in microseconds, ``pid``/``tid``.
Timestamps are wall-clock (``time.time_ns``), not ``perf_counter``, so
events from different campaign worker processes land on one comparable
timeline.

The export document is the standard JSON object form::

    {"traceEvents": [...], "displayTimeUnit": "ms"}

plus one ``process_name`` metadata event per pid so Perfetto labels
each worker lane.  For multi-process campaigns each worker writes a
*fragment* file (its raw event list + a lane label) and the parent
merges them with :func:`merge_trace_fragments`.
"""

from __future__ import annotations

import json

from typing import Any, Dict, Iterable, List, Optional, Tuple


def chrome_trace_document(
    events: Iterable[Dict[str, Any]],
    process_names: Optional[Dict[int, str]] = None,
) -> Dict[str, Any]:
    """Wrap raw events as a Chrome trace JSON object.

    ``process_names`` maps pid -> lane label (e.g. ``"worker host:12#0"``);
    unnamed pids get a generic label so every lane is titled.
    """
    events = list(events)
    names = dict(process_names or {})
    for event in events:
        names.setdefault(event["pid"], f"repro pid {event['pid']}")
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": names[pid]},
        }
        for pid in sorted(names)
    ]
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_trace(
    path: str,
    events: Iterable[Dict[str, Any]],
    process_names: Optional[Dict[int, str]] = None,
) -> None:
    """Write a Perfetto-loadable trace JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            chrome_trace_document(events, process_names), handle,
            sort_keys=True,
        )
        handle.write("\n")


# ---------------------------------------------------------------------------
# Worker fragments (campaign process pools)
# ---------------------------------------------------------------------------


def write_trace_fragment(
    path: str, worker: str, pid: int, events: List[Dict[str, Any]]
) -> None:
    """One worker's share of a campaign trace (raw events + lane label)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {"worker": worker, "pid": pid, "events": events}, handle,
            sort_keys=True,
        )
        handle.write("\n")


def merge_trace_fragments(
    paths: Iterable[str],
) -> Tuple[List[Dict[str, Any]], Dict[int, str]]:
    """Collect events + lane labels from worker fragment files."""
    events: List[Dict[str, Any]] = []
    names: Dict[int, str] = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            fragment = json.load(handle)
        events.extend(fragment["events"])
        names[fragment["pid"]] = f"worker {fragment['worker']}"
    return events, names
