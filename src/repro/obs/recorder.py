"""The instrumentation core: spans, counters, gauges, one recorder.

Zero-dependency by design: this module sits *below* every subsystem it
instruments (engine, fuzz, liveness, campaign), so it may import nothing
from :mod:`repro` beyond the standard library.  The model is small:

* a :class:`Recorder` aggregates named **counters** (monotone sums),
  **gauges** (last/max observed values), and **spans** (wall-clock
  timers aggregated per name: count, total, max) — and, when ``trace``
  is on, keeps per-span Chrome trace events for Perfetto timelines;
* one module-global *active* recorder, installed with
  :func:`recording` (a context manager) or :func:`install`.  When none
  is installed, :func:`active` returns ``None`` — the **no-op fast
  path**: instrumented hot loops fetch the recorder once per phase and
  guard each increment with a single ``is not None`` check, so the
  disabled overhead is one pointer comparison (the ``obs-smoke`` CI
  gate asserts it is unmeasurable on the BENCH_fuzz throughput
  measurement);
* :func:`span` always *times* (it is how ``verify()`` produces its
  normalized ``elapsed`` stat) but only *records* when a recorder is
  active — timing one span per verify call is free at any scale.

Nesting and merging
-------------------
``recording()`` nests: the previous recorder is reinstalled on exit and
**absorbs** the nested recorder's aggregates (counters summed, spans
merged, the outer recorder's own gauges kept with inner-only gauges
copied, trace events appended with anything unkeepable counted as
dropped).  That is how
``verify()`` gives every verdict its own per-call metrics document
while a CLI-level recorder still sees the session totals, and how
campaign workers fold per-job recorders into per-worker fragments.

Recorders are process-local.  Cross-process aggregation (the campaign
worker pool) is explicit: each worker serializes its documents
(:func:`repro.obs.metrics.metrics_document`) and the parent merges them
(:func:`repro.obs.metrics.merge_metrics`) — identified by ``pid`` so
Chrome traces show one lane per worker.
"""

from __future__ import annotations

import os
import threading
import time

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: Hard cap on buffered trace events per recorder.  A 50k-iteration fuzz
#: run with per-walk spans would otherwise buffer hundreds of thousands
#: of dicts; the cap keeps tracing usable and the drop count is surfaced
#: loudly in the metrics document (``meta.dropped_trace_events``) —
#: never a silent truncation.
MAX_TRACE_EVENTS = 200_000


class Span:
    """A wall-clock timer for one named region (context manager).

    Always measures; reports to ``recorder`` (aggregation + optional
    trace event) only when one is attached.  ``elapsed`` is the duration
    in seconds after exit; :attr:`elapsed_stat` is the canonical rounded
    form every backend publishes as its ``elapsed`` stat.
    """

    __slots__ = ("name", "recorder", "elapsed", "_t0", "_ts_us")

    def __init__(self, name: str, recorder: Optional["Recorder"] = None):
        self.name = name
        self.recorder = recorder
        self.elapsed = 0.0
        self._t0 = 0.0
        self._ts_us = 0

    def __enter__(self) -> "Span":
        if self.recorder is not None and self.recorder.trace:
            self._ts_us = time.time_ns() // 1_000
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._t0
        if self.recorder is not None:
            self.recorder._finish_span(self)

    @property
    def elapsed_stat(self) -> float:
        """The canonical stats encoding of the duration (seconds,
        rounded to 4 digits — the schema every backend shares)."""
        return round(self.elapsed, 4)


class Recorder:
    """Aggregates counters, gauges, and spans for one process/phase.

    Not thread-safe for concurrent *increments* (each thread or worker
    should own its recorder and be merged with :meth:`absorb` /
    :func:`repro.obs.metrics.merge_metrics`); trace events do record
    the emitting thread id so single-recorder multi-thread traces stay
    readable.
    """

    def __init__(self, label: Optional[str] = None, trace: bool = False):
        self.label = label
        self.trace = trace
        self.pid = os.getpid()
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        #: name -> [count, total seconds, max seconds]
        self.spans: Dict[str, List[float]] = {}
        self.trace_events: List[Dict[str, Any]] = []
        self.dropped_trace_events = 0

    # -- the three instruments ---------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to a monotone counter."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record a level; repeated observations keep the maximum.

        Gauges are per-recorder levels, not sums: :meth:`absorb` keeps
        this recorder's own value over an absorbed inner one's."""
        gauges = self.gauges
        if name not in gauges or value > gauges[name]:
            gauges[name] = value

    def span(self, name: str) -> Span:
        """A span that aggregates (and traces) into this recorder."""
        return Span(name, self)

    # -- span/trace plumbing ------------------------------------------------

    def _finish_span(self, span: Span) -> None:
        entry = self.spans.get(span.name)
        if entry is None:
            self.spans[span.name] = [1, span.elapsed, span.elapsed]
        else:
            entry[0] += 1
            entry[1] += span.elapsed
            if span.elapsed > entry[2]:
                entry[2] = span.elapsed
        if self.trace:
            self._trace_event(span.name, span._ts_us, span.elapsed)

    def _trace_event(self, name: str, ts_us: int, elapsed: float) -> None:
        if len(self.trace_events) >= MAX_TRACE_EVENTS:
            self.dropped_trace_events += 1
            return
        self.trace_events.append(
            {
                "name": name,
                "cat": name.partition("/")[0],
                "ph": "X",
                "ts": ts_us,
                "dur": int(elapsed * 1e6),
                "pid": self.pid,
                "tid": threading.get_ident() % 1_000_000,
            }
        )

    # -- merging ------------------------------------------------------------

    def absorb(self, other: "Recorder") -> None:
        """Fold another recorder's aggregates into this one.

        Counters and spans are additive.  Gauges are *not*: a gauge is
        a level this recorder observed itself (e.g. a corpus size at
        the moment it was sampled), so an absorbed inner scope's gauge
        never overrides an outer observation — this recorder keeps its
        own value and copies only the gauges it never observed.  Inner
        trace events append up to the buffer cap; events that cannot be
        kept (over the cap, or tracing off on this recorder while the
        inner one buffered) are added to ``dropped_trace_events``,
        never silently discarded."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, value in other.gauges.items():
            if name not in self.gauges:
                self.gauges[name] = value
        for name, (count, total, peak) in other.spans.items():
            entry = self.spans.get(name)
            if entry is None:
                self.spans[name] = [count, total, peak]
            else:
                entry[0] += count
                entry[1] += total
                if peak > entry[2]:
                    entry[2] = peak
        if self.trace:
            room = MAX_TRACE_EVENTS - len(self.trace_events)
            if room >= len(other.trace_events):
                self.trace_events.extend(other.trace_events)
            else:
                self.trace_events.extend(other.trace_events[:room])
                self.dropped_trace_events += len(other.trace_events) - room
        elif other.trace_events:
            self.dropped_trace_events += len(other.trace_events)
        self.dropped_trace_events += other.dropped_trace_events


# ---------------------------------------------------------------------------
# The active recorder (module-global, None = disabled fast path)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Recorder] = None


def active() -> Optional[Recorder]:
    """The installed recorder, or ``None`` when metrics are off.

    Hot loops call this once per phase and keep the result in a local:
    the disabled cost per instrumented site is then a single
    ``is not None`` check.
    """
    return _ACTIVE


def install(recorder: Optional[Recorder]) -> Optional[Recorder]:
    """Install (or, with ``None``, clear) the active recorder; returns
    the previously installed one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    return previous


@contextmanager
def recording(
    label: Optional[str] = None, trace: bool = False
) -> Iterator[Recorder]:
    """Activate a fresh :class:`Recorder` for the ``with`` body.

    Nestable: on exit the previous recorder is reinstalled and absorbs
    this one's aggregates, so inner scopes (one ``verify()`` call, one
    campaign job) get isolated documents while outer scopes keep
    session totals.
    """
    recorder = Recorder(label=label, trace=trace)
    previous = install(recorder)
    try:
        yield recorder
    finally:
        install(previous)
        if previous is not None:
            previous.absorb(recorder)


def span(name: str) -> Span:
    """A span bound to the active recorder (standalone timer if none).

    The one helper instrumented code needs for coarse regions: it
    always times (``verify()`` derives its ``elapsed`` stat from it)
    and records only when metrics are on.
    """
    return Span(name, _ACTIVE)
