"""Sequential consistency: linearizability minus real time.

Section 3.1 lists linearizability, serializability and opacity as the
canonical safety properties; sequential consistency completes the
classical family and makes the real-time dimension of the checkers
testable by contrast — histories exist that are sequentially consistent
but not linearizable (the suite exhibits the classic stale-read one).

A history is sequentially consistent iff there is a total order of its
operations that (a) respects each process's program order and (b) is
legal for the sequential specification.  The checker reuses the
linearizability search machinery with the precedence relation weakened
from "real-time order between all operations" to "program order within
each process".
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.events import Operation
from repro.core.history import History
from repro.core.object_type import SequentialSpec
from repro.core.properties import SafetyProperty, Verdict
from repro.objects.linearizability import (
    LinearizabilityChecker,
    LinearizabilitySearchExceeded,
)


class _ProgramOrderOperation:
    """Adapter giving an Operation program-order-only precedence."""

    __slots__ = ("op",)

    def __init__(self, op: Operation):
        self.op = op

    @property
    def invocation(self):
        return self.op.invocation

    @property
    def response(self):
        return self.op.response

    @property
    def is_pending(self) -> bool:
        return self.op.is_pending

    def precedes(self, other: "_ProgramOrderOperation") -> bool:
        """Precede only within the same process (program order)."""
        if self.op.invocation.process != other.op.invocation.process:
            return False
        return self.op.index < other.op.index


class SequentialConsistencyChecker(SafetyProperty):
    """Checks sequential consistency against a sequential spec.

    Note: unlike linearizability, sequential consistency is famously
    *not* prefix-closed in general for all object types when responses
    can be justified by future operations of other processes; over a
    finite history the standard finite definition above is what the
    literature checks, and for the read/write histories used here the
    checker is monotone.  The property is provided as a comparison
    point for the real-time-sensitive checkers, not as one of the
    paper's safety properties.
    """

    name = "sequential-consistency"

    def __init__(self, spec: SequentialSpec, max_nodes: int = 500_000):
        self._inner = LinearizabilityChecker(spec, max_nodes=max_nodes)

    def check_history(self, history: History) -> Verdict:
        operations = history.drop_crashes().operations()
        adapted = [_ProgramOrderOperation(op) for op in operations]
        if self._inner._linearizable(adapted):  # reuse the search core
            return Verdict.passed("a sequentially consistent order exists")
        return Verdict.failed(
            f"no program-order-respecting legal order of "
            f"{len(operations)} operations exists",
            witness=history,
        )
