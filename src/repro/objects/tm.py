"""Transactional memory: object type, sentinels, transaction parsing.

The TM object type (Section 4.1) has four operations:

* ``start()`` → ``OK`` or ``ABORTED``;
* ``read(x)`` → a value or ``ABORTED``;
* ``write(x, v)`` → ``OK`` or ``ABORTED``;
* ``tryC()`` → ``COMMITTED`` or ``ABORTED``.

A transaction of process ``p_i`` is the span of events from a ``start``
invocation until the transaction completes: a ``COMMITTED`` response to
``tryC``, an ``ABORTED`` response to any call, or the process's crash.
The *good* responses (the ones constituting progress for TM liveness,
per Section 4.1: requiring responses is trivially satisfiable by
aborting everything) are exactly the ``COMMITTED`` responses, and
progress is of the ``REPEATED`` kind.

This module provides the sentinels, the type factory, and the parser
turning raw histories into :class:`Transaction` records — the common
input of the opacity, strict-serializability and Section-5.3 checkers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.events import Invocation, Response, is_crash, is_invocation, is_response
from repro.core.history import History
from repro.core.object_type import ObjectType, OperationSignature, ProgressMode
from repro.util.errors import IllFormedHistoryError


class _Sentinel:
    """A unique, self-describing response marker."""

    __slots__ = ("_label",)

    def __init__(self, label: str):
        self._label = label

    def __repr__(self) -> str:
        return self._label

    def __deepcopy__(self, memo):  # sentinels are singletons
        return self

    def __copy__(self):
        return self

    def __reduce__(self):
        # Unpickling must yield the singleton, not a twin: fingerprints
        # containing sentinels cross process boundaries in the engine's
        # parallel frontier, and equality is identity.
        return (_sentinel_by_label, (self._label,))


_SENTINEL_REGISTRY: dict = {}


def _sentinel_by_label(label: str) -> "_Sentinel":
    return _SENTINEL_REGISTRY[label]


#: Successful non-committing response (start / write acknowledged).
OK = _SENTINEL_REGISTRY["OK"] = _Sentinel("OK")
#: Commit event ``C``.
COMMITTED = _SENTINEL_REGISTRY["C"] = _Sentinel("C")
#: Abort event ``A``.
ABORTED = _SENTINEL_REGISTRY["A"] = _Sentinel("A")

#: Transaction status labels.
STATUS_COMMITTED = "committed"
STATUS_ABORTED = "aborted"
STATUS_COMMIT_PENDING = "commit-pending"
STATUS_LIVE = "live"

TM_OPERATIONS = ("start", "read", "write", "tryC")


def tm_object_type(
    variables: Sequence[int] = (0,),
    values: Sequence[Any] = (0, 1),
) -> ObjectType:
    """Build the TM object type.

    ``variables`` and ``values`` populate the finite argument/response
    domains used by exhaustive tools; the simulator itself does not
    restrict them.
    """
    variables = tuple(variables)
    values = tuple(values)
    return ObjectType(
        name="tm",
        operations=(
            OperationSignature(
                name="start", argument_domains=(), response_domain=(OK, ABORTED)
            ),
            OperationSignature(
                name="read",
                argument_domains=(variables,),
                response_domain=values + (ABORTED,),
            ),
            OperationSignature(
                name="write",
                argument_domains=(variables, values),
                response_domain=(OK, ABORTED),
            ),
            OperationSignature(
                name="tryC", argument_domains=(), response_domain=(COMMITTED, ABORTED)
            ),
        ),
        sequential_spec=None,  # TM safety is transaction-level; see opacity.py
        good_response=lambda response: response.value is COMMITTED,
        progress_mode=ProgressMode.REPEATED,
    )


@dataclass
class TransactionCall:
    """One call inside a transaction."""

    operation: str
    args: Tuple[Any, ...]
    value: Any  # response value, or None while pending
    invocation_index: int
    response_index: Optional[int]

    @property
    def pending(self) -> bool:
        return self.response_index is None


@dataclass
class Transaction:
    """A parsed transaction of one process.

    ``number`` is the 1-based index of the transaction within its
    process's projection (the paper's "t-th transaction in ``h|p_i``").
    """

    process: int
    number: int
    calls: List[TransactionCall] = field(default_factory=list)
    status: str = STATUS_LIVE
    start_index: int = -1
    end_index: Optional[int] = None

    @property
    def committed(self) -> bool:
        return self.status == STATUS_COMMITTED

    @property
    def aborted(self) -> bool:
        return self.status == STATUS_ABORTED

    @property
    def completed(self) -> bool:
        return self.status in (STATUS_COMMITTED, STATUS_ABORTED)

    @property
    def start_response_index(self) -> Optional[int]:
        """Global index of the response to ``start`` (None if pending)."""
        for call in self.calls:
            if call.operation == "start":
                return call.response_index
        return None

    @property
    def tryc_invocation_index(self) -> Optional[int]:
        """Global index of the ``tryC`` invocation (None if absent)."""
        for call in self.calls:
            if call.operation == "tryC":
                return call.invocation_index
        return None

    def reads(self) -> List[Tuple[int, Any]]:
        """Completed, non-aborted reads as ``(variable, observed value)``,
        excluding reads that observe the transaction's own earlier
        writes (those are justified locally, not by the serialization)."""
        own: Dict[Any, Any] = {}
        out: List[Tuple[int, Any]] = []
        for call in self.calls:
            if call.operation == "write" and call.value is OK:
                own[call.args[0]] = call.args[1]
            elif (
                call.operation == "read"
                and call.response_index is not None
                and call.value is not ABORTED
            ):
                variable = call.args[0]
                if variable in own:
                    if call.value != own[variable]:
                        out.append((variable, call.value))  # own-write violation
                else:
                    out.append((variable, call.value))
        return out

    def own_write_violation(self) -> Optional[Tuple[int, Any, Any]]:
        """A read that contradicts the transaction's own prior write,
        as ``(variable, written, observed)`` — an unconditional safety
        violation no serialization can repair."""
        own: Dict[Any, Any] = {}
        for call in self.calls:
            if call.operation == "write" and call.value is OK:
                own[call.args[0]] = call.args[1]
            elif (
                call.operation == "read"
                and call.response_index is not None
                and call.value is not ABORTED
            ):
                variable = call.args[0]
                if variable in own and call.value != own[variable]:
                    return (variable, own[variable], call.value)
        return None

    def write_set(self) -> Dict[Any, Any]:
        """Final acknowledged write per variable."""
        writes: Dict[Any, Any] = {}
        for call in self.calls:
            if call.operation == "write" and call.value is OK:
                writes[call.args[0]] = call.args[1]
        return writes

    def precedes(self, other: "Transaction") -> bool:
        """Real-time precedence: this transaction completed before the
        other started."""
        return self.end_index is not None and self.end_index < other.start_index

    def concurrent_with(self, other: "Transaction") -> bool:
        """Neither transaction precedes the other."""
        return not self.precedes(other) and not other.precedes(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<T p{self.process}#{self.number} {self.status} "
            f"[{self.start_index}..{self.end_index}]>"
        )


def parse_transactions(history: History) -> List[Transaction]:
    """Parse a TM history into transactions, in start order.

    Raises :class:`IllFormedHistoryError` on TM-level protocol
    violations (a ``read`` outside any transaction, a call after the
    transaction committed, ...).  A crash leaves the process's open
    transaction uncompleted: like any other uncompleted transaction it
    ends up ``live`` — or ``commit-pending`` when the crash hit between
    the ``tryC`` invocation and its response, since the internal commit
    point may already have been reached (the completion rule must be
    allowed to commit it; found by the schedule fuzzer's crash
    injection).
    """
    current: Dict[int, Transaction] = {}
    counters: Dict[int, int] = {}
    transactions: List[Transaction] = []

    for index, event in enumerate(history):
        pid = event.process
        if is_crash(event):
            # Keep the open transaction in ``current``: well-formedness
            # guarantees no further events from this process, and the
            # end-of-history sweep below classifies it (live or
            # commit-pending) exactly like a transaction cut off by the
            # end of the prefix.
            continue
        if is_invocation(event):
            operation = event.operation
            if operation == "start":
                if pid in current:
                    raise IllFormedHistoryError(
                        f"p{pid} starts a transaction inside transaction "
                        f"#{current[pid].number}"
                    )
                counters[pid] = counters.get(pid, 0) + 1
                transaction = Transaction(
                    process=pid, number=counters[pid], start_index=index
                )
                current[pid] = transaction
                transactions.append(transaction)
            else:
                if pid not in current:
                    raise IllFormedHistoryError(
                        f"p{pid} invokes {operation} outside any transaction"
                    )
            if pid in current:
                current[pid].calls.append(
                    TransactionCall(
                        operation=operation,
                        args=event.args,
                        value=None,
                        invocation_index=index,
                        response_index=None,
                    )
                )
            continue
        if is_response(event):
            if pid not in current:
                raise IllFormedHistoryError(
                    f"response {event} for p{pid} outside any transaction"
                )
            transaction = current[pid]
            call = transaction.calls[-1]
            call.value = event.value
            call.response_index = index
            if event.value is ABORTED:
                transaction.status = STATUS_ABORTED
                transaction.end_index = index
                del current[pid]
            elif event.operation == "tryC":
                if event.value is not COMMITTED:
                    raise IllFormedHistoryError(
                        f"tryC returned {event.value!r}; expected C or A"
                    )
                transaction.status = STATUS_COMMITTED
                transaction.end_index = index
                del current[pid]

    for transaction in current.values():
        if (
            transaction.calls
            and transaction.calls[-1].operation == "tryC"
            and transaction.calls[-1].pending
        ):
            transaction.status = STATUS_COMMIT_PENDING

    transactions.sort(key=lambda t: t.start_index)
    return transactions


def committed_transactions(history: History) -> List[Transaction]:
    """Only the committed transactions, in start order."""
    return [t for t in parse_transactions(history) if t.committed]
