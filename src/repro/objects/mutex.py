"""Mutual exclusion as a safety property over lock histories.

The lock object type (:mod:`repro.algorithms.locks.lock_type`) has no
sequential specification — linearizability is the wrong judge for a
lock, whose whole point is the *temporal* exclusion between the grant
and the release.  This checker decides the classic condition directly:
no two processes may hold the lock at the same time, where a process
holds the lock from the response to its ``acquire`` until it *invokes*
``release`` (the invocation, not the response: a correct lock may grant
the next waiter while the releaser's response is still in flight, and
that overlap is not a violation).

A crashed process stops holding the lock at its crash event — a crash
inside the critical section cannot retroactively create an exclusion
violation, it just (for blocking locks) starves everyone else, which is
a liveness matter outside this property's scope.

Prefix closure: the checker scans the event sequence and fails at the
first moment two processes hold simultaneously; extensions of a failing
history keep that moment, so the verdict is monotone.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.events import Crash, Invocation, Response
from repro.core.history import History
from repro.core.properties import SafetyProperty, Verdict


class MutualExclusionChecker(SafetyProperty):
    """No two overlapping critical sections, ever."""

    name = "mutual-exclusion"

    def check_history(self, history: History) -> Verdict:
        holding: Set[int] = set()
        for index, event in enumerate(history):
            if isinstance(event, Response) and event.operation == "acquire":
                holding.add(event.process)
                if len(holding) > 1:
                    inside = ", ".join(f"p{pid}" for pid in sorted(holding))
                    return Verdict.failed(
                        f"mutual exclusion violated at event {index}: "
                        f"{inside} hold the lock simultaneously",
                        witness=history,
                    )
            elif isinstance(event, Invocation) and event.operation == "release":
                holding.discard(event.process)
            elif isinstance(event, Crash):
                holding.discard(event.process)
        return Verdict.passed("no overlapping critical sections")
