"""High-level shared object types and their safety checkers."""

from repro.objects.consensus import (
    AgreementValidity,
    ConsensusSpec,
    consensus_object_type,
)
from repro.objects.register_obj import (
    WRITE_OK,
    RegisterSpec,
    register_object_type,
)
from repro.objects.tm import (
    ABORTED,
    COMMITTED,
    OK,
    STATUS_ABORTED,
    STATUS_COMMIT_PENDING,
    STATUS_COMMITTED,
    STATUS_LIVE,
    TM_OPERATIONS,
    Transaction,
    TransactionCall,
    committed_transactions,
    parse_transactions,
    tm_object_type,
)
from repro.objects.opacity import (
    OpacityChecker,
    SearchBudgetExceeded,
    StrictSerializability,
)
from repro.objects.linearizability import (
    LinearizabilityChecker,
    LinearizabilitySearchExceeded,
)
from repro.objects.counterexample_s import (
    TimestampAbortRule,
    counterexample_safety,
)
from repro.objects.sequential_consistency import SequentialConsistencyChecker
from repro.objects.set_agreement import (
    KSetAgreement,
    OwnValueSetAgreement,
    set_agreement_object_type,
)

__all__ = [
    "AgreementValidity",
    "ConsensusSpec",
    "consensus_object_type",
    "WRITE_OK",
    "RegisterSpec",
    "register_object_type",
    "ABORTED",
    "COMMITTED",
    "OK",
    "STATUS_ABORTED",
    "STATUS_COMMIT_PENDING",
    "STATUS_COMMITTED",
    "STATUS_LIVE",
    "TM_OPERATIONS",
    "Transaction",
    "TransactionCall",
    "committed_transactions",
    "parse_transactions",
    "tm_object_type",
    "OpacityChecker",
    "SearchBudgetExceeded",
    "StrictSerializability",
    "LinearizabilityChecker",
    "LinearizabilitySearchExceeded",
    "TimestampAbortRule",
    "counterexample_safety",
    "SequentialConsistencyChecker",
    "KSetAgreement",
    "OwnValueSetAgreement",
    "set_agreement_object_type",
]
