"""The Section 5.3 counterexample safety property ``S``.

``S`` = opacity **plus** a timestamp abort rule: for any group of three
or more pairwise-concurrent transactions ``T_1, T_2, T_3, ...`` executed
by distinct processes, if

1. there is a number ``t`` such that each ``T_i`` is the ``t``-th
   transaction of its process, and
2. each ``T_i`` invokes ``tryC()`` only after at least two *other*
   transactions of the group have received a response to their
   ``start()``,

then every ``T_i`` must be aborted.

Prefix closure: once a group satisfies (1) and (2) in a history, it
satisfies them in every extension (concurrency, per-process transaction
numbers, and invocation/response positions never change retroactively),
and commits are permanent — so "some triggered group member committed"
is violation-monotone, and the rule restricted to finite histories is
prefix-closed.  A *live* group member does not violate the rule (it can
still abort later); only a commit does.

The paper uses ``S`` to show the limits of ``(l,k)``-freedom:
``(2,2)``-freedom excludes ``S`` (it excludes opacity already, and ``S``
is stronger), ``(1,3)``-freedom excludes ``S`` (the three-process
adversary of Section 5.3, shipped in
:mod:`repro.adversaries.counterexample`), yet ``(1,2)``-freedom — which
is weaker than both — does *not* exclude ``S``: Algorithm 1 (``I(1,2)``)
implements it.  Hence no weakest-excluding ``(l,k)``-freedom exists for
``S``.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from repro.core.history import History
from repro.core.properties import ConjunctionSafety, SafetyProperty, Verdict
from repro.objects.opacity import OpacityChecker
from repro.objects.tm import Transaction, parse_transactions


class TimestampAbortRule(SafetyProperty):
    """Requirement (2) of the Section 5.3 property, on its own."""

    name = "timestamp-abort-rule"

    def __init__(self, min_group: int = 3):
        if min_group < 2:
            raise ValueError("the rule needs groups of at least 2")
        self.min_group = min_group

    def check_history(self, history: History) -> Verdict:
        transactions = parse_transactions(history)
        offender = self._find_violation(transactions)
        if offender is None:
            return Verdict.passed("no triggered group has a committed member")
        group, committed = offender
        members = ", ".join(f"p{t.process}#{t.number}" for t in group)
        return Verdict.failed(
            f"transactions {{{members}}} trigger the timestamp rule but "
            f"p{committed.process}#{committed.number} committed",
            witness=history,
        )

    # -- rule evaluation ---------------------------------------------------------

    def _find_violation(
        self, transactions: List[Transaction]
    ) -> Optional[Tuple[Tuple[Transaction, ...], Transaction]]:
        by_number: dict = {}
        for transaction in transactions:
            by_number.setdefault(transaction.number, []).append(transaction)
        for number in sorted(by_number):
            cohort = by_number[number]
            if len(cohort) < self.min_group:
                continue
            for size in range(self.min_group, len(cohort) + 1):
                for group in itertools.combinations(cohort, size):
                    if not self._distinct_processes(group):
                        continue
                    if not self._pairwise_concurrent(group):
                        continue
                    if not self._tryc_after_two_starts(group):
                        continue
                    for member in group:
                        if member.committed:
                            return group, member
        return None

    @staticmethod
    def _distinct_processes(group: Sequence[Transaction]) -> bool:
        return len({t.process for t in group}) == len(group)

    @staticmethod
    def _pairwise_concurrent(group: Sequence[Transaction]) -> bool:
        return all(
            a.concurrent_with(b) for a, b in itertools.combinations(group, 2)
        )

    @staticmethod
    def _tryc_after_two_starts(group: Sequence[Transaction]) -> bool:
        """Each member invokes tryC after ≥2 other members' start
        responses.  Members without a tryC invocation disarm the
        trigger (condition (2) requires *each* T_i to invoke tryC)."""
        for member in group:
            tryc = member.tryc_invocation_index
            if tryc is None:
                return False
            answered_before = sum(
                1
                for other in group
                if other is not member
                and other.start_response_index is not None
                and other.start_response_index < tryc
            )
            if answered_before < 2:
                return False
        return True


def counterexample_safety(
    deep_opacity: bool = True, max_nodes: int = 200_000
) -> ConjunctionSafety:
    """The full Section 5.3 property ``S`` = opacity ∧ timestamp rule."""
    return ConjunctionSafety(
        parts=(
            OpacityChecker(deep=deep_opacity, max_nodes=max_nodes),
            TimestampAbortRule(),
        ),
        name="S(opacity+timestamp-rule)",
    )
