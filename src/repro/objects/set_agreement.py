"""k-set agreement: the paper's "other contexts" example (Section 4).

After the consensus and TM corollaries the paper notes that the
impossibility results "can be applied to many other contexts, such as
k-set agreement [3]".  This module supplies the context: the object
type (identical interface to consensus), its safety property —

* **k-agreement**: at most ``k`` distinct values are decided;
* **validity**: every decided value was proposed —

and two implementations marking the boundary:

* :class:`OwnValueSetAgreement` — every process decides its own
  proposal immediately; wait-free, and safe exactly for ``k >= n``
  (the degenerate end where safety stops excluding anything);
* register-based consensus (``k = 1``) reused from
  :mod:`repro.algorithms.consensus`, where the lockstep adversary's
  exclusion applies verbatim — the tests replay it against
  1-set-agreement safety.

The Borowsky–Gafni generalized impossibility (no wait-free k-set
agreement from registers for n > k) is out of scope to *prove*
mechanically, but the k-parameterised checker lets the adversary
machinery express the corollaries' pattern in this context too.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.base_objects.base import ObjectPool
from repro.base_objects.register import AtomicRegister
from repro.core.events import is_invocation, is_response
from repro.core.history import History
from repro.core.object_type import ObjectType, OperationSignature, ProgressMode
from repro.core.properties import SafetyProperty, Verdict
from repro.sim.kernel import Algorithm, Implementation, Op
from repro.util.errors import SimulationError


def set_agreement_object_type(values: Sequence[Any] = (0, 1, 2)) -> ObjectType:
    """The k-set agreement object type (interface equals consensus)."""
    values = tuple(values)
    return ObjectType(
        name="set-agreement",
        operations=(
            OperationSignature(
                name="propose",
                argument_domains=(values,),
                response_domain=values,
            ),
        ),
        sequential_spec=None,  # safety is the global k-agreement predicate
        good_response=lambda response: True,
        progress_mode=ProgressMode.EVENTUAL,
    )


class KSetAgreement(SafetyProperty):
    """k-agreement + validity.

    ``k = 1`` is consensus agreement & validity (the checker is tested
    to coincide with :class:`~repro.objects.consensus.AgreementValidity`
    on random histories).
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.name = f"{k}-set-agreement"

    def check_history(self, history: History) -> Verdict:
        proposed = set()
        decided = set()
        for event in history:
            if is_invocation(event) and event.operation == "propose":
                proposed.add(event.args[0])
            elif is_response(event) and event.operation == "propose":
                if event.value not in proposed:
                    return Verdict.failed(
                        f"validity violation: {event.value!r} was never proposed",
                        witness=history,
                    )
                decided.add(event.value)
                if len(decided) > self.k:
                    return Verdict.failed(
                        f"{self.k}-agreement violation: decided values "
                        f"{sorted(map(repr, decided))}",
                        witness=history,
                    )
        return Verdict.passed(
            f"at most {self.k} distinct valid decisions"
        )


class OwnValueSetAgreement(Implementation):
    """Decide your own proposal: wait-free, n-set-agreement-safe.

    The degenerate positive corner: with ``k >= n`` the safety property
    excludes no liveness property at all — even ``Lmax`` is ensured.
    For any ``k < n`` it is a *negative* fixture (n distinct proposals
    violate k-agreement), which the checker tests exploit.
    """

    name = "own-value-set-agreement"

    def __init__(self, n_processes: int, object_type: Optional[ObjectType] = None):
        super().__init__(object_type or set_agreement_object_type(), n_processes)

    def create_pool(self) -> ObjectPool:
        return ObjectPool([AtomicRegister("scratch", initial=None)])

    def algorithm(
        self, pid: int, operation: str, args, memory
    ) -> Algorithm:
        if operation != "propose" or len(args) != 1:
            raise SimulationError(f"unsupported {operation}{args!r}")
        return self._propose(args[0], memory)

    @staticmethod
    def _propose(proposal: Any, memory) -> Algorithm:
        memory["pc"] = "announce"
        yield Op("scratch", "write", (proposal,))
        return proposal
