"""Opacity and strict serializability checkers (Section 4.1).

Opacity [Guerraoui & Kapalka]: a history ``h`` is opaque if **every
finite prefix** ``h'`` has a completion ``comp(h')`` equivalent to a
sequential history ``s`` that preserves the real-time order of
``comp(h')`` and respects the sequential TM specification — crucially,
*every* transaction in ``s``, aborted ones included, observes a
consistent state.

Strict serializability [Papadimitriou] is the same condition with
aborted transactions unconstrained (only committed transactions must
serialize).

Algorithm
---------
For one prefix the checker:

1. parses transactions and completes the prefix: live transactions
   abort (``tryC·A`` appended, per the paper's ``comp``), commit-pending
   transactions try *both* completions;
2. searches a total order of the committed transactions that respects
   real time and replays correctly (memoised backtracking over
   ``(placed set, memory state)``; read-from values prune hard when
   workloads write distinct values);
3. for each aborted transaction, computes the set of serialization
   *gaps* (positions between committed transactions, consistent with
   its real-time constraints) at which its reads are consistent, then
   greedily assigns gaps in start order so that real-time order among
   aborted transactions is preserved.

Checking every response-ending prefix makes the verdict prefix-closed —
the defining closure property of a safety set (Definition 3.1).  The
full per-prefix sweep is quadratic in history length times the search
cost; ``deep=False`` checks only the final prefix (final-state opacity),
which is cheaper and useful as a first filter on long benchmark runs.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core.events import is_response
from repro.core.history import History
from repro.core.properties import SafetyProperty, Verdict
from repro.objects.tm import (
    STATUS_COMMIT_PENDING,
    Transaction,
    parse_transactions,
)
from repro.util.errors import ReproError


class SearchBudgetExceeded(ReproError):
    """The serialization search exceeded its node budget."""


class OpacityChecker(SafetyProperty):
    """Checks opacity (or strict serializability) of TM histories.

    Parameters
    ----------
    initial_values:
        Initial value per variable (default: every variable starts 0).
    deep:
        Check every response-ending prefix (true opacity).  With
        ``False`` only the final state is checked.
    check_aborted:
        Require aborted transactions to observe consistent states.
        ``False`` yields strict serializability.
    max_nodes:
        Backtracking budget per prefix; exceeding raises
        :class:`SearchBudgetExceeded` (never a wrong verdict).
    """

    name = "opacity"

    def __init__(
        self,
        initial_values: Optional[Mapping[Any, Any]] = None,
        default_initial: Any = 0,
        deep: bool = True,
        check_aborted: bool = True,
        max_nodes: int = 200_000,
    ):
        self.initial_values = dict(initial_values or {})
        self.default_initial = default_initial
        self.deep = deep
        self.check_aborted = check_aborted
        self.max_nodes = max_nodes
        if not check_aborted:
            self.name = "strict-serializability"

    # -- public API ------------------------------------------------------------

    def check_history(self, history: History) -> Verdict:
        prefix_ends = self._prefix_ends(history)
        for end in prefix_ends:
            failure = self._check_prefix(history[:end])
            if failure is not None:
                return Verdict.failed(
                    f"prefix of length {end}: {failure}", witness=history[:end]
                )
        return Verdict.passed(f"{self.name} holds on all checked prefixes")

    def _prefix_ends(self, history: History) -> List[int]:
        if not self.deep:
            return [len(history)]
        ends = [
            index + 1
            for index, event in enumerate(history)
            if is_response(event)
        ]
        if not ends or ends[-1] != len(history):
            ends.append(len(history))
        return ends

    # -- single-prefix check -----------------------------------------------------

    def _check_prefix(self, history: History) -> Optional[str]:
        transactions = parse_transactions(history)
        for transaction in transactions:
            violation = transaction.own_write_violation()
            if violation is not None:
                variable, written, observed = violation
                return (
                    f"transaction p{transaction.process}#{transaction.number} "
                    f"wrote {written!r} to x{variable} but then read "
                    f"{observed!r}"
                )
        pending = [t for t in transactions if t.status == STATUS_COMMIT_PENDING]
        # Try each completion of the commit-pending transactions (commit
        # or abort); the paper's comp(h) allows any choice.
        for commit_mask in itertools.product((True, False), repeat=len(pending)):
            as_committed = {
                id(t) for t, commit in zip(pending, commit_mask) if commit
            }
            committed = [
                t
                for t in transactions
                if t.committed or id(t) in as_committed
            ]
            aborted = [
                t
                for t in transactions
                if not t.committed and id(t) not in as_committed
            ]
            if self._serializable(committed, aborted):
                return None
        return (
            f"no serialization of {len(transactions)} transactions "
            f"(committed={sum(t.committed for t in transactions)}) respects "
            "real time and the sequential specification"
        )

    # -- committed-order search ----------------------------------------------------

    def _initial_state(self) -> Tuple[Tuple[Any, Any], ...]:
        return tuple(sorted(self.initial_values.items()))

    def _read_value(self, state: Dict[Any, Any], variable: Any) -> Any:
        return state.get(variable, self.default_initial)

    def _serializable(
        self, committed: List[Transaction], aborted: List[Transaction]
    ) -> bool:
        order = self._find_committed_order(committed)
        if order is None:
            return False
        if not self.check_aborted:
            return True
        return self._place_aborted(order, aborted)

    def _find_committed_order(
        self, committed: List[Transaction]
    ) -> Optional[List[Transaction]]:
        """Backtracking search for a legal total order of committed
        transactions; returns the order or ``None``."""
        n = len(committed)
        if n == 0:
            return []
        predecessors: List[int] = [0] * n
        before: List[List[int]] = [[] for _ in range(n)]
        for i, earlier in enumerate(committed):
            for j, later in enumerate(committed):
                if i != j and earlier.precedes(later):
                    before[j].append(i)
        reads = [t.reads() for t in committed]
        writes = [t.write_set() for t in committed]

        visited: set = set()
        nodes = [0]
        order: List[int] = []

        def freeze_state(state: Dict[Any, Any]) -> Tuple:
            return tuple(sorted(state.items(), key=lambda kv: repr(kv[0])))

        def search(placed: FrozenSet[int], state: Dict[Any, Any]) -> bool:
            nodes[0] += 1
            if nodes[0] > self.max_nodes:
                raise SearchBudgetExceeded(
                    f"{self.name} search exceeded {self.max_nodes} nodes"
                )
            if len(placed) == n:
                return True
            key = (placed, freeze_state(state))
            if key in visited:
                return False
            visited.add(key)
            for candidate in range(n):
                if candidate in placed:
                    continue
                if any(pred not in placed for pred in before[candidate]):
                    continue
                if any(
                    self._read_value(state, variable) != value
                    for variable, value in reads[candidate]
                ):
                    continue
                new_state = dict(state)
                new_state.update(writes[candidate])
                order.append(candidate)
                if search(placed | {candidate}, new_state):
                    return True
                order.pop()
            return False

        start_state = dict(self.initial_values)
        if search(frozenset(), start_state):
            return [committed[i] for i in order]
        return None

    # -- aborted placement -----------------------------------------------------------

    def _place_aborted(
        self, order: List[Transaction], aborted: List[Transaction]
    ) -> bool:
        """Greedy gap assignment preserving real-time order among the
        aborted transactions (see module docstring)."""
        states: List[Dict[Any, Any]] = [dict(self.initial_values)]
        for transaction in order:
            state = dict(states[-1])
            state.update(transaction.write_set())
            states.append(state)
        position = {id(t): i for i, t in enumerate(order)}

        def valid_gaps(transaction: Transaction) -> List[int]:
            low = 0
            high = len(order)
            for committed in order:
                if committed.precedes(transaction):
                    low = max(low, position[id(committed)] + 1)
                if transaction.precedes(committed):
                    high = min(high, position[id(committed)])
            gaps = []
            for gap in range(low, high + 1):
                state = states[gap]
                if all(
                    self._read_value(state, variable) == value
                    for variable, value in transaction.reads()
                ):
                    gaps.append(gap)
            return gaps

        assigned: Dict[int, int] = {}
        for transaction in sorted(aborted, key=lambda t: t.start_index):
            floor = 0
            for other in aborted:
                if id(other) in assigned and other.precedes(transaction):
                    floor = max(floor, assigned[id(other)])
            gaps = [g for g in valid_gaps(transaction) if g >= floor]
            if not gaps:
                return False
            assigned[id(transaction)] = gaps[0]
        return True


class StrictSerializability(OpacityChecker):
    """Strict serializability: committed transactions serialize in real
    time; aborted transactions are unconstrained."""

    def __init__(self, **kwargs):
        kwargs.setdefault("check_aborted", False)
        super().__init__(**kwargs)
