"""Consensus object type and its safety property (agreement + validity).

Each process proposes a value with ``propose(v)`` and receives a decided
value.  The safety property of Section 4.1's consensus corollary:

* **agreement** — all decided values are equal;
* **validity** — the decided value was proposed by one of the processes
  (before the decision, which in a well-formed history is implied by its
  proposer having invoked ``propose``).

Both clauses are violation-monotone, so the checker is prefix-closed.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from repro.core.events import is_invocation, is_response
from repro.core.history import History
from repro.core.object_type import ObjectType, OperationSignature, ProgressMode, SequentialSpec
from repro.core.properties import SafetyProperty, Verdict
from repro.util.errors import SpecificationError


class ConsensusSpec(SequentialSpec):
    """Sequential consensus: the first proposal wins.

    State is the decided value (``None`` before any proposal).
    """

    def initial_state(self) -> Any:
        return None

    def apply(self, state: Any, operation: str, args: Tuple[Any, ...]) -> Tuple[Any, Any]:
        if operation != "propose" or len(args) != 1:
            raise SpecificationError(
                f"consensus spec has only propose(v); got {operation}{args!r}"
            )
        decided = args[0] if state is None else state
        return decided, decided


def consensus_object_type(values: Sequence[Any] = (0, 1)) -> ObjectType:
    """Build the consensus object type over a finite proposal domain."""
    values = tuple(values)
    return ObjectType(
        name="consensus",
        operations=(
            OperationSignature(
                name="propose",
                argument_domains=(values,),
                response_domain=values,
            ),
        ),
        sequential_spec=ConsensusSpec(),
        good_response=lambda response: True,  # any decision is progress
        progress_mode=ProgressMode.EVENTUAL,
    )


class AgreementValidity(SafetyProperty):
    """Agreement and validity of consensus histories."""

    name = "agreement-validity"

    def check_history(self, history: History) -> Verdict:
        proposed = set()
        decided: Optional[Any] = None
        for event in history:
            if is_invocation(event) and event.operation == "propose":
                if len(event.args) != 1:
                    return Verdict.failed(
                        f"malformed propose invocation {event}", witness=history
                    )
                proposed.add(event.args[0])
            elif is_response(event) and event.operation == "propose":
                value = event.value
                if value not in proposed:
                    return Verdict.failed(
                        f"validity violation: p{event.process} decided "
                        f"{value!r}, which no process proposed",
                        witness=history,
                    )
                if decided is None:
                    decided = value
                elif value != decided:
                    return Verdict.failed(
                        f"agreement violation: decisions {decided!r} and "
                        f"{value!r} both occur",
                        witness=history,
                    )
        return Verdict.passed("all decisions agree and are proposed values")
