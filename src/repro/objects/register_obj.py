"""Read/write register object type (high level) and its spec.

Used by the generic linearizability checker's tests and by the
high-level-object examples (implementing a register object on top of
base registers is the identity construction, but faulty variants make
the checker's negative tests meaningful).
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.core.object_type import ObjectType, OperationSignature, ProgressMode, SequentialSpec
from repro.util.errors import SpecificationError

#: Response value of a successful high-level write.
WRITE_OK = "ok"


class RegisterSpec(SequentialSpec):
    """Sequential read/write register."""

    def __init__(self, initial: Any = 0):
        self.initial = initial

    def initial_state(self) -> Any:
        return self.initial

    def apply(self, state: Any, operation: str, args: Tuple[Any, ...]) -> Tuple[Any, Any]:
        if operation == "read":
            if args:
                raise SpecificationError("read takes no arguments")
            return state, state
        if operation == "write":
            if len(args) != 1:
                raise SpecificationError("write takes one argument")
            return args[0], WRITE_OK
        raise SpecificationError(f"register spec has read/write only; got {operation}")


def register_object_type(values: Sequence[Any] = (0, 1)) -> ObjectType:
    """Build the register object type over a finite value domain."""
    values = tuple(values)
    return ObjectType(
        name="register",
        operations=(
            OperationSignature(
                name="read", argument_domains=(), response_domain=values
            ),
            OperationSignature(
                name="write",
                argument_domains=(values,),
                response_domain=(WRITE_OK,),
            ),
        ),
        sequential_spec=RegisterSpec(initial=values[0]),
        good_response=lambda response: True,
        progress_mode=ProgressMode.REPEATED,
    )
