"""Experiment harness: registries, classification, reports."""

from repro.analysis.registry import (
    AGREEMENT_VALIDITY,
    COUNTEREXAMPLE_S,
    OPACITY,
    RegistryEntry,
    consensus_registry,
    entries_ensuring,
    tm_registry,
)
from repro.analysis.classification import ClassifiedGrid, GridPoint, classify_grid
from repro.analysis.report import render_claims, render_grid, render_hasse
from repro.analysis.experiments import (
    EXPERIMENTS,
    Claim,
    ExperimentResult,
    ExperimentSpec,
    consensus_plays,
    run_experiment,
    tm_plays,
)

__all__ = [
    "AGREEMENT_VALIDITY",
    "COUNTEREXAMPLE_S",
    "OPACITY",
    "RegistryEntry",
    "consensus_registry",
    "entries_ensuring",
    "tm_registry",
    "ClassifiedGrid",
    "GridPoint",
    "classify_grid",
    "render_claims",
    "render_grid",
    "render_hasse",
    "EXPERIMENTS",
    "Claim",
    "ExperimentResult",
    "ExperimentSpec",
    "consensus_plays",
    "run_experiment",
    "tm_plays",
]
