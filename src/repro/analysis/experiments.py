"""The experiment registry: every table/figure/theorem of the paper.

Each experiment id from DESIGN.md §4 maps to a runner returning an
:class:`ExperimentResult` — a list of *claims* comparing what the paper
states with what the artifact measures, plus rendered artifacts
(Figure-1 panels, Hasse diagrams, adversary-set certificates).  The
benchmark harness times the runners and prints the renderings;
EXPERIMENTS.md records the outcomes.

The runners are thin *claim evaluators*: the schedule batteries they
quantify over live in :mod:`repro.analysis.batteries`, the named
verification instances live in the scenario registry
(:mod:`repro.scenarios` — each :class:`ExperimentSpec` names the
scenarios its instances correspond to), and the single-instance
experiments (``fuzz``, ``verify``) evaluate their claims over the
uniform :func:`repro.scenarios.verify` verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.adversaries.consensus_flp import (
    LockstepConsensusAdversary,
    f1_adversary_set,
    f2_adversary_set,
    histories_match_f1,
)
from repro.adversaries.counterexample import CounterexampleAdversary
from repro.adversaries.tm_local_progress import TMLocalProgressAdversary
from repro.adversaries.valency import find_nondeciding_schedule
from repro.algorithms.consensus import CasConsensus, CommitAdoptConsensus
from repro.analysis.batteries import (  # noqa: F401  (families re-exported:
    # the battery surface moved to repro.analysis.batteries, this module
    # keeps the historical import path alive for external callers)
    CONSENSUS_SCHEDULE_FAMILIES,
    TM_SCHEDULE_FAMILIES,
    consensus_plays,
    lk_points,
    tm_plays,
)
from repro.analysis.classification import ClassifiedGrid, classify_grid
from repro.analysis.registry import (
    COUNTEREXAMPLE_S,
    OPACITY,
    consensus_registry,
    entries_ensuring,
    select_entries,
    tm_registry,
)
from repro.analysis.report import render_claims, render_grid, render_hasse
from repro.core.adversary import certify_disjoint_by_first_event
from repro.core.freedom import LKFreedom
from repro.core.history import History
from repro.core.lattice import LivenessOrder
from repro.core.liveness import enumerate_summaries
from repro.core.progress import NXLiveness, SFreedom
from repro.fuzz.oracle import differential_check
from repro.objects.consensus import AgreementValidity
from repro.objects.counterexample_s import counterexample_safety
from repro.objects.opacity import OpacityChecker
from repro.scenarios import get_scenario, resolve_backend, verify
from repro.setmodel import theorem44, theorem49
from repro.setmodel.theorem44 import first_event_adversary_sets, verify_theorem44
from repro.setmodel.theorem49 import verify_lemma48, verify_theorem49
from repro.sim.runtime import play
from repro.util.errors import UsageError, unknown_choice


@dataclass(frozen=True)
class Claim:
    """One paper-vs-measured row."""

    name: str
    expected: str
    measured: str
    ok: bool


@dataclass
class ExperimentResult:
    """Outcome of one experiment."""

    experiment_id: str
    title: str
    claims: List[Claim] = field(default_factory=list)
    artifacts: Dict[str, object] = field(default_factory=dict)
    rendered: str = ""

    @property
    def all_ok(self) -> bool:
        return all(claim.ok for claim in self.claims)

    def claim_rows(self) -> List[Tuple[str, str, str, bool]]:
        return [(c.name, c.expected, c.measured, c.ok) for c in self.claims]

    def render(self) -> str:
        table = render_claims(f"[{self.experiment_id}] {self.title}", self.claim_rows())
        if self.rendered:
            return f"{table}\n\n{self.rendered}"
        return table


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------


def run_fig1a(
    n: int = 3,
    max_steps: int = 20_000,
    semantics: str = "conditional",
    registry=None,
    scheduler=None,
    crash: Optional[str] = None,
    seed: Optional[int] = None,
    lk: Optional[str] = None,
) -> ExperimentResult:
    """Figure 1(a): the (l,k) grid for consensus agreement & validity,
    register-only implementations.

    ``registry``/``scheduler``/``crash``/``seed``/``lk`` are the uniform
    campaign grid axes (subset the registry, the schedule families, the
    grid points; inject crashes; seed a random play); defaults reproduce
    the paper's panel exactly.
    """
    entries = select_entries(consensus_registry(n, registers_only=True), registry)
    battery = consensus_plays(
        n, entries, max_steps=max_steps, schedulers=scheduler, crash=crash, seed=seed
    )
    safety = AgreementValidity()
    grid = classify_grid(
        n, safety, battery, semantics=semantics, points=lk_points(n, lk)
    )
    expected = lambda l, k: not (l == 1 and k == 1)
    result = ExperimentResult(
        experiment_id="fig1a",
        title="Figure 1(a): (l,k)-freedom vs consensus safety (registers only)",
    )
    result.claims.append(
        Claim(
            name="white points",
            expected="{(1,1)}",
            measured=str(sorted(grid.implementable_points())),
            ok=grid.matches(expected),
        )
    )
    result.claims.append(
        Claim(
            name="black points",
            expected="all (l,k) with k >= 2",
            measured=str(sorted(grid.excluded_points())),
            ok=grid.matches(expected),
        )
    )
    result.artifacts["grid"] = grid
    result.artifacts["history_count"] = sum(
        len(plays) for plays in battery.values()
    )
    result.rendered = render_grid(grid)
    return result


def run_fig1b(
    n: int = 3,
    max_steps: int = 240,
    transactions: int = 2,
    semantics: str = "conditional",
    registry=None,
    scheduler=None,
    crash: Optional[str] = None,
    seed: Optional[int] = None,
    lk: Optional[str] = None,
) -> ExperimentResult:
    """Figure 1(b): the (l,k) grid for TM opacity (same uniform grid
    axes as :func:`run_fig1a`)."""
    entries = select_entries(
        entries_ensuring(tm_registry(n, variables=(0,)), OPACITY), registry
    )
    battery = tm_plays(
        n,
        entries,
        max_steps=max_steps,
        transactions=transactions,
        schedulers=scheduler,
        crash=crash,
        seed=seed,
    )
    safety = OpacityChecker(deep=True)
    grid = classify_grid(
        n, safety, battery, semantics=semantics, points=lk_points(n, lk)
    )
    expected = lambda l, k: l >= 2
    result = ExperimentResult(
        experiment_id="fig1b",
        title="Figure 1(b): (l,k)-freedom vs TM opacity",
    )
    result.claims.append(
        Claim(
            name="white points",
            expected="all (1,k)",
            measured=str(sorted(grid.implementable_points())),
            ok=grid.matches(expected),
        )
    )
    result.claims.append(
        Claim(
            name="black points",
            expected="all (l,k) with l >= 2",
            measured=str(sorted(grid.excluded_points())),
            ok=grid.matches(expected),
        )
    )
    result.artifacts["grid"] = grid
    result.artifacts["history_count"] = sum(
        len(plays) for plays in battery.values()
    )
    result.rendered = render_grid(grid)
    return result


# ---------------------------------------------------------------------------
# Theorems 5.2 / 5.3
# ---------------------------------------------------------------------------


def _extremal_points(
    grid: ClassifiedGrid, semantics: str
) -> Tuple[List[str], List[str]]:
    """(strongest implementable, weakest excluded) under the semantic
    order of the grid's (l,k) properties."""
    properties = [
        LKFreedom(point.l, point.k, semantics=semantics) for point in grid.points
    ]
    order = LivenessOrder(properties, grid.n, progress_requires_steps=False)
    implementable = [
        prop
        for prop, point in zip(properties, grid.points)
        if not point.excludes
    ]
    excluded = [
        prop for prop, point in zip(properties, grid.points) if point.excludes
    ]
    strongest = order.strongest_below(implementable)
    # weakest excluded = minimal elements among excluded
    names = {p.name for p in excluded}
    stronger_pairs = [
        (a, b)
        for a, b in order.strictly_stronger_pairs()
        if a in names and b in names
    ]
    dominating = {a for a, _ in stronger_pairs}
    weakest = [p.name for p in excluded if p.name not in dominating]
    return strongest, weakest


def run_thm52(
    n: int = 3,
    max_steps: int = 20_000,
    registry=None,
    scheduler=None,
    crash: Optional[str] = None,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Theorem 5.2: extremal (l,k) properties for register consensus,
    plus the mechanised CIL schedule search."""
    fig = run_fig1a(
        n=n,
        max_steps=max_steps,
        registry=registry,
        scheduler=scheduler,
        crash=crash,
        seed=seed,
    )
    grid: ClassifiedGrid = fig.artifacts["grid"]  # type: ignore[assignment]
    strongest, weakest = _extremal_points(grid, semantics="conditional")
    result = ExperimentResult(
        experiment_id="thm52",
        title="Theorem 5.2: consensus-from-registers extremal (l,k)-freedom",
    )
    result.claims.append(
        Claim(
            name="strongest implementable",
            expected="(1,1)-freedom",
            measured=", ".join(strongest),
            ok=strongest == ["(1,1)-freedom"],
        )
    )
    result.claims.append(
        Claim(
            name="weakest non-implementable",
            expected="(1,2)-freedom",
            measured=", ".join(weakest),
            ok=weakest == ["(1,2)-freedom"],
        )
    )
    witness = find_nondeciding_schedule(
        lambda: CommitAdoptConsensus(2), proposals=(0, 1), max_configs=3_000
    )
    result.claims.append(
        Claim(
            name="CIL schedule search (registers)",
            expected="non-deciding schedule exists",
            measured=(
                f"found: stem={len(witness.stem)} cycle={len(witness.cycle)}"
                if witness
                else "none found"
            ),
            ok=witness is not None,
        )
    )
    cas_witness = find_nondeciding_schedule(
        lambda: CasConsensus(2), proposals=(0, 1), max_configs=3_000
    )
    result.claims.append(
        Claim(
            name="CIL schedule search (CAS control)",
            expected="no non-deciding schedule",
            measured="none found" if cas_witness is None else "found (!)",
            ok=cas_witness is None,
        )
    )
    result.artifacts["grid"] = grid
    result.artifacts["witness"] = witness
    result.rendered = render_grid(grid, annotate=False)
    return result


def run_thm53(
    n: int = 3,
    max_steps: int = 240,
    transactions: int = 2,
    registry=None,
    scheduler=None,
    crash: Optional[str] = None,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Theorem 5.3: extremal (l,k) properties for TM opacity, plus the
    paper's remark that (1,n) and (2,2) are incomparable."""
    fig = run_fig1b(
        n=n,
        max_steps=max_steps,
        transactions=transactions,
        registry=registry,
        scheduler=scheduler,
        crash=crash,
        seed=seed,
    )
    grid: ClassifiedGrid = fig.artifacts["grid"]  # type: ignore[assignment]
    strongest, weakest = _extremal_points(grid, semantics="conditional")
    result = ExperimentResult(
        experiment_id="thm53",
        title="Theorem 5.3: TM extremal (l,k)-freedom vs opacity",
    )
    result.claims.append(
        Claim(
            name="strongest implementable",
            expected=f"(1,{n})-freedom",
            measured=", ".join(strongest),
            ok=strongest == [f"(1,{n})-freedom"],
        )
    )
    result.claims.append(
        Claim(
            name="weakest non-implementable",
            expected="(2,2)-freedom",
            measured=", ".join(weakest),
            ok=weakest == ["(2,2)-freedom"],
        )
    )
    order = LivenessOrder(
        [LKFreedom(1, n), LKFreedom(2, 2)], n, progress_requires_steps=False
    )
    relation = order.relate(LKFreedom(1, n), LKFreedom(2, 2))
    result.claims.append(
        Claim(
            name=f"(1,{n}) vs (2,2)",
            expected="incomparable",
            measured=relation.kind,
            ok=relation.kind == "incomparable",
        )
    )
    result.artifacts["grid"] = grid
    result.rendered = render_grid(grid, annotate=False)
    return result


# ---------------------------------------------------------------------------
# Corollaries 4.5 / 4.6 (no weakest excluding liveness)
# ---------------------------------------------------------------------------


def _outside_lmax_consensus(history: History) -> bool:
    """A consensus history lies outside Lmax iff some proposer has not
    decided (the bounded reading of wait-freedom's complement)."""
    proposers = {inv.process for inv in history.invocations()}
    deciders = {res.process for res in history.responses()}
    return bool(proposers - deciders)


def run_cor45(max_steps: int = 20_000) -> ExperimentResult:
    """Corollary 4.5: no weakest liveness excluding consensus safety."""
    safety = AgreementValidity()
    f1 = f1_adversary_set(first=0, second=1)
    f2 = f2_adversary_set()
    result = ExperimentResult(
        experiment_id="cor45",
        title="Corollary 4.5: no weakest liveness excluding agreement+validity",
    )
    cond1 = all(safety.permits(h) for h in f1.histories | f2.histories)
    result.claims.append(
        Claim(
            name="F1, F2 ⊆ S",
            expected="true",
            measured=str(cond1).lower(),
            ok=cond1,
        )
    )
    cond2 = all(
        _outside_lmax_consensus(h) for h in f1.histories | f2.histories
    )
    result.claims.append(
        Claim(
            name="F1, F2 ⊆ complement(Lmax)",
            expected="true",
            measured=str(cond2).lower(),
            ok=cond2,
        )
    )
    # Condition (3) relative to the register-only registry: the lockstep
    # adversary defeats every implementation, and the resulting history
    # matches the F1 shape.
    entries = consensus_registry(2, registers_only=True)
    all_match = True
    for entry in entries:
        adversary = LockstepConsensusAdversary(first=0, second=1)
        run = play(entry.make(), adversary, max_steps=max_steps)
        if not histories_match_f1(run.history, first=0, second=1):
            all_match = False
    result.claims.append(
        Claim(
            name="condition (3) on registry",
            expected="every register impl yields a fair history matching F1",
            measured="all match" if all_match else "some play escapes F1",
            ok=all_match,
        )
    )
    certificate = certify_disjoint_by_first_event(f1, f2, 0, 1)
    result.claims.append(
        Claim(
            name="F1 ∩ F2",
            expected="empty (first-event argument)",
            measured="empty" if certificate.disjoint else "non-empty",
            ok=certificate.disjoint,
        )
    )
    result.claims.append(
        Claim(
            name="Gmax",
            expected="empty ⇒ no weakest excluding liveness",
            measured="empty" if certificate.gmax_is_empty else "non-empty",
            ok=certificate.gmax_is_empty,
        )
    )
    result.artifacts["certificate"] = certificate
    result.rendered = (
        f"F1 = {{{'; '.join(str(h) for h in sorted(f1.histories, key=str))}}}\n"
        f"F2 = {{{'; '.join(str(h) for h in sorted(f2.histories, key=str))}}}\n"
        f"separating feature: {certificate.separating_feature}"
    )
    return result


def run_cor46(
    n: int = 2, max_steps: int = 240
) -> ExperimentResult:
    """Corollary 4.6: no weakest liveness excluding opacity."""
    from repro.core.adversary import FiniteAdversarySet
    from repro.core.liveness import LocalProgress

    entries = entries_ensuring(tm_registry(n, variables=(0,)), OPACITY)
    opacity = OpacityChecker(deep=True)
    local_progress = LocalProgress()
    result = ExperimentResult(
        experiment_id="cor46",
        title="Corollary 4.6: no weakest TM liveness excluding opacity",
    )
    sets: Dict[str, FiniteAdversarySet] = {}
    defeats_ok = True
    safety_ok = True
    for name, victim, helper in (("F1", 0, 1), ("F2", 1, 0)):
        histories = []
        for entry in entries:
            adversary = TMLocalProgressAdversary(victim=victim, helper=helper, variable=0)
            run = play(entry.make(), adversary, max_steps=max_steps)
            summary = run.summary(entry.make().object_type.progress_mode)
            if adversary.escaped or local_progress.evaluate(summary).holds:
                defeats_ok = False
            if not opacity.permits(run.history):
                safety_ok = False
            histories.append(run.history)
        sets[name] = FiniteAdversarySet(histories, name=name)
    result.claims.append(
        Claim(
            name="strategy defeats every opaque TM",
            expected="victim starves in every play",
            measured="yes" if defeats_ok else "an implementation escaped",
            ok=defeats_ok,
        )
    )
    result.claims.append(
        Claim(
            name="plays stay opaque (F ⊆ S)",
            expected="true",
            measured=str(safety_ok).lower(),
            ok=safety_ok,
        )
    )
    certificate = certify_disjoint_by_first_event(sets["F1"], sets["F2"], 0, 1)
    result.claims.append(
        Claim(
            name="F1 ∩ F2",
            expected="empty (every F1 history begins with start_0)",
            measured="empty" if certificate.disjoint else "non-empty",
            ok=certificate.disjoint,
        )
    )
    result.claims.append(
        Claim(
            name="Gmax",
            expected="empty ⇒ no weakest excluding liveness",
            measured="empty" if certificate.gmax_is_empty else "non-empty",
            ok=certificate.gmax_is_empty,
        )
    )
    result.artifacts["certificate"] = certificate
    result.rendered = f"separating feature: {certificate.separating_feature}"
    return result


# ---------------------------------------------------------------------------
# Theorems 4.4 / 4.9, Lemma 4.8 (finite models)
# ---------------------------------------------------------------------------


def run_thm44() -> ExperimentResult:
    """Theorem 4.4 on the positive and negative micro models."""
    result = ExperimentResult(
        experiment_id="thm44",
        title="Theorem 4.4: weakest-excluding liveness iff Gmax is an adversary set",
    )
    model, safety = theorem44.positive_model()
    report = verify_theorem44(model, safety)
    result.claims.append(
        Claim(
            name="positive model: iff",
            expected="Gmax adversary set ⇔ weakest exists (both true)",
            measured=(
                f"gmax-adv={report.gmax_is_adversary_set}, "
                f"weakest={'exists' if report.weakest_excluding is not None else 'none'}"
            ),
            ok=report.iff_holds and report.gmax_is_adversary_set,
        )
    )
    result.claims.append(
        Claim(
            name="positive model: weakest = complement(Gmax)",
            expected="true (as in the theorem's proof)",
            measured=str(report.weakest_equals_complement_gmax).lower(),
            ok=bool(report.weakest_equals_complement_gmax),
        )
    )
    model2, safety2 = theorem44.negative_model()
    f1, f2 = first_event_adversary_sets(model2, safety2)
    both_adv = model2.is_adversary_set(
        f1, model2.lmax, safety2
    ) and model2.is_adversary_set(f2, model2.lmax, safety2)
    result.claims.append(
        Claim(
            name="negative model: disjoint adversary sets",
            expected="F1, F2 adversary sets with F1 ∩ F2 = ∅",
            measured=f"adversary-sets={both_adv}, disjoint={not (f1 & f2)}",
            ok=both_adv and not (f1 & f2),
        )
    )
    report2 = verify_theorem44(model2, safety2)
    result.claims.append(
        Claim(
            name="negative model: iff",
            expected="Gmax empty ⇒ no weakest (both false)",
            measured=(
                f"gmax-adv={report2.gmax_is_adversary_set}, "
                f"weakest={'exists' if report2.weakest_excluding is not None else 'none'}"
            ),
            ok=report2.iff_holds and not report2.gmax_is_adversary_set,
        )
    )
    result.artifacts["positive"] = report
    result.artifacts["negative"] = report2
    return result


def run_thm49() -> ExperimentResult:
    """Lemma 4.8 and Theorem 4.9 on micro models."""
    result = ExperimentResult(
        experiment_id="thm49",
        title="Lemma 4.8 / Theorem 4.9: strongest non-excluding liveness is Lmax",
    )
    model, safety = theorem49.positive_model()
    lemma_ok = all(
        verify_lemma48(model, impl).holds for impl in model.implementations
    )
    result.claims.append(
        Claim(
            name="Lemma 4.8 (all implementations)",
            expected="strongest ensured liveness = Lmax ∪ fair(A_I)",
            measured="holds" if lemma_ok else "violated",
            ok=lemma_ok,
        )
    )
    report = verify_theorem49(model, safety)
    result.claims.append(
        Claim(
            name="positive model",
            expected="strongest non-excluding exists and is Lmax",
            measured=(
                f"excludes={report.lmax_excludes_safety}, "
                f"strongest-is-lmax={report.strongest_is_lmax}"
            ),
            ok=report.holds and report.strongest_is_lmax is True,
        )
    )
    model2, safety2 = theorem49.negative_model()
    report2 = verify_theorem49(model2, safety2)
    result.claims.append(
        Claim(
            name="negative model",
            expected="Lmax excludes S ⇒ no strongest non-excluding",
            measured=(
                f"excludes={report2.lmax_excludes_safety}, "
                f"strongest={'none' if report2.strongest_non_excluding is None else 'exists'}"
            ),
            ok=report2.holds
            and report2.lmax_excludes_safety
            and report2.strongest_non_excluding is None,
        )
    )
    result.artifacts["positive"] = report
    result.artifacts["negative"] = report2
    return result


# ---------------------------------------------------------------------------
# Lemma 5.4 / Section 5.3
# ---------------------------------------------------------------------------


def run_lem54(
    n: int = 3,
    transactions: int = 2,
    max_steps: int = 400,
    scheduler=None,
    crash: Optional[str] = None,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Lemma 5.4: I(1,2) ensures S and (1,2)-freedom."""
    if n < 3:
        raise UsageError(
            "lem54 requires n >= 3 (the timestamp-rule check plays the "
            "3-process Section 5.3 adversary)"
        )
    entries = [e for e in tm_registry(n, variables=(0,)) if e.key == "i12"]
    battery = tm_plays(
        n,
        entries,
        max_steps=max_steps,
        transactions=transactions,
        schedulers=scheduler,
        crash=crash,
        seed=seed,
    )["i12"]
    safety = counterexample_safety(deep_opacity=True)
    property_12 = LKFreedom(1, 2)
    safety_ok = all(safety.permits(history) for history, _s, _l in battery)
    liveness_ok = all(
        property_12.evaluate(summary).holds for _h, summary, _l in battery
    )
    result = ExperimentResult(
        experiment_id="lem54",
        title="Lemma 5.4: Algorithm I(1,2) ensures S and (1,2)-freedom",
    )
    result.claims.append(
        Claim(
            name="S on all battery plays",
            expected="opacity + timestamp rule hold",
            measured="hold" if safety_ok else "violated",
            ok=safety_ok,
        )
    )
    result.claims.append(
        Claim(
            name="(1,2)-freedom on all battery plays",
            expected="holds",
            measured="holds" if liveness_ok else "violated",
            ok=liveness_ok,
        )
    )
    # The timestamp rule in action: three concurrent same-numbered
    # transactions must all abort (proved lasso via the Section 5.3
    # adversary).
    adversary = CounterexampleAdversary((0, 1, 2))
    run = play(entries[0].make(), adversary, max_steps=5_000)
    rule_enforced = (
        not adversary.escaped
        and run.lasso is not None
        and all(run.stats[pid].good_responses == 0 for pid in range(3))
    )
    result.claims.append(
        Claim(
            name="timestamp rule enforcement",
            expected="3 concurrent t-th transactions abort forever (lasso)",
            measured=(
                f"lasso={'yes' if run.lasso else 'no'}, commits="
                f"{sum(run.stats[p].good_responses for p in range(3))}"
            ),
            ok=rule_enforced,
        )
    )
    result.artifacts["battery_size"] = len(battery)
    return result


def run_sec53(
    n: int = 3,
    transactions: int = 2,
    max_steps: int = 240,
    registry=None,
    scheduler=None,
    crash: Optional[str] = None,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Section 5.3: the counterexample property S has no weakest
    excluding (l,k)-freedom."""
    if n < 3:
        raise UsageError(
            "sec53 requires n >= 3 (its argument relates the (1,3) and "
            "(2,2) grid points)"
        )
    safety = counterexample_safety(deep_opacity=True)
    entries = select_entries(
        entries_ensuring(tm_registry(n, variables=(0,)), COUNTEREXAMPLE_S), registry
    )
    battery = tm_plays(
        n,
        entries,
        max_steps=max_steps,
        transactions=transactions,
        schedulers=scheduler,
        crash=crash,
        seed=seed,
    )
    grid = classify_grid(n, safety, battery)
    result = ExperimentResult(
        experiment_id="sec53",
        title="Section 5.3: limits of (l,k)-freedom on the property S",
    )
    point_22 = grid.point(2, 2)
    point_13 = grid.point(1, 3)
    point_12 = grid.point(1, 2)
    result.claims.append(
        Claim(
            name="(2,2)-freedom vs S",
            expected="excludes",
            measured="excludes" if point_22.excludes else "does not exclude",
            ok=point_22.excludes,
        )
    )
    result.claims.append(
        Claim(
            name="(1,3)-freedom vs S",
            expected="excludes (3-process adversary)",
            measured="excludes" if point_13.excludes else "does not exclude",
            ok=point_13.excludes,
        )
    )
    result.claims.append(
        Claim(
            name="(1,2)-freedom vs S",
            expected="does not exclude (I(1,2) implements it)",
            measured="does not exclude" if not point_12.excludes else "excludes",
            ok=not point_12.excludes,
        )
    )
    order = LivenessOrder(
        [LKFreedom(1, 2), LKFreedom(1, 3), LKFreedom(2, 2)],
        n,
        progress_requires_steps=False,
    )
    weaker_both = order.is_stronger(LKFreedom(1, 3), LKFreedom(1, 2)) and (
        order.is_stronger(LKFreedom(2, 2), LKFreedom(1, 2))
    )
    incomparable = (
        order.relate(LKFreedom(1, 3), LKFreedom(2, 2)).kind == "incomparable"
    )
    result.claims.append(
        Claim(
            name="(1,2) weaker than both excluders",
            expected="true",
            measured=str(weaker_both).lower(),
            ok=weaker_both,
        )
    )
    result.claims.append(
        Claim(
            name="(1,3) vs (2,2)",
            expected="incomparable ⇒ no weakest excluding (l,k)-freedom",
            measured=order.relate(LKFreedom(1, 3), LKFreedom(2, 2)).kind,
            ok=incomparable,
        )
    )
    result.artifacts["grid"] = grid
    result.rendered = render_grid(grid, annotate=False)
    return result


# ---------------------------------------------------------------------------
# Section 6 taxonomies
# ---------------------------------------------------------------------------


def run_sec6(n: int = 3) -> ExperimentResult:
    """Section 6: alternative restricted liveness families."""
    result = ExperimentResult(
        experiment_id="sec6",
        title="Section 6: S-freedom antichain, (n,x)-liveness chain, (l,k) poset",
    )
    summaries = enumerate_summaries(n, progress_requires_steps=True)
    singletons = [SFreedom({size}) for size in range(1, n + 1)]
    singleton_order = LivenessOrder(
        singletons, n, progress_requires_steps=True, summaries=summaries
    )
    antichain = all(
        singleton_order.relate(a, b).kind == "incomparable"
        for i, a in enumerate(singletons)
        for b in singletons[i + 1:]
    )
    result.claims.append(
        Claim(
            name="singleton S-freedom",
            expected="pairwise incomparable (no strongest implementable)",
            measured="antichain" if antichain else "comparable pair exists",
            ok=antichain,
        )
    )
    nx_family = [NXLiveness(n, x) for x in range(0, n + 1)]
    nx_order = LivenessOrder(nx_family, n, progress_requires_steps=False)
    total = nx_order.is_totally_ordered()
    result.claims.append(
        Claim(
            name="(n,x)-liveness",
            expected="totally ordered in x",
            measured="chain" if total else "not a chain",
            ok=total,
        )
    )
    increasing = all(
        nx_order.is_stronger(NXLiveness(n, x + 1), NXLiveness(n, x))
        for x in range(0, n)
    )
    result.claims.append(
        Claim(
            name="(n,x+1) stronger than (n,x)",
            expected="true",
            measured=str(increasing).lower(),
            ok=increasing,
        )
    )
    lk_family = LKFreedom.grid(n)
    lk_order = LivenessOrder(lk_family, n, progress_requires_steps=False)
    partially = not lk_order.is_totally_ordered()
    result.claims.append(
        Claim(
            name="(l,k)-freedom family",
            expected="partially ordered (incomparable pairs exist)",
            measured="poset with incomparable pairs" if partially else "chain",
            ok=partially,
        )
    )
    # Empirical halves of the cited implementability facts, on the
    # register-consensus battery: S-freedom{1} and (n,0)-liveness
    # survive every play of commit-adopt (they are the implementable
    # corners per [36] and [25]), while S-freedom{2} and
    # (n,1)-liveness fall to the lockstep adversary.
    battery = consensus_plays(
        n, consensus_registry(n, registers_only=True), max_steps=20_000
    )["commit-adopt"]
    def survives(prop) -> bool:
        return all(prop.evaluate(summary).holds for _h, summary, _l in battery)

    implementable = [SFreedom({1}), NXLiveness(n, 0)]
    non_implementable = [SFreedom({2}), NXLiveness(n, 1)]
    empirically_ok = all(survives(p) for p in implementable) and not any(
        survives(p) for p in non_implementable
    )
    result.claims.append(
        Claim(
            name="implementable corners ([36],[25])",
            expected="S-freedom{1} and (n,0)-liveness survive; "
            "S-freedom{2} and (n,1)-liveness fall",
            measured=(
                f"survive: {[p.name for p in implementable if survives(p)]}, "
                f"fall: {[p.name for p in non_implementable if not survives(p)]}"
            ),
            ok=empirically_ok,
        )
    )
    result.artifacts["lk_order"] = lk_order
    result.rendered = "\n\n".join(
        [
            render_hasse(singleton_order, "singleton S-freedom"),
            render_hasse(nx_order, "(n,x)-liveness"),
            render_hasse(lk_order, "(l,k)-freedom"),
        ]
    )
    return result


# ---------------------------------------------------------------------------
# Fuzzing (the randomized counterpart of the exhaustive experiments)
# ---------------------------------------------------------------------------


#: The sampling evidence persisted by every fuzz-flavoured job.
_SAMPLING_ARTIFACTS = (
    "interleavings",
    "coverage",
    "corpus",
    "histories_checked",
    "interleavings_per_second",
)


def _record_sampling_artifacts(result: ExperimentResult, source) -> None:
    for key in _SAMPLING_ARTIFACTS:
        result.artifacts[key] = source[key]


def run_fuzz(
    workload: str = "agp-opacity",
    mode: str = "fuzz",
    seed: int = 0,
    iterations: int = 2_000,
    max_steps: int = 64,
    crash: Optional[str] = None,
    shrink: bool = True,
) -> ExperimentResult:
    """Fuzz one registered scenario, or differential-oracle it.

    A thin claim evaluator over the scenario layer: ``mode="fuzz"``
    judges the uniform :func:`repro.scenarios.verify` verdict of the
    fuzz backend against the scenario's declared expectation (shrunk,
    replay-verified counterexample traces land in the artifacts);
    ``mode="oracle"`` additionally runs the exhaustive backend on the
    same (small) instance and asserts verdict agreement via
    :func:`repro.fuzz.oracle.differential_check`.  ``mode`` is the grid
    axis that makes fuzzing a first-class campaign job kind; ``crash``
    and ``shrink`` apply to ``mode="fuzz"`` only, and ``max_steps``
    doubles as the walk depth bound, matching the uniform axis name of
    the battery experiments.
    """
    if mode not in ("fuzz", "oracle"):
        raise UsageError(f"mode must be 'fuzz' or 'oracle', got {mode!r}")
    if mode == "oracle" and crash not in (None, "", "none"):
        # The oracle compares against the crash-free exhaustive space; a
        # crash axis on an oracle cell would be silently meaningless.
        raise UsageError(
            f"the 'crash' axis (got {crash!r}) only applies to mode=fuzz; "
            "the oracle compares verdicts over the crash-free schedule "
            "space the exhaustive engine enumerates"
        )
    spec = get_scenario(workload)
    result = ExperimentResult(
        experiment_id="fuzz",
        title=f"Randomized schedule fuzzer on {workload} [{mode}]",
    )
    if mode == "oracle":
        oracle = differential_check(
            spec, seed=seed, iterations=iterations, max_depth=max_steps
        )
        result.claims.append(
            Claim(
                name="differential oracle",
                expected="fuzz verdict == exhaustive verdict",
                measured=(
                    f"exhaustive={'holds' if oracle.exhaustive_holds else 'violated'}"
                    f" ({oracle.exhaustive_runs} runs), "
                    f"fuzz={'holds' if oracle.fuzz_holds else 'violated'}"
                ),
                ok=oracle.agree,
            )
        )
        if oracle.counterexample_replays is not None:
            result.claims.append(
                Claim(
                    name="counterexample replay",
                    expected="violating schedule reproduces on a fresh runtime",
                    measured=(
                        "reproduces"
                        if oracle.counterexample_replays
                        else "does not reproduce"
                    ),
                    ok=bool(oracle.counterexample_replays),
                )
            )
        report = oracle.fuzz
        result.artifacts["exhaustive_runs"] = oracle.exhaustive_runs
        _record_sampling_artifacts(
            result,
            {
                "interleavings": report.interleavings,
                "coverage": report.coverage,
                "corpus": report.corpus,
                "histories_checked": report.histories_checked,
                "interleavings_per_second": round(
                    report.interleavings_per_second, 1
                ),
            },
        )
        return result

    verdict = verify(
        spec,
        backend="fuzz",
        seed=seed,
        iterations=iterations,
        max_depth=max_steps,
        crash=crash,
        shrink=shrink,
    )
    stats = verdict.stats
    expectation = "violation" if spec.expect_violation else "no violation"
    if verdict.budget_exhausted:
        # The safety checker's own search budget blew mid-fuzz: report
        # a failed claim rather than crashing the job.
        result.claims.append(
            Claim(
                name="fuzz verdict",
                expected=expectation,
                measured=f"budget exhausted: {stats.get('error', '')}",
                ok=False,
            )
        )
        return result
    measured = (
        f"violation at iteration {stats['violation_iteration']}"
        if verdict.violated
        else f"no violation in {stats['interleavings']} interleavings"
    )
    result.claims.append(
        Claim(
            name="fuzz verdict",
            expected=expectation,
            measured=measured,
            ok=verdict.expected,
        )
    )
    result.claims.append(
        Claim(
            name="coverage map",
            expected="> 0 unique configurations",
            measured=str(stats["coverage"]),
            ok=stats["coverage"] > 0,
        )
    )
    if verdict.counterexample is not None and shrink:
        replays = bool(stats.get("counterexample_replays"))
        measured_shrink = (
            f"{stats['shrunk_from']} -> "
            f"{stats['counterexample_length']} steps, replay "
            f"{'violates' if replays else 'passes (!)'}"
            if "shrunk_from" in stats
            else "minimization aborted: "
            + stats.get("witness_check_error", "unknown error")
        )
        result.claims.append(
            Claim(
                name="shrunk counterexample",
                expected="locally minimal trace replays to a violation",
                measured=measured_shrink,
                ok=replays,
            )
        )
        result.artifacts["shrunk_trace"] = verdict.counterexample.to_document()
        result.artifacts["shrunk_length"] = stats["counterexample_length"]
        result.rendered = "shrunk schedule: " + " ".join(
            f"{kind}(p{pid})" for kind, pid in verdict.counterexample.schedule
        )
    _record_sampling_artifacts(result, stats)
    return result


def run_verify(
    scenario: str = "cas-consensus",
    backend: str = "auto",
    seed: Optional[int] = None,
    iterations: Optional[int] = None,
    max_steps: Optional[int] = None,
    crash: Optional[str] = None,
    shrink: bool = True,
    reduction: Optional[str] = None,
) -> ExperimentResult:
    """Verify one registered scenario through the uniform facade.

    The campaign face of :func:`repro.scenarios.verify`: ``scenario``
    and ``backend`` (``exhaustive``/``fuzz``/``liveness``/``auto``) are
    grid axes, so ``campaign init --grid verify scenario=...
    backend=...`` sweeps the scenario catalog as stored, resumable
    jobs.  The single claim compares the verdict outcome with the
    scenario's declared expectation for the backend's property kind
    (``expect_liveness_violation`` for liveness cells); the full
    verdict document (stats + replayable counterexample / lasso trace)
    is persisted as an artifact.
    """
    spec = get_scenario(scenario)
    resolved = resolve_backend(spec, backend)
    overrides: Dict[str, object] = {"shrink": shrink}
    if reduction not in (None, "", "none"):
        if resolved == "fuzz":
            if backend != "auto":
                raise UsageError(
                    "the 'reduction' axis selects a partial-order "
                    "reduction for exhaustive/liveness search; it cannot "
                    "apply to backend='fuzz' — restrict the axis to "
                    "exhaustive/liveness (or auto) cells or drop it"
                )
            # Auto-resolved fuzz cells drop the knob, same policy as the
            # backend-exclusive overrides in the verify facade.
        else:
            overrides["reduction"] = reduction
    if resolved == "fuzz":
        overrides["seed"] = 0 if seed is None else seed
        if iterations is not None:
            overrides["iterations"] = iterations
    elif backend != "auto":
        # Explicit exhaustive/liveness cells reject swept sampling
        # knobs loudly (a seed/iterations axis would run identical jobs
        # — same policy as the batteries' seed-without-random check);
        # 'auto' cells may mix backends across one grid, so there the
        # knobs are dropped for the non-fuzz-resolved scenarios
        # instead.
        for axis, value in (("seed", seed), ("iterations", iterations)):
            if value is not None:
                raise UsageError(
                    f"the {axis!r} axis only affects fuzz cells, and "
                    f"backend={resolved!r} verification is deterministic "
                    "— sweeping it would run identical jobs; restrict "
                    f"the {axis!r} axis to backend=fuzz (or backend=auto) "
                    "cells or drop it"
                )
    if max_steps is not None:
        overrides["max_depth"] = max_steps
    if crash not in (None, "", "none"):
        # Passed through on every backend: a crash model changes the
        # verified space, so an exhaustive or liveness cell must fail
        # loudly.
        overrides["crash"] = crash
    verdict = verify(spec, backend=resolved, **overrides)
    result = ExperimentResult(
        experiment_id="verify",
        title=f"Scenario verify: {spec.scenario_id} [{verdict.backend}]",
    )
    expect_violation = (
        spec.expect_liveness_violation
        if resolved == "liveness"
        else spec.expect_violation
    )
    result.claims.append(
        Claim(
            name="verdict",
            expected="violated" if expect_violation else "holds",
            measured=verdict.outcome,
            ok=verdict.expected,
        )
    )
    if verdict.counterexample is not None:
        replays = bool(verdict.stats.get("counterexample_replays"))
        result.claims.append(
            Claim(
                name="counterexample replay",
                expected="trace replays to a violation on a plain runtime",
                measured="replays" if replays else "does not replay",
                ok=replays,
            )
        )
    if verdict.lasso is not None:
        replays = bool(verdict.stats.get("lasso_replays"))
        result.claims.append(
            Claim(
                name="lasso certificate replay",
                expected="stem+cycle re-certifies starvation on a plain runtime",
                measured="replays" if replays else "does not replay",
                ok=replays,
            )
        )
    result.artifacts["verdict"] = verdict.to_document()
    if verdict.budget_exhausted:
        evidence = "search budget exceeded"
    elif "runs_checked" in verdict.stats:
        evidence = f"runs_checked={verdict.stats['runs_checked']}"
    elif "runs" in verdict.stats:
        evidence = (
            f"runs={verdict.stats['runs']}, "
            f"lassos={verdict.stats.get('lassos', 0)}, "
            f"certainty={verdict.stats.get('certainty')}"
        )
    else:
        evidence = f"interleavings={verdict.stats.get('interleavings')}"
    result.rendered = (
        f"{spec.scenario_id}: {verdict.outcome} "
        f"[{verdict.backend}, {evidence}]"
    )
    return result


# ---------------------------------------------------------------------------
# Mutation testing (oracle sensitivity)
# ---------------------------------------------------------------------------


def run_mutation(
    seed: int = 0,
    iterations: Optional[int] = None,
    mutant: Optional[str] = None,
    backend: Optional[str] = None,
    min_sensitivity: float = 1.0,
) -> ExperimentResult:
    """Score the verification backends against the seeded mutants.

    Runs the kill matrix (:mod:`repro.mutate`) and claims: every mutant
    whose expected killer is evaluated gets killed, the pristine
    baselines are never flagged (zero false kills), and the resulting
    oracle-sensitivity score stays at/above ``min_sensitivity`` (the
    seed score is 1.0).  ``mutant`` / ``backend`` restrict the matrix —
    the campaign axes and the ``mutation-smoke`` CI job use them to
    carve out seconds-fast slices.
    """
    from repro.mutate import get_mutant, kill_matrix

    mutants = None if mutant is None else [get_mutant(mutant)]
    backends = None if backend is None else (backend,)
    matrix = kill_matrix(
        mutants=mutants, seed=seed, iterations=iterations, backends=backends
    )
    result = ExperimentResult(
        experiment_id="mutation",
        title="Mutation-tested oracle sensitivity (kill matrix)",
    )
    expected_cells = matrix.expected_cells
    achieved = sum(1 for cell in expected_cells if cell.killed)
    result.claims.append(
        Claim(
            name="oracle sensitivity",
            expected=f">= {min_sensitivity:.2f}",
            measured=(
                f"{matrix.sensitivity:.2f} "
                f"({achieved}/{len(expected_cells)} expected kills)"
            ),
            ok=matrix.sensitivity >= min_sensitivity,
        )
    )
    result.claims.append(
        Claim(
            name="false kills",
            expected="0 (the unmutated zoo is never flagged)",
            measured=str(len(matrix.false_kills)),
            ok=not matrix.false_kills,
        )
    )
    # Mutants whose every expected killer was filtered out of this run
    # cannot be judged; the kill claim quantifies over the rest.
    judgeable = [
        m
        for m in matrix.mutants
        if any(
            cell.expected_kill for cell in matrix.cells_for(m.mutant_id)
        )
    ]
    surviving = [
        m.mutant_id for m in judgeable if not matrix.killed_by(m.mutant_id)
    ]
    result.claims.append(
        Claim(
            name="every mutant killed",
            expected="each seeded bug caught by >= 1 backend",
            measured="all killed" if not surviving else f"surviving: {surviving}",
            ok=not surviving,
        )
    )
    result.artifacts["kill_matrix"] = matrix.to_document()
    result.rendered = matrix.render_markdown()
    return result


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment.

    ``grid_axes`` names the keyword parameters the runner accepts — the
    contract the campaign layer (:mod:`repro.campaign`) uses to expand
    parameter grids: an axis outside this tuple is dropped for this
    experiment (duplicate jobs collapse by fingerprint).

    ``scenarios`` names the registered scenarios this experiment's
    instances correspond to — validated against the scenario registry
    at import time, so an experiment can never reference an instance
    the registry does not know.  Battery experiments list the scenarios
    of the implementations they quantify over; single-instance
    experiments (``fuzz``, ``verify``) list their default scenario (the
    ``workload``/``scenario`` axis selects others); the finite
    set-model experiments (``thm44``, ``thm49``) run on history-set
    models with no implementation under test and list none.
    """

    experiment_id: str
    title: str
    runner: Callable[..., ExperimentResult]
    grid_axes: Tuple[str, ...] = ()
    scenarios: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for scenario_id in self.scenarios:
            get_scenario(scenario_id)  # unknown ids fail at import time


#: The uniform axes every battery-driven grid experiment accepts.
_BATTERY_AXES = ("registry", "scheduler", "crash", "seed")

#: The scenario slices the batteries quantify over.
_REGISTER_CONSENSUS = ("commit-adopt-consensus", "silent-consensus")
_OPAQUE_TMS = (
    "agp-opacity",
    "i12-opacity",
    "trivial-opacity",
    "global-lock-opacity",
    "intent-opacity",
)

EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec(
            "fig1a",
            "Figure 1(a) consensus grid",
            run_fig1a,
            ("n", "max_steps", "semantics", "lk") + _BATTERY_AXES,
            scenarios=_REGISTER_CONSENSUS,
        ),
        ExperimentSpec(
            "fig1b",
            "Figure 1(b) TM grid",
            run_fig1b,
            ("n", "max_steps", "transactions", "semantics", "lk") + _BATTERY_AXES,
            scenarios=_OPAQUE_TMS,
        ),
        ExperimentSpec(
            "thm52",
            "Theorem 5.2 extremal consensus freedom",
            run_thm52,
            ("n", "max_steps") + _BATTERY_AXES,
            scenarios=_REGISTER_CONSENSUS + ("cas-consensus",),
        ),
        ExperimentSpec(
            "thm53",
            "Theorem 5.3 extremal TM freedom",
            run_thm53,
            ("n", "max_steps", "transactions") + _BATTERY_AXES,
            scenarios=_OPAQUE_TMS,
        ),
        ExperimentSpec(
            "cor45",
            "Corollary 4.5 no weakest (consensus)",
            run_cor45,
            ("max_steps",),
            scenarios=_REGISTER_CONSENSUS,
        ),
        ExperimentSpec(
            "cor46",
            "Corollary 4.6 no weakest (TM)",
            run_cor46,
            ("n", "max_steps"),
            scenarios=_OPAQUE_TMS,
        ),
        ExperimentSpec("thm44", "Theorem 4.4 finite models", run_thm44),
        ExperimentSpec("thm49", "Lemma 4.8 / Theorem 4.9 finite models", run_thm49),
        ExperimentSpec(
            "lem54",
            "Lemma 5.4 Algorithm I(1,2)",
            run_lem54,
            ("n", "transactions", "max_steps", "scheduler", "crash", "seed"),
            scenarios=("i12-opacity",),
        ),
        ExperimentSpec(
            "sec53",
            "Section 5.3 counterexample property",
            run_sec53,
            ("n", "transactions", "max_steps") + _BATTERY_AXES,
            scenarios=("i12-opacity", "trivial-opacity"),
        ),
        ExperimentSpec(
            "sec6",
            "Section 6 liveness taxonomies",
            run_sec6,
            ("n",),
            scenarios=_REGISTER_CONSENSUS,
        ),
        ExperimentSpec(
            "fuzz",
            "Randomized schedule/crash fuzzer + differential oracle",
            run_fuzz,
            ("workload", "mode", "seed", "iterations", "max_steps", "crash", "shrink"),
            scenarios=("agp-opacity",),
        ),
        ExperimentSpec(
            "verify",
            "Uniform scenario verification (exhaustive/fuzz/liveness backends)",
            run_verify,
            (
                "scenario",
                "backend",
                "seed",
                "iterations",
                "max_steps",
                "crash",
                "shrink",
                "reduction",
            ),
            scenarios=("cas-consensus", "trivial-local-progress-f1"),
        ),
        ExperimentSpec(
            "mutation",
            "Mutation-tested oracle sensitivity (kill matrix)",
            run_mutation,
            ("seed", "iterations", "mutant", "backend", "min_sensitivity"),
            # The hunting scenarios are deliberately unregistered (they
            # wrap broken implementations); no registry ids to declare.
        ),
    )
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run a registered experiment by id.

    Unknown ids raise :class:`~repro.util.errors.UsageError` with a
    did-you-mean suggestion (exit code 2 at the CLI), like every other
    registry lookup.
    """
    if experiment_id not in EXPERIMENTS:
        raise unknown_choice("experiment", experiment_id, EXPERIMENTS)
    spec = EXPERIMENTS[experiment_id]
    return spec.runner(**kwargs)
