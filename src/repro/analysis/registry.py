"""Implementation registries: the finite stand-in for "all
implementations".

Definitions 4.1/4.3 quantify over every implementation of an object
type; a finite artifact can only quantify over a *registry*.  The
registries here are built to span the behavioural corners the paper's
arguments distinguish:

* consensus from registers only — obstruction-free (commit-adopt) and
  silent implementations;
* consensus from stronger primitives — CAS (wait-free) and 2-process
  TAS, the positive controls showing the corollaries are about
  registers;
* faulty consensus — agreement/validity violators, for checker
  negative tests and for verifying that exclusion machinery ignores
  implementations that do not ensure the safety property;
* TM — lock-free AGP, the paper's ``I(1,2)``, the trivial all-abort
  TM, the blocking global-lock TM, and the obstruction-free intent TM.

Every entry declares which shipped safety properties the
implementation is *designed* to ensure; experiments re-verify the
claims on generated histories rather than trusting them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from repro.algorithms.consensus import (
    CasConsensus,
    CommitAdoptConsensus,
    InventingConsensus,
    SilentConsensus,
    StubbornConsensus,
    TasConsensus,
)
from repro.algorithms.tm import (
    AgpTransactionalMemory,
    GlobalLockTransactionalMemory,
    I12TransactionalMemory,
    IntentTransactionalMemory,
    TrivialTransactionalMemory,
)
from repro.sim.kernel import Implementation
from repro.util.errors import UsageError

#: Safety-property labels used in ``ensures`` declarations.
AGREEMENT_VALIDITY = "agreement-validity"
OPACITY = "opacity"
COUNTEREXAMPLE_S = "S(opacity+timestamp-rule)"


@dataclass(frozen=True)
class RegistryEntry:
    """One implementation plus its metadata."""

    key: str
    factory: Callable[[], Implementation]
    base_objects: str
    ensures: Tuple[str, ...]
    notes: str = ""

    def make(self) -> Implementation:
        """A fresh implementation instance."""
        return self.factory()


def consensus_registry(
    n_processes: int = 2, registers_only: bool = False
) -> List[RegistryEntry]:
    """Consensus implementations (optionally restricted to registers).

    The register restriction is the hypothesis of Corollaries 4.5/4.10
    and Theorem 5.2.
    """
    entries: List[RegistryEntry] = [
        RegistryEntry(
            key="commit-adopt",
            factory=lambda: CommitAdoptConsensus(n_processes),
            base_objects="registers-only",
            ensures=(AGREEMENT_VALIDITY,),
            notes="obstruction-free; the (1,1) witness of Theorem 5.2",
        ),
        RegistryEntry(
            key="silent",
            factory=lambda: SilentConsensus(n_processes),
            base_objects="registers-only",
            ensures=(AGREEMENT_VALIDITY,),
            notes="never responds; Theorem 4.9's trivial implementation",
        ),
    ]
    if registers_only:
        return entries
    entries.append(
        RegistryEntry(
            key="cas",
            factory=lambda: CasConsensus(n_processes),
            base_objects="compare-and-swap",
            ensures=(AGREEMENT_VALIDITY,),
            notes="wait-free; positive control outside the register model",
        )
    )
    if n_processes == 2:
        entries.append(
            RegistryEntry(
                key="tas",
                factory=lambda: TasConsensus(2),
                base_objects="test-and-set",
                ensures=(AGREEMENT_VALIDITY,),
                notes="wait-free for 2 processes (consensus number 2)",
            )
        )
    entries.extend(
        [
            RegistryEntry(
                key="stubborn",
                factory=lambda: StubbornConsensus(n_processes),
                base_objects="registers-only",
                ensures=(),
                notes="violates agreement (negative fixture)",
            ),
            RegistryEntry(
                key="inventing",
                factory=lambda: InventingConsensus(n_processes),
                base_objects="registers-only",
                ensures=(),
                notes="violates validity (negative fixture)",
            ),
        ]
    )
    return entries


def tm_registry(
    n_processes: int = 2, variables: Sequence[int] = (0,)
) -> List[RegistryEntry]:
    """TM implementations."""
    variables = tuple(variables)
    return [
        RegistryEntry(
            key="agp",
            factory=lambda: AgpTransactionalMemory(n_processes, variables=variables),
            base_objects="compare-and-swap",
            ensures=(OPACITY,),
            notes="lock-free; the (1,n) witness of Theorem 5.3",
        ),
        RegistryEntry(
            key="i12",
            factory=lambda: I12TransactionalMemory(n_processes, variables=variables),
            base_objects="compare-and-swap + snapshot",
            ensures=(OPACITY, COUNTEREXAMPLE_S),
            notes="the paper's Algorithm 1; the (1,2) witness of Section 5.3",
        ),
        RegistryEntry(
            key="trivial",
            factory=lambda: TrivialTransactionalMemory(n_processes, variables=variables),
            base_objects="none",
            ensures=(OPACITY, COUNTEREXAMPLE_S),
            notes="aborts everything; the degenerate safe corner",
        ),
        RegistryEntry(
            key="global-lock",
            factory=lambda: GlobalLockTransactionalMemory(
                n_processes, variables=variables
            ),
            base_objects="test-and-set + register",
            ensures=(OPACITY,),
            notes="blocking; marks the non-blocking boundary",
        ),
        RegistryEntry(
            key="intent",
            factory=lambda: IntentTransactionalMemory(n_processes, variables=variables),
            base_objects="compare-and-swap + registers",
            ensures=(OPACITY,),
            notes="obstruction-free (crash-free), livelocks under contention",
        ),
    ]


def entries_ensuring(
    entries: Sequence[RegistryEntry], safety_label: str
) -> List[RegistryEntry]:
    """Registry entries declaring the given safety property."""
    return [entry for entry in entries if safety_label in entry.ensures]


def select_entries(
    entries: Sequence[RegistryEntry], keys
) -> List[RegistryEntry]:
    """Restrict a registry to the given keys (the campaign ``registry``
    axis).

    ``keys`` is a single key, a comma-separated string, or a sequence of
    keys; ``None`` selects everything.  Unknown keys raise
    :class:`~repro.util.errors.UsageError` naming the known ones, so a
    mistyped grid axis fails at init rather than producing an empty
    battery.
    """
    if keys is None:
        return list(entries)
    if isinstance(keys, str):
        keys = [part.strip() for part in keys.split(",") if part.strip()]
    known = {entry.key: entry for entry in entries}
    unknown = [key for key in keys if key not in known]
    if unknown:
        raise UsageError(
            f"unknown registry key(s) {unknown!r}; known keys: "
            f"{sorted(known)}"
        )
    return [known[key] for key in keys]
