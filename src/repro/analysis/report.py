"""ASCII rendering of experiment artifacts (Figure 1 panels, claim
tables, Hasse diagrams).

The benchmark harness prints these renderings so a run of the bench
suite regenerates the paper's figure panels in the terminal, row for
row.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.analysis.classification import ClassifiedGrid
from repro.core.lattice import LivenessOrder
from repro.core.properties import Certainty

#: Figure 1's point glyphs.
EXCLUDED = "●"
IMPLEMENTABLE = "○"
UNDETERMINED = "?"


def render_grid(grid: ClassifiedGrid, annotate: bool = True) -> str:
    """Render one Figure-1 panel.

    Axis layout matches the paper: ``k`` grows to the right, ``l``
    grows upward, only points with ``l <= k`` exist, black = excludes,
    white = does not exclude.
    """
    lines: List[str] = []
    lines.append(f"(l,k)-freedom vs {grid.safety_name}  [semantics={grid.semantics}]")
    header = "  l\\k " + "".join(f"{k:>4}" for k in range(1, grid.n + 1))
    lines.append(header)
    for l in range(grid.n, 0, -1):
        cells: List[str] = []
        for k in range(1, grid.n + 1):
            if l > k:
                cells.append("    ")
                continue
            point = grid.maybe_point(l, k)
            if point is None:  # grid classified over an (l,k) subset
                cells.append("   .")
                continue
            glyph = UNDETERMINED if point.undetermined else (
                EXCLUDED if point.excludes else IMPLEMENTABLE
            )
            marker = "~" if point.certainty is Certainty.HORIZON else " "
            cells.append(f"{glyph:>3}{marker}")
        lines.append(f"{l:>5} " + "".join(cells))
    lines.append(
        f"  {EXCLUDED} = excludes   {IMPLEMENTABLE} = does not exclude   "
        "~ = horizon-certainty evidence"
    )
    if annotate:
        for point in grid.points:
            glyph = EXCLUDED if point.excludes else IMPLEMENTABLE
            lines.append(f"    {point.label} {glyph}  {point.evidence}")
    return "\n".join(lines)


def render_claims(
    title: str, claims: Sequence[Tuple[str, str, str, bool]]
) -> str:
    """A paper-vs-measured claim table.

    Each claim row is ``(claim, expected, measured, ok)``.
    """
    lines = [title, "-" * len(title)]
    name_width = max((len(c[0]) for c in claims), default=10)
    expected_width = max((len(c[1]) for c in claims), default=8)
    measured_width = max((len(c[2]) for c in claims), default=8)
    header = (
        f"{'claim':<{name_width}}  {'paper':<{expected_width}}  "
        f"{'measured':<{measured_width}}  status"
    )
    lines.append(header)
    lines.append("=" * len(header))
    for claim, expected, measured, ok in claims:
        status = "OK" if ok else "MISMATCH"
        lines.append(
            f"{claim:<{name_width}}  {expected:<{expected_width}}  "
            f"{measured:<{measured_width}}  {status}"
        )
    return "\n".join(lines)


def render_hasse(order: LivenessOrder, title: str = "Hasse diagram") -> str:
    """Covering edges of a liveness order, strongest first."""
    lines = [title, "-" * len(title)]
    edges = order.hasse_edges()
    if not edges:
        lines.append("(antichain: no comparable pairs)")
    for stronger, weaker in edges:
        lines.append(f"{stronger}  >  {weaker}")
    lines.append(f"maximal: {', '.join(order.maximal_elements())}")
    lines.append(f"minimal: {', '.join(order.minimal_elements())}")
    lines.append(f"totally ordered: {order.is_totally_ordered()}")
    return "\n".join(lines)
