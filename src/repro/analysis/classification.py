"""Classifying the ``(l,k)`` grid against a safety property (Figure 1).

A grid point ``(l,k)`` is *excluded* (black in Figure 1) when no
implementation ensures both the safety property and
``(l,k)``-freedom.  Relative to a registry and a battery of plays:

* ``(l,k)`` is **excluded** if every registered implementation (that
  ensures the safety property) has at least one battery play whose
  history satisfies the safety property while the execution summary
  violates ``(l,k)``-freedom;
* ``(l,k)`` is **not excluded** if some implementation's plays *all*
  satisfy both (a witness implementation).

Points that are neither (adversaries defeated some implementations but
a would-be witness also has a violating play — which would indicate an
incoherent battery) are flagged ``undetermined``; the shipped batteries
never produce them, and the tests assert so.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.freedom import LKFreedom
from repro.core.history import History
from repro.core.properties import (
    Certainty,
    ExecutionSummary,
    SafetyProperty,
)

#: One battery play: (history, summary, play label).
Play = Tuple[History, ExecutionSummary, str]


@dataclass(frozen=True)
class GridPoint:
    """Verdict for one ``(l,k)`` point."""

    l: int
    k: int
    excludes: bool
    certainty: Certainty
    evidence: str
    undetermined: bool = False

    @property
    def label(self) -> str:
        return f"({self.l},{self.k})"


@dataclass
class ClassifiedGrid:
    """A full Figure-1 panel."""

    n: int
    safety_name: str
    semantics: str
    points: List[GridPoint] = field(default_factory=list)

    def point(self, l: int, k: int) -> GridPoint:
        point = self.maybe_point(l, k)
        if point is None:
            # repro-lint: disable=ER001 -- mapping-protocol accessor, not a registry lookup; KeyError mirrors dict semantics and maybe_point() is the lenient path
            raise KeyError(f"no point ({l},{k})")
        return point

    def maybe_point(self, l: int, k: int) -> Optional[GridPoint]:
        """The point at ``(l,k)``, or ``None`` when the grid was
        classified over a subset that omits it."""
        for candidate in self.points:
            if candidate.l == l and candidate.k == k:
                return candidate
        return None

    def excluded_points(self) -> List[Tuple[int, int]]:
        return [(p.l, p.k) for p in self.points if p.excludes]

    def implementable_points(self) -> List[Tuple[int, int]]:
        return [(p.l, p.k) for p in self.points if not p.excludes]

    def matches(self, expected_excluded) -> bool:
        """Compare against a predicate ``expected_excluded(l, k)``."""
        return all(
            point.excludes == bool(expected_excluded(point.l, point.k))
            for point in self.points
        )


def classify_grid(
    n: int,
    safety: SafetyProperty,
    plays_by_impl: Mapping[str, Sequence[Play]],
    semantics: str = "conditional",
    safety_precomputed: Optional[Mapping[str, Sequence[bool]]] = None,
    points: Optional[Sequence[Tuple[int, int]]] = None,
) -> ClassifiedGrid:
    """Classify every ``(l,k)`` with ``1 <= l <= k <= n``.

    ``plays_by_impl`` maps implementation keys (all of which must
    ensure the safety property by design) to their battery plays.
    ``safety_precomputed`` optionally supplies per-play safety verdicts
    (checking opacity on long histories is the dominant cost; callers
    that already validated them can pass the bits).  ``points``
    restricts classification to a subset of the grid (the campaign
    ``lk`` axis); the default is the full triangle.
    """
    grid = ClassifiedGrid(n=n, safety_name=safety.name, semantics=semantics)
    safety_bits: Dict[str, List[bool]] = {}
    for key, plays in plays_by_impl.items():
        if safety_precomputed is not None and key in safety_precomputed:
            safety_bits[key] = list(safety_precomputed[key])
        else:
            safety_bits[key] = [
                bool(safety.check_history(history)) for history, _s, _label in plays
            ]
    if points is None:
        points = [
            (l, k) for k in range(1, n + 1) for l in range(1, k + 1)
        ]
    for l, k in points:
        prop = LKFreedom(l, k, semantics=semantics)
        grid.points.append(
            _classify_point(prop, plays_by_impl, safety_bits)
        )
    return grid


def _classify_point(
    prop: LKFreedom,
    plays_by_impl: Mapping[str, Sequence[Play]],
    safety_bits: Mapping[str, Sequence[bool]],
) -> GridPoint:
    defeats: Dict[str, Tuple[str, Certainty]] = {}
    witnesses: Dict[str, Certainty] = {}
    for key, plays in plays_by_impl.items():
        defeat: Optional[Tuple[str, Certainty]] = None
        all_satisfy = True
        witness_certainty = Certainty.PROVED
        for (history, summary, label), safe in zip(plays, safety_bits[key]):
            verdict = prop.evaluate(summary)
            if safe and not verdict.holds:
                all_satisfy = False
                candidate = (label, verdict.certainty)
                if defeat is None or (
                    defeat[1] is Certainty.HORIZON
                    and verdict.certainty is Certainty.PROVED
                ):
                    defeat = candidate
            elif not safe:
                all_satisfy = False  # unsafe play: not usable either way
            elif verdict.certainty is Certainty.HORIZON:
                witness_certainty = Certainty.HORIZON
        if defeat is not None:
            defeats[key] = defeat
        elif all_satisfy and plays:
            witnesses[key] = witness_certainty
    excludes = set(defeats) == set(plays_by_impl) and bool(plays_by_impl)
    if excludes:
        certainty = (
            Certainty.HORIZON
            if any(c is Certainty.HORIZON for _label, c in defeats.values())
            else Certainty.PROVED
        )
        evidence = "; ".join(
            f"{key} defeated by {label}" for key, (label, _c) in sorted(defeats.items())
        )
        return GridPoint(
            l=prop.l, k=prop.k, excludes=True, certainty=certainty, evidence=evidence
        )
    if witnesses:
        key = sorted(witnesses)[0]
        return GridPoint(
            l=prop.l,
            k=prop.k,
            excludes=False,
            certainty=witnesses[key],
            evidence=f"witness implementation: {key}",
        )
    return GridPoint(
        l=prop.l,
        k=prop.k,
        excludes=False,
        certainty=Certainty.HORIZON,
        evidence="battery incoherent: no full defeat and no clean witness",
        undetermined=True,
    )
