"""Shared play batteries: the schedule families behind the grid
experiments.

Experiments that quantify over schedules use these batteries (moved out
of ``experiments.py`` so that module stays a thin layer of claim
evaluators):

* :func:`consensus_plays` — solo schedules (obstruction premise),
  pairwise lockstep with distinct proposals (the CIL contention
  schedule), and full-group round-robin;
* :func:`tm_plays` — round-robin and pairwise group schedules over a
  transaction workload, the three-step local-progress adversary (both
  victim roles), and — for three or more processes — the Section 5.3
  concurrent-start adversary.

Each play yields ``(history, summary, label)``; classification
evaluates safety on the history and liveness on the summary.  All
plays are built as :class:`~repro.engine.batch.PlayTask`\\ s and
executed through the engine's batch runner — serially by default, or
on a process pool under ``processes`` / ``REPRO_ENGINE_PARALLEL``.

The campaign grid axes select battery subsets uniformly:
``schedulers`` restricts the schedule families, ``crash`` injects a
crash pattern (:func:`~repro.sim.crash.parse_crash_spec` syntax) into
every composed play, and ``seed`` adds a seeded random-scheduler play
per implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.adversaries.counterexample import CounterexampleAdversary
from repro.adversaries.tm_local_progress import TMLocalProgressAdversary
from repro.analysis.classification import Play
from repro.analysis.registry import RegistryEntry
from repro.engine.batch import PlayTask, run_play_batch
from repro.sim.crash import parse_crash_spec
from repro.sim.drivers import ComposedDriver
from repro.sim.record import RunResult
from repro.sim.schedulers import (
    GroupScheduler,
    LockstepScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SoloScheduler,
)
from repro.sim.workload import TransactionWorkload, propose_workload
from repro.util.errors import UsageError

#: Schedule families addressable by the ``scheduler`` grid axis.
CONSENSUS_SCHEDULE_FAMILIES = ("solo", "lockstep", "round-robin", "random")
TM_SCHEDULE_FAMILIES = (
    "round-robin",
    "group",
    "tm-adversary",
    "counterexample",
    "random",
)


def _select_families(
    schedulers, known: Sequence[str], seed: Optional[int]
) -> List[str]:
    """Resolve the ``scheduler`` axis to a list of schedule families.

    ``None`` selects every deterministic family, plus ``random`` when a
    ``seed`` is given (the seed axis is what makes random plays
    reproducible).  Explicit values — one family, a comma-separated
    string, or a sequence — are validated against ``known``.
    """
    if schedulers is None:
        families = [family for family in known if family != "random"]
        if seed is not None:
            families.append("random")
        return families
    if isinstance(schedulers, str):
        schedulers = [part.strip() for part in schedulers.split(",") if part.strip()]
    unknown = [family for family in schedulers if family not in known]
    if unknown:
        raise UsageError(
            f"unknown scheduler family(ies) {unknown!r}; known: {list(known)}"
        )
    if seed is not None and "random" not in schedulers:
        raise UsageError(
            "a seed only affects the 'random' schedule family, which the "
            f"scheduler selection {list(schedulers)!r} excludes — sweeping "
            "seeds would run identical batteries; add 'random' or drop the "
            "seed axis"
        )
    return list(schedulers)


def lk_points(n: int, lk) -> Optional[List[Tuple[int, int]]]:
    """Resolve the ``lk`` axis (``"LxK"`` caps) to grid points.

    ``None`` means the full ``1 <= l <= k <= n`` triangle; ``"2x3"``
    restricts to points with ``l <= 2`` and ``k <= 3``.
    """
    if lk is None:
        return None
    parts = str(lk).lower().split("x")
    if len(parts) != 2 or not all(part.strip().isdigit() for part in parts):
        raise UsageError(
            f"bad lk range {lk!r}; expected 'LxK' caps such as '2x3'"
        )
    l_max, k_max = int(parts[0]), int(parts[1])
    points = [
        (l, k)
        for k in range(1, min(k_max, n) + 1)
        for l in range(1, min(l_max, k) + 1)
    ]
    if not points:
        raise UsageError(f"lk range {lk!r} selects no grid points for n={n}")
    return points


def _assemble_battery(
    entries: Sequence[RegistryEntry],
    tasks: Sequence[PlayTask],
    results: Sequence[RunResult],
) -> Dict[str, List[Play]]:
    """Group batch results back into per-implementation play lists."""
    battery: Dict[str, List[Play]] = {entry.key: [] for entry in entries}
    modes = {
        entry.key: entry.make().object_type.progress_mode for entry in entries
    }
    for task, result in zip(tasks, results):
        battery[task.key].append(
            (result.history, result.summary(modes[task.key]), task.label)
        )
    return battery


def consensus_plays(
    n: int,
    entries: Sequence[RegistryEntry],
    max_steps: int = 20_000,
    processes: Optional[int] = None,
    schedulers=None,
    crash: Optional[str] = None,
    seed: Optional[int] = None,
) -> Dict[str, List[Play]]:
    """The consensus schedule battery (see module docstring)."""
    tasks: List[PlayTask] = []
    families = _select_families(schedulers, CONSENSUS_SCHEDULE_FAMILIES, seed)
    crash_factory = parse_crash_spec(crash)

    def add(entry: RegistryEntry, label: str, scheduler_factory, proposals) -> None:
        tasks.append(
            PlayTask(
                key=entry.key,
                label=label,
                implementation_factory=entry.make,
                driver_factory=lambda sf=scheduler_factory, p=tuple(proposals): (
                    ComposedDriver(
                        sf(),
                        propose_workload(list(p)),
                        crash_plan=None if crash_factory is None else crash_factory(),
                    )
                ),
                max_steps=max_steps,
            )
        )

    for entry in entries:
        if "solo" in families:
            for pid in range(n):
                proposals: List[Optional[int]] = [None] * n
                proposals[pid] = pid
                add(
                    entry,
                    f"solo(p{pid})",
                    lambda pid=pid: SoloScheduler(pid),
                    proposals,
                )
        if "lockstep" in families:
            for a in range(n):
                for b in range(a + 1, n):
                    proposals = [None] * n
                    proposals[a], proposals[b] = 0, 1
                    add(
                        entry,
                        f"lockstep(p{a},p{b})",
                        lambda a=a, b=b: LockstepScheduler([a, b]),
                        proposals,
                    )
        if "round-robin" in families:
            add(entry, "round-robin(all)", RoundRobinScheduler, list(range(n)))
        if "random" in families:
            play_seed = 0 if seed is None else seed
            add(
                entry,
                f"random(seed={play_seed})",
                lambda s=play_seed: RandomScheduler(s),
                list(range(n)),
            )

    return _assemble_battery(entries, tasks, run_play_batch(tasks, processes=processes))


def tm_plays(
    n: int,
    entries: Sequence[RegistryEntry],
    variables: Sequence[int] = (0,),
    transactions: int = 2,
    max_steps: int = 240,
    include_counterexample: bool = True,
    processes: Optional[int] = None,
    schedulers=None,
    crash: Optional[str] = None,
    seed: Optional[int] = None,
) -> Dict[str, List[Play]]:
    """The TM schedule-and-adversary battery (engine-batched, like
    :func:`consensus_plays`, with the same uniform grid axes over
    :data:`TM_SCHEDULE_FAMILIES`; crash patterns apply to the composed
    schedule plays, not to the adversary strategies)."""
    tasks: List[PlayTask] = []
    families = _select_families(schedulers, TM_SCHEDULE_FAMILIES, seed)
    crash_factory = parse_crash_spec(crash)

    def crash_plan():
        return None if crash_factory is None else crash_factory()

    def add(entry: RegistryEntry, label: str, driver_factory) -> None:
        tasks.append(
            PlayTask(
                key=entry.key,
                label=label,
                implementation_factory=entry.make,
                driver_factory=driver_factory,
                max_steps=max_steps,
            )
        )

    for entry in entries:
        if "round-robin" in families:
            add(
                entry,
                "round-robin(all)",
                lambda: ComposedDriver(
                    RoundRobinScheduler(),
                    TransactionWorkload(n, transactions, variables=variables),
                    crash_plan=crash_plan(),
                ),
            )
        if "group" in families:
            for a in range(n):
                for b in range(a + 1, n):
                    add(
                        entry,
                        f"group(p{a},p{b})",
                        lambda a=a, b=b: ComposedDriver(
                            GroupScheduler([a, b]),
                            TransactionWorkload(n, transactions, variables=variables),
                            crash_plan=crash_plan(),
                        ),
                    )
        if "random" in families:
            play_seed = 0 if seed is None else seed
            add(
                entry,
                f"random(seed={play_seed})",
                lambda s=play_seed: ComposedDriver(
                    RandomScheduler(s),
                    TransactionWorkload(n, transactions, variables=variables),
                    crash_plan=crash_plan(),
                ),
            )
        if "tm-adversary" in families:
            for victim, helper in ((0, 1), (1, 0)):
                add(
                    entry,
                    f"tm-adversary(victim=p{victim})",
                    lambda victim=victim, helper=helper: TMLocalProgressAdversary(
                        victim=victim, helper=helper, variable=variables[0]
                    ),
                )
        if "counterexample" in families and include_counterexample and n >= 3:
            add(
                entry,
                "counterexample-adversary",
                lambda: CounterexampleAdversary(tuple(range(3))),
            )

    return _assemble_battery(entries, tasks, run_play_batch(tasks, processes=processes))
