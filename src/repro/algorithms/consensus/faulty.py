"""Deliberately incorrect consensus implementations.

The safety checkers must be demonstrated to *fail* on bad
implementations, not only to pass on good ones; these implementations
provide the negative fixtures.  They are also useful for validating
that the adversary machinery refuses plays against implementations that
do not ensure the safety property (Definition 4.3's condition (3) only
quantifies over implementations ensuring ``S``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.base_objects.base import ObjectPool
from repro.base_objects.register import AtomicRegister
from repro.core.object_type import ObjectType
from repro.objects.consensus import consensus_object_type
from repro.sim.kernel import Algorithm, Implementation, Op
from repro.util.errors import SimulationError


class StubbornConsensus(Implementation):
    """Violates agreement: every process decides its own proposal."""

    name = "stubborn-consensus"

    def __init__(self, n_processes: int, object_type: Optional[ObjectType] = None):
        super().__init__(object_type or consensus_object_type(), n_processes)

    def create_pool(self) -> ObjectPool:
        return ObjectPool([AtomicRegister("scratch", initial=None)])

    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        if operation != "propose" or len(args) != 1:
            raise SimulationError(f"unsupported {operation}{args!r}")
        return self._propose(args[0])

    @staticmethod
    def _propose(proposal: Any) -> Algorithm:
        yield Op("scratch", "write", (proposal,))
        return proposal


class InventingConsensus(Implementation):
    """Violates validity: decides a constant nobody proposed."""

    name = "inventing-consensus"

    #: The invented decision value.
    INVENTED = ("out-of-thin-air",)

    def __init__(self, n_processes: int, object_type: Optional[ObjectType] = None):
        super().__init__(object_type or consensus_object_type(), n_processes)

    def create_pool(self) -> ObjectPool:
        return ObjectPool([AtomicRegister("scratch", initial=None)])

    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        if operation != "propose" or len(args) != 1:
            raise SimulationError(f"unsupported {operation}{args!r}")
        return self._propose()

    @classmethod
    def _propose(cls) -> Algorithm:
        yield Op("scratch", "read")
        return cls.INVENTED


class SilentConsensus(Implementation):
    """The trivial implementation of Theorem 4.9's proof: never responds.

    Its algorithm spins forever on a scratch register, so every
    invocation remains pending.  Vacuously ensures every safety
    property; ensures no nontrivial liveness.  (Theorem 4.9 uses it to
    rule out candidate strongest liveness properties whose extra
    histories contain responses.)
    """

    name = "silent-consensus"

    def __init__(self, n_processes: int, object_type: Optional[ObjectType] = None):
        super().__init__(object_type or consensus_object_type(), n_processes)

    def create_pool(self) -> ObjectPool:
        return ObjectPool([AtomicRegister("scratch", initial=0)])

    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        return self._spin(memory)

    @staticmethod
    def _spin(memory: Dict[str, Any]) -> Algorithm:
        memory["pc"] = "spin"
        while True:
            yield Op("scratch", "read")

    def liveness_abstraction(self, pool, memories):
        # The spin loop is stateless: the pool plus per-process memories
        # (each just a pc marker) determine all future behaviour, so the
        # identity abstraction is trivially a bisimulation quotient.
        from repro.util.freeze import freeze

        return (pool.snapshot_state(), freeze(list(memories)))
