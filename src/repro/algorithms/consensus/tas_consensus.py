"""Two-process consensus from test-and-set and registers.

Test-and-set has consensus number exactly 2 (Herlihy's hierarchy): this
implementation is wait-free for two processes and rejects larger
systems at construction time.  Included to populate the implementation
registry with a base-object class strictly between registers and CAS.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.base_objects.base import ObjectPool
from repro.base_objects.register import RegisterArray
from repro.base_objects.tas import TestAndSet
from repro.core.object_type import ObjectType
from repro.objects.consensus import consensus_object_type
from repro.sim.kernel import Algorithm, Implementation, Op
from repro.util.errors import SimulationError


class TasConsensus(Implementation):
    """Wait-free 2-process consensus: publish proposal, race the TAS."""

    name = "tas-consensus"

    def __init__(self, n_processes: int = 2, object_type: Optional[ObjectType] = None):
        if n_processes != 2:
            raise ValueError(
                "test-and-set has consensus number 2: exactly two processes"
            )
        super().__init__(object_type or consensus_object_type(), n_processes)

    def create_pool(self) -> ObjectPool:
        return ObjectPool(
            [
                RegisterArray("proposals", size=2, initial=None),
                TestAndSet("race"),
            ]
        )

    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        if operation != "propose" or len(args) != 1:
            raise SimulationError(
                f"consensus implementation supports propose(v); got "
                f"{operation}{args!r}"
            )
        return self._propose(pid, args[0], memory)

    @staticmethod
    def _propose(pid: int, proposal: Any, memory: Dict[str, Any]) -> Algorithm:
        memory["pc"] = "publish"
        yield Op("proposals", "write", (pid, proposal))
        memory["pc"] = "race"
        lost = yield Op("race", "test_and_set")
        if not lost:
            return proposal
        memory["pc"] = "read-winner"
        winner_value = yield Op("proposals", "read", (1 - pid,))
        return winner_value
