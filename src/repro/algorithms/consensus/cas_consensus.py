"""Wait-free consensus from a compare-and-swap object.

Compare-and-swap has infinite consensus number: one CAS on a decision
cell solves consensus wait-free for any number of processes.  In the
paper's framing this implementation ensures ``Lmax`` (wait-freedom)
together with agreement & validity — demonstrating that the consensus
corollaries (4.5, 4.10) are statements about *register-only*
implementations, not about consensus per se.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.base_objects.base import ObjectPool
from repro.base_objects.cas import CompareAndSwap
from repro.core.object_type import ObjectType
from repro.objects.consensus import consensus_object_type
from repro.sim.kernel import Algorithm, Implementation, Op
from repro.util.errors import SimulationError

#: The undecided marker in the decision cell.
UNDECIDED = ("undecided",)


class CasConsensus(Implementation):
    """Wait-free consensus: one ``compare_and_swap`` then one ``read``."""

    name = "cas-consensus"

    def __init__(self, n_processes: int, object_type: Optional[ObjectType] = None):
        super().__init__(object_type or consensus_object_type(), n_processes)

    def create_pool(self) -> ObjectPool:
        return ObjectPool([CompareAndSwap("decision", initial=UNDECIDED)])

    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        if operation != "propose" or len(args) != 1:
            raise SimulationError(
                f"consensus implementation supports propose(v); got "
                f"{operation}{args!r}"
            )
        return self._propose(args[0], memory)

    @staticmethod
    def _propose(proposal: Any, memory: Dict[str, Any]) -> Algorithm:
        memory["pc"] = "cas"
        won = yield Op("decision", "compare_and_swap", (UNDECIDED, proposal))
        if won:
            return proposal
        memory["pc"] = "read"
        decided = yield Op("decision", "read")
        return decided
