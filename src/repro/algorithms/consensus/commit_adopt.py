"""Obstruction-free consensus from read/write registers.

The ``(1,1)``-freedom witness of Theorem 5.2: the paper cites [20, 17]
for the possibility of obstruction-free consensus from registers; this
module implements the classic construction from repeated *commit-adopt*
rounds (Gafni).

Each round ``r`` uses fresh register banks ``A[(r, 1, i)]`` and
``A[(r, 2, i)]`` in a register file:

* phase 1 — write your preference, read everyone's; if yours is the
  only preference visible, mark it a commit candidate;
* phase 2 — write ``(candidate?, preference)``, read everyone's; if all
  visible entries are commit candidates for the same value, **commit**
  it; if any entry is a candidate for ``w``, **adopt** ``w``; otherwise
  keep your own preference.

A committed value is written to a decision register ``D`` which every
process checks at the top of each round.  Commit-adopt's agreement
property (any committer forces all concurrent phase-2 readers onto its
value) plus the monotone decision register give agreement & validity;
a solo runner commits in its first round, giving obstruction freedom.

Under a two-process lockstep schedule with distinct proposals, both
processes see each other's preference in every phase, never produce a
candidate, keep their own values, and loop forever — the concrete
``(1,2)``-freedom exclusion witness of Theorem 5.2.

Lasso support: all operation-local state lives in ``memory`` (keys
``pc``, ``round``, ``pref``, ``j``, ``vals``, ``cand``) and
:meth:`liveness_abstraction` quotients away the round number.  The
quotient is a bisimulation because rounds interact only through
same-round registers and ``D``: shifting every round index (and
dropping register banks below everyone's current round, which no
process can ever read again) commutes with every transition.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

from repro.base_objects.base import ObjectPool
from repro.base_objects.regfile import RegisterFile
from repro.base_objects.register import AtomicRegister
from repro.core.object_type import ObjectType
from repro.objects.consensus import consensus_object_type
from repro.sim.kernel import Algorithm, Implementation, Op
from repro.util.errors import SimulationError
from repro.util.freeze import freeze

#: Sentinel stored in untouched cells.
EMPTY = None


class CommitAdoptConsensus(Implementation):
    """Round-based obstruction-free consensus from registers only."""

    name = "commit-adopt-consensus"

    def __init__(self, n_processes: int, object_type: Optional[ObjectType] = None):
        super().__init__(object_type or consensus_object_type(), n_processes)

    def create_pool(self) -> ObjectPool:
        return ObjectPool(
            [
                RegisterFile("A", initial=EMPTY),
                AtomicRegister("D", initial=EMPTY),
            ]
        )

    def initial_memory(self, pid: int) -> Dict[str, Any]:
        return {"round": 0}

    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        if operation != "propose" or len(args) != 1:
            raise SimulationError(
                f"consensus implementation supports propose(v); got "
                f"{operation}{args!r}"
            )
        return self._propose(pid, args[0], memory)

    def _propose(self, pid: int, proposal: Any, memory: Dict[str, Any]) -> Algorithm:
        memory["pref"] = proposal
        while True:
            memory["round"] += 1
            round_number = memory["round"]
            # Fast path: adopt a published decision.
            memory["pc"] = "check-D"
            decided = yield Op("D", "read")
            if decided is not EMPTY:
                return decided
            # Phase 1: publish preference, collect everyone's.  All
            # loop-carried state lives in ``memory`` (lasso contract).
            memory["pc"] = "phase1-write"
            yield Op("A", "write", ((round_number, 1, pid), memory["pref"]))
            memory["seen"] = ()
            for j in range(self.n_processes):
                memory["pc"] = ("phase1-read", j)
                value = yield Op("A", "read", ((round_number, 1, j),))
                if value is not EMPTY:
                    memory["seen"] = memory["seen"] + (value,)
            distinct = {freeze(v): v for v in memory["seen"]}
            candidate = len(distinct) == 1
            # Phase 2: publish (candidate?, pref); decide or adopt.
            memory["cand"] = candidate
            memory["pc"] = "phase2-write"
            yield Op(
                "A", "write", ((round_number, 2, pid), (candidate, memory["pref"]))
            )
            memory["entries"] = ()
            for j in range(self.n_processes):
                memory["pc"] = ("phase2-read", j)
                entry = yield Op("A", "read", ((round_number, 2, j),))
                if entry is not EMPTY:
                    memory["entries"] = memory["entries"] + (entry,)
            entries = memory["entries"]
            committed_value = None
            adopted_value = None
            if entries and all(flag for flag, _ in entries):
                values = {freeze(v): v for _, v in entries}
                if len(values) == 1:
                    committed_value = next(iter(values.values()))
            if committed_value is None:
                for flag, value in entries:
                    if flag:
                        adopted_value = value
                        break
            if committed_value is not None:
                memory["pc"] = "decide-write"
                yield Op("D", "write", (committed_value,))
                return committed_value
            if adopted_value is not None:
                memory["pref"] = adopted_value
            # else: keep own preference and retry.

    def liveness_abstraction(
        self, pool: ObjectPool, memories: Tuple[Dict[str, Any], ...]
    ) -> Optional[Hashable]:
        """Round-shift quotient (see module docstring for soundness).

        The shift base is the minimum round among *participants*
        (processes that have entered ``propose``); register banks below
        every participant's round are dropped.  Consensus is one-shot,
        so in any run whose driver has fixed its input set (all shipped
        batteries and adversaries), a process that has not proposed by
        now never will, and the dropped banks can never be read again —
        under that usage the quotient is a bisimulation.  The
        participant set itself is part of the abstraction, so runs in
        which it still grows cannot alias runs in which it is settled.
        """
        rounds = [m.get("round", 0) for m in memories]
        participant_rounds = [r for r in rounds if r >= 1]
        base = min(participant_rounds) if participant_rounds else 0
        register_file = pool.get("A")
        assert isinstance(register_file, RegisterFile)
        live_cells = register_file.cells_matching(lambda key: key[0] >= base)
        normalized_cells = tuple(
            sorted(
                (
                    ((key[0] - base, key[1], key[2]), freeze(value))
                    for key, value in live_cells.items()
                ),
                key=repr,
            )
        )
        decision = pool.get("D").snapshot_state()
        normalized_memories = tuple(
            freeze(
                {
                    key: (
                        value - base
                        if key == "round" and value >= 1
                        else value
                    )
                    for key, value in memory.items()
                }
            )
            for memory in memories
        )
        return (normalized_cells, decision, normalized_memories)
