"""Consensus implementations (register-only and stronger-primitive)."""

from repro.algorithms.consensus.commit_adopt import CommitAdoptConsensus
from repro.algorithms.consensus.cas_consensus import CasConsensus
from repro.algorithms.consensus.tas_consensus import TasConsensus
from repro.algorithms.consensus.faulty import (
    InventingConsensus,
    SilentConsensus,
    StubbornConsensus,
)

__all__ = [
    "CommitAdoptConsensus",
    "CasConsensus",
    "TasConsensus",
    "InventingConsensus",
    "SilentConsensus",
    "StubbornConsensus",
]
