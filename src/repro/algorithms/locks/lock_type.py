"""Mutual-exclusion lock object type.

Used by the progress-taxonomy examples: starvation-freedom — "every
correct process that tries to acquire a lock should eventually
succeed" — is Section 3.2's example of the strongest liveness
requirement for lock-based implementations, so the registry carries two
lock implementations on opposite sides of it.

Operations: ``acquire()`` → ``GRANTED``, ``release()`` → ``RELEASED``.
Progress is the ``REPEATED`` receipt of ``GRANTED`` responses.
"""

from __future__ import annotations

from repro.core.object_type import ObjectType, OperationSignature, ProgressMode

#: Response to a successful acquisition.
GRANTED = "granted"
#: Response to a release.
RELEASED = "released"


def lock_object_type() -> ObjectType:
    """Build the lock object type."""
    return ObjectType(
        name="lock",
        operations=(
            OperationSignature(
                name="acquire", argument_domains=(), response_domain=(GRANTED,)
            ),
            OperationSignature(
                name="release", argument_domains=(), response_domain=(RELEASED,)
            ),
        ),
        sequential_spec=None,
        good_response=lambda response: response.value == GRANTED,
        progress_mode=ProgressMode.REPEATED,
    )
