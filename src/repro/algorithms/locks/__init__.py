"""Mutual-exclusion locks (progress-taxonomy fixtures)."""

from repro.algorithms.locks.lock_type import GRANTED, RELEASED, lock_object_type
from repro.algorithms.locks.bakery import BakeryLock
from repro.algorithms.locks.mcs_lock import McsLock
from repro.algorithms.locks.tas_lock import TasLock

__all__ = [
    "GRANTED",
    "RELEASED",
    "lock_object_type",
    "BakeryLock",
    "McsLock",
    "TasLock",
]
