"""Test-and-set spin lock: deadlock-free but not starvation-free.

Some process always wins the next acquisition (deadlock freedom — a
minimal progress guarantee), but a particular process can lose the race
forever under an adversarial fair schedule: the taxonomy tests exhibit
an interleaving in which one process acquires repeatedly while the
other's ``test_and_set`` always lands on a taken lock.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.base_objects.base import ObjectPool
from repro.base_objects.tas import TestAndSet
from repro.core.object_type import ObjectType
from repro.sim.kernel import Algorithm, Implementation, Op
from repro.util.errors import SimulationError

from repro.algorithms.locks.lock_type import GRANTED, RELEASED, lock_object_type


class TasLock(Implementation):
    """Spin on one test-and-set bit."""

    name = "tas-lock"

    def __init__(self, n_processes: int, object_type: Optional[ObjectType] = None):
        super().__init__(object_type or lock_object_type(), n_processes)

    def create_pool(self) -> ObjectPool:
        return ObjectPool([TestAndSet("lock")])

    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        if operation == "acquire":
            return self._acquire(pid, memory)
        if operation == "release":
            return self._release(pid, memory)
        raise SimulationError(f"lock has acquire/release; got {operation!r}")

    @staticmethod
    def _acquire(pid: int, memory: Dict[str, Any]) -> Algorithm:
        if memory.get("holding"):
            raise SimulationError(f"p{pid} acquires while holding the lock")
        memory["pc"] = "spin"
        while True:
            taken = yield Op("lock", "test_and_set")
            if not taken:
                break
        memory["holding"] = True
        return GRANTED

    @staticmethod
    def _release(pid: int, memory: Dict[str, Any]) -> Algorithm:
        if not memory.get("holding"):
            raise SimulationError(f"p{pid} releases without holding the lock")
        memory["pc"] = "clear"
        yield Op("lock", "clear")
        memory["holding"] = False
        return RELEASED
