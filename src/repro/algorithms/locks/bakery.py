"""Lamport's bakery lock: starvation-free mutual exclusion from registers.

Every process that keeps taking steps while waiting eventually enters
the critical section (tickets are totally ordered by ``(number, pid)``
and only finitely many processes can sit ahead of a given ticket) — the
starvation-freedom witness of the progress-taxonomy experiments.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.base_objects.base import ObjectPool
from repro.base_objects.register import RegisterArray
from repro.core.object_type import ObjectType
from repro.sim.kernel import Algorithm, Implementation, Op
from repro.util.errors import SimulationError

from repro.algorithms.locks.lock_type import GRANTED, RELEASED, lock_object_type


class BakeryLock(Implementation):
    """Lamport's bakery algorithm."""

    name = "bakery-lock"

    def __init__(self, n_processes: int, object_type: Optional[ObjectType] = None):
        super().__init__(object_type or lock_object_type(), n_processes)

    def create_pool(self) -> ObjectPool:
        return ObjectPool(
            [
                RegisterArray("choosing", size=self.n_processes, initial=False),
                RegisterArray("number", size=self.n_processes, initial=0),
            ]
        )

    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        if operation == "acquire":
            return self._acquire(pid, memory)
        if operation == "release":
            return self._release(pid, memory)
        raise SimulationError(f"lock has acquire/release; got {operation!r}")

    def _acquire(self, pid: int, memory: Dict[str, Any]) -> Algorithm:
        if memory.get("holding"):
            raise SimulationError(f"p{pid} acquires while holding the lock")
        memory["pc"] = "choosing"
        yield Op("choosing", "write", (pid, True))
        memory["max"] = 0
        for j in range(self.n_processes):
            memory["pc"] = ("scan-number", j)
            ticket = yield Op("number", "read", (j,))
            if ticket > memory["max"]:
                memory["max"] = ticket
        memory["ticket"] = memory["max"] + 1
        memory["pc"] = "take-ticket"
        yield Op("number", "write", (pid, memory["ticket"]))
        memory["pc"] = "done-choosing"
        yield Op("choosing", "write", (pid, False))
        for j in range(self.n_processes):
            if j == pid:
                continue
            while True:
                memory["pc"] = ("wait-choosing", j)
                busy = yield Op("choosing", "read", (j,))
                if not busy:
                    break
            while True:
                memory["pc"] = ("wait-ticket", j)
                ticket = yield Op("number", "read", (j,))
                if ticket == 0 or (ticket, j) > (memory["ticket"], pid):
                    break
        memory["holding"] = True
        return GRANTED

    def _release(self, pid: int, memory: Dict[str, Any]) -> Algorithm:
        if not memory.get("holding"):
            raise SimulationError(f"p{pid} releases without holding the lock")
        memory["pc"] = "release"
        yield Op("number", "write", (pid, 0))
        memory["holding"] = False
        return RELEASED
