"""An MCS-style FIFO queue lock.

The shape of Mellor-Crummey & Scott's queue lock adapted to the
simulator's base objects: instead of per-process qnodes linked through
a tail pointer, one compare-and-swap object holds the whole waiter
queue as a tuple of process ids.  ``acquire`` enqueues itself with a
CAS (retrying on contention) and then spins until it reaches the head;
``release`` pops the head with a CAS (retrying against concurrent
enqueuers at the tail).

The FIFO handoff is what distinguishes it from :class:`TasLock`:
whoever enqueues first is granted first, so no waiter can be overtaken
forever — the queue gives starvation freedom under fair schedules,
where the test-and-set lock only gives deadlock freedom.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.base_objects.base import ObjectPool
from repro.base_objects.cas import CompareAndSwap
from repro.core.object_type import ObjectType
from repro.sim.kernel import Algorithm, Implementation, Op
from repro.util.errors import SimulationError

from repro.algorithms.locks.lock_type import GRANTED, RELEASED, lock_object_type


class McsLock(Implementation):
    """FIFO queue lock: CAS-append to enqueue, spin until head."""

    name = "mcs-lock"

    def __init__(self, n_processes: int, object_type: Optional[ObjectType] = None):
        super().__init__(object_type or lock_object_type(), n_processes)

    def create_pool(self) -> ObjectPool:
        return ObjectPool([CompareAndSwap("queue", initial=())])

    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        if operation == "acquire":
            return self._acquire(pid, memory)
        if operation == "release":
            return self._release(pid, memory)
        raise SimulationError(f"lock has acquire/release; got {operation!r}")

    @staticmethod
    def _acquire(pid: int, memory: Dict[str, Any]) -> Algorithm:
        if memory.get("holding"):
            raise SimulationError(f"p{pid} acquires while holding the lock")
        memory["pc"] = "enqueue"
        while True:
            queue = yield Op("queue", "read")
            enrolled = yield Op(
                "queue", "compare_and_swap", (queue, queue + (pid,))
            )
            if enrolled:
                break
        memory["pc"] = "spin-head"
        while True:
            queue = yield Op("queue", "read")
            if queue and queue[0] == pid:
                break
        memory["holding"] = True
        return GRANTED

    @staticmethod
    def _release(pid: int, memory: Dict[str, Any]) -> Algorithm:
        if not memory.get("holding"):
            raise SimulationError(f"p{pid} releases without holding the lock")
        memory["pc"] = "dequeue"
        while True:
            queue = yield Op("queue", "read")
            # Only the head ever dequeues, so the CAS can lose only to a
            # concurrent tail enqueue — retry until it lands.
            popped = yield Op("queue", "compare_and_swap", (queue, queue[1:]))
            if popped:
                break
        memory["holding"] = False
        return RELEASED
