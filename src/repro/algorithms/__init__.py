"""Shared-object implementations evaluated by the experiments."""

from repro.algorithms.consensus import (
    CasConsensus,
    CommitAdoptConsensus,
    InventingConsensus,
    SilentConsensus,
    StubbornConsensus,
    TasConsensus,
)
from repro.algorithms.tm import (
    AgpTransactionalMemory,
    GlobalLockTransactionalMemory,
    I12TransactionalMemory,
    IntentTransactionalMemory,
    TrivialTransactionalMemory,
)
from repro.algorithms.locks import GRANTED, RELEASED, BakeryLock, TasLock, lock_object_type

__all__ = [
    "CasConsensus",
    "CommitAdoptConsensus",
    "InventingConsensus",
    "SilentConsensus",
    "StubbornConsensus",
    "TasConsensus",
    "AgpTransactionalMemory",
    "GlobalLockTransactionalMemory",
    "I12TransactionalMemory",
    "IntentTransactionalMemory",
    "TrivialTransactionalMemory",
    "GRANTED",
    "RELEASED",
    "BakeryLock",
    "TasLock",
    "lock_object_type",
]
