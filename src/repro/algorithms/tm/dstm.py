"""An obstruction-free TM with an aggressive contention manager.

AGP is lock-free; to separate obstruction-freedom from lock-freedom the
registry needs a TM that is obstruction-free but can *livelock* under
contention.  This design publishes a commit *intent* before the commit
CAS and politely self-aborts when it observes a competitor's intent:

* ``start``/``read``/``write`` — exactly as AGP (snapshot of the global
  compare-and-swap object, local redo buffer);
* ``tryC`` — raise ``intent[i]``; read every other intent flag; if any
  is raised, lower the own flag and abort; otherwise attempt the
  version CAS, lower the flag, and return the CAS verdict.

Running solo (no raised intents), a transaction commits — obstruction
freedom in crash-free executions.  Two processes in lockstep raise
their intents together, observe each other, and abort forever: the
livelock witness separating obstruction-freedom from lock-freedom in
the progress-taxonomy tests and examples.

Known limitation (documented, by design): a process that crashes
between raising and lowering its intent leaves the flag raised and
blocks all future commits, so the obstruction-freedom claim is
restricted to crash-free suffixes.  The experiments that use this
implementation inject no crashes; curing the limitation needs
helping/ownership stealing, which AGP's single-CAS design cannot
express and which the paper does not require.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.base_objects.base import ObjectPool
from repro.base_objects.cas import CompareAndSwap
from repro.base_objects.register import RegisterArray
from repro.core.object_type import ObjectType
from repro.objects.tm import ABORTED, COMMITTED, OK, tm_object_type
from repro.sim.kernel import Algorithm, Implementation, Op
from repro.util.errors import SimulationError


class IntentTransactionalMemory(Implementation):
    """Obstruction-free (crash-free) TM that livelocks under contention."""

    name = "intent-tm"

    def __init__(
        self,
        n_processes: int,
        variables: Sequence[int] = (0, 1),
        initial_value: Any = 0,
        object_type: Optional[ObjectType] = None,
    ):
        super().__init__(
            object_type or tm_object_type(variables=variables), n_processes
        )
        self.variables = tuple(variables)
        self.initial_value = initial_value

    def create_pool(self) -> ObjectPool:
        initial = (1, tuple(self.initial_value for _ in self.variables))
        return ObjectPool(
            [
                CompareAndSwap("C", initial=initial),
                RegisterArray("intent", size=self.n_processes, initial=False),
            ]
        )

    def _index(self, variable: Any) -> int:
        try:
            return self.variables.index(variable)
        except ValueError:
            raise SimulationError(
                f"unknown transactional variable {variable!r}"
            ) from None

    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        if operation == "start":
            return self._start(memory)
        if operation == "read":
            return self._read(args[0], memory)
        if operation == "write":
            return self._write(args[0], args[1], memory)
        if operation == "tryC":
            return self._try_commit(pid, memory)
        raise SimulationError(f"TM has start/read/write/tryC; got {operation!r}")

    def _start(self, memory: Dict[str, Any]) -> Algorithm:
        memory["pc"] = "start-read-C"
        version, old_values = yield Op("C", "read")
        memory["version"] = version
        memory["oldval"] = old_values
        memory["values"] = old_values
        memory["in_tx"] = True
        return OK

    def _read(self, variable: Any, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        return memory["values"][self._index(variable)]
        yield  # pragma: no cover - makes this a generator

    def _write(self, variable: Any, value: Any, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        values = list(memory["values"])
        values[self._index(variable)] = value
        memory["values"] = tuple(values)
        return OK
        yield  # pragma: no cover - makes this a generator

    def _try_commit(self, pid: int, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        memory["pc"] = "raise-intent"
        yield Op("intent", "write", (pid, True))
        memory["rival"] = False
        for j in range(self.n_processes):
            if j == pid:
                continue
            memory["pc"] = ("scan-intent", j)
            raised = yield Op("intent", "read", (j,))
            if raised:
                memory["rival"] = True
                break
        if memory["rival"]:
            memory["pc"] = "yield-intent"
            yield Op("intent", "write", (pid, False))
            memory["in_tx"] = False
            return ABORTED
        memory["pc"] = "commit-cas"
        expected = (memory["version"], memory["oldval"])
        replacement = (memory["version"] + 1, memory["values"])
        swapped = yield Op("C", "compare_and_swap", (expected, replacement))
        memory["pc"] = "lower-intent"
        yield Op("intent", "write", (pid, False))
        memory["in_tx"] = False
        return COMMITTED if swapped else ABORTED

    @staticmethod
    def _require_tx(memory: Dict[str, Any]) -> None:
        if not memory.get("in_tx"):
            raise SimulationError(
                "transactional operation outside a transaction (no start)"
            )
