"""A blocking global-lock TM.

Serialises every transaction behind one test-and-set lock: ``start``
spins until it acquires the lock, ``tryC`` publishes the write set and
releases.  Opaque (fully serialised, so trivially so) and — in
crash-free fair executions — starvation-free at the transaction level,
but **blocking**: a process that crashes inside a transaction leaves
the lock taken and every other process spins forever.

The paper's liveness space deliberately targets *non-blocking* systems;
this implementation exists to mark the boundary — the test suite shows
a single crash turning every ``(l,k)``-freedom property false, which no
crash can do to the non-blocking implementations.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.base_objects.base import ObjectPool
from repro.base_objects.register import AtomicRegister
from repro.base_objects.tas import TestAndSet
from repro.core.object_type import ObjectType
from repro.objects.tm import ABORTED, COMMITTED, OK, tm_object_type
from repro.sim.kernel import Algorithm, Implementation, Op
from repro.util.errors import SimulationError


class GlobalLockTransactionalMemory(Implementation):
    """Blocking TM: one big lock around every transaction."""

    name = "global-lock-tm"

    def __init__(
        self,
        n_processes: int,
        variables: Sequence[int] = (0, 1),
        initial_value: Any = 0,
        object_type: Optional[ObjectType] = None,
    ):
        super().__init__(
            object_type or tm_object_type(variables=variables), n_processes
        )
        self.variables = tuple(variables)
        self.initial_value = initial_value

    def create_pool(self) -> ObjectPool:
        return ObjectPool(
            [
                TestAndSet("lock"),
                AtomicRegister(
                    "store",
                    initial=tuple(self.initial_value for _ in self.variables),
                ),
            ]
        )

    def _index(self, variable: Any) -> int:
        try:
            return self.variables.index(variable)
        except ValueError:
            raise SimulationError(
                f"unknown transactional variable {variable!r}"
            ) from None

    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        if operation == "start":
            return self._start(memory)
        if operation == "read":
            return self._read(args[0], memory)
        if operation == "write":
            return self._write(args[0], args[1], memory)
        if operation == "tryC":
            return self._try_commit(memory)
        raise SimulationError(f"TM has start/read/write/tryC; got {operation!r}")

    def _start(self, memory: Dict[str, Any]) -> Algorithm:
        memory["pc"] = "spin"
        while True:
            taken = yield Op("lock", "test_and_set")
            if not taken:
                break
        memory["pc"] = "load"
        values = yield Op("store", "read")
        memory["values"] = values
        memory["in_tx"] = True
        return OK

    def _read(self, variable: Any, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        return memory["values"][self._index(variable)]
        yield  # pragma: no cover - makes this a generator

    def _write(self, variable: Any, value: Any, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        values = list(memory["values"])
        values[self._index(variable)] = value
        memory["values"] = tuple(values)
        return OK
        yield  # pragma: no cover - makes this a generator

    def _try_commit(self, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        memory["pc"] = "publish"
        yield Op("store", "write", (memory["values"],))
        memory["pc"] = "unlock"
        yield Op("lock", "clear")
        memory["in_tx"] = False
        return COMMITTED

    @staticmethod
    def _require_tx(memory: Dict[str, Any]) -> None:
        if not memory.get("in_tx"):
            raise SimulationError(
                "transactional operation outside a transaction (no start)"
            )
