"""AGP: the global compare-and-swap transactional memory.

The TM that Algorithm 1 of the paper modifies (Guerraoui & Kapalka's
simple lock-free TM): a single compare-and-swap object ``C`` holds
``(version, values)`` — a version number plus the committed value of
every transactional variable.

* ``start`` copies ``C`` into process-local memory;
* ``read``/``write`` act on the local copy (zero shared steps);
* ``tryC`` attempts ``C.cas((version, oldval), (version+1, newval))``
  and commits iff the CAS succeeds.

Properties (both exercised by the test suite and the benchmarks):

* **opacity** — every transaction reads a single committed snapshot,
  and a committing transaction atomically validates that the snapshot
  is still current;
* **lock-freedom** (``1``-lock-freedom, hence ``(1,n)``-freedom) — a
  transaction's CAS fails only because another transaction committed,
  so whenever steps are taken forever, commits happen forever.  This is
  the positive half of Theorem 5.3 (the paper cites Fraser's lock-free
  TM; AGP is the minimal stand-in with the same guarantee).

It is **not** ``(2,2)``-free: the three-step adversary of Section 4.1
starves one of two processes forever (see
:mod:`repro.adversaries.tm_local_progress`).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.base_objects.base import ObjectPool
from repro.base_objects.cas import CompareAndSwap
from repro.core.object_type import ObjectType
from repro.objects.tm import ABORTED, COMMITTED, OK, tm_object_type
from repro.sim.kernel import Algorithm, Implementation, Op
from repro.util.errors import SimulationError


class AgpTransactionalMemory(Implementation):
    """Lock-free, opaque TM from one global compare-and-swap object."""

    name = "agp-tm"

    def __init__(
        self,
        n_processes: int,
        variables: Sequence[int] = (0, 1),
        initial_value: Any = 0,
        object_type: Optional[ObjectType] = None,
    ):
        super().__init__(
            object_type or tm_object_type(variables=variables), n_processes
        )
        self.variables = tuple(variables)
        self.initial_value = initial_value

    def create_pool(self) -> ObjectPool:
        initial = (1, tuple(self.initial_value for _ in self.variables))
        return ObjectPool([CompareAndSwap("C", initial=initial)])

    def _index(self, variable: Any) -> int:
        try:
            return self.variables.index(variable)
        except ValueError:
            raise SimulationError(
                f"unknown transactional variable {variable!r}; "
                f"declared: {self.variables}"
            ) from None

    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        if operation == "start":
            return self._start(memory)
        if operation == "read":
            return self._read(args[0], memory)
        if operation == "write":
            return self._write(args[0], args[1], memory)
        if operation == "tryC":
            return self._try_commit(memory)
        raise SimulationError(f"TM has start/read/write/tryC; got {operation!r}")

    def _start(self, memory: Dict[str, Any]) -> Algorithm:
        memory["pc"] = "start-read-C"
        version, old_values = yield Op("C", "read")
        memory["version"] = version
        memory["oldval"] = old_values
        memory["values"] = old_values
        memory["in_tx"] = True
        return OK

    def _read(self, variable: Any, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        return memory["values"][self._index(variable)]
        yield  # pragma: no cover - makes this a generator

    def _write(self, variable: Any, value: Any, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        values = list(memory["values"])
        values[self._index(variable)] = value
        memory["values"] = tuple(values)
        return OK
        yield  # pragma: no cover - makes this a generator

    def _try_commit(self, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        memory["pc"] = "tryC-cas"
        expected = (memory["version"], memory["oldval"])
        replacement = (memory["version"] + 1, memory["values"])
        swapped = yield Op("C", "compare_and_swap", (expected, replacement))
        memory["in_tx"] = False
        memory["version"] = None
        return COMMITTED if swapped else ABORTED

    @staticmethod
    def _require_tx(memory: Dict[str, Any]) -> None:
        if not memory.get("in_tx"):
            raise SimulationError(
                "transactional operation outside a transaction (no start)"
            )
