"""Algorithm 1 of the paper: ``I(1,2)``, line for line.

The paper's Section 5.3 implementation, a modification of AGP
(:mod:`repro.algorithms.tm.agp`) that additionally enforces the
timestamp abort rule of the counterexample safety property ``S``:

* shared objects: one compare-and-swap object ``C`` holding
  ``(version, values)`` and one atomic snapshot object ``R[1..n]`` of
  per-process timestamps;
* ``start()_i``: ``timestamp ← timestamp + 1``; ``R[i] ← timestamp``;
  ``(version, oldval) ← C.read``; ``values ← oldval``; return ``ok``;
* ``read``/``write``: local memory only;
* ``tryC()_i``: ``snapshot ← R.scan()``; count the components with
  ``snapshot[j] ≥ timestamp`` (the component ``j = i`` always counts,
  so ``count ≥ 3`` means at least two *other* processes started their
  current transaction no earlier); abort if ``count ≥ 3``; otherwise
  attempt ``C.cas((version, oldval), (version+1, values))`` and return
  ``C`` on success, ``A`` on failure.

Lemma 5.4 (reproduced by the ``lem54`` experiment and the test suite):
``I(1,2)`` ensures ``S`` (opacity + timestamp rule) and
``(1,2)``-freedom.

Lasso support: all state is in ``memory``; the liveness abstraction
normalises every timestamp by the minimum current timestamp.  The
shift is a bisimulation because the algorithm consumes timestamps only
through order comparisons (``snapshot[j] ≥ timestamp``) and covariant
writes (``R[i] ← timestamp``), both invariant under a common shift.
Version numbers and values are left exact, so the abstraction repeats
only in commit-free loops — exactly the loops the Section 5.3 adversary
produces — and never certifies a spurious cycle through committing
behaviour.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Sequence, Tuple

from repro.base_objects.base import ObjectPool
from repro.base_objects.cas import CompareAndSwap
from repro.base_objects.snapshot import AtomicSnapshot
from repro.core.object_type import ObjectType
from repro.objects.tm import ABORTED, COMMITTED, OK, tm_object_type
from repro.sim.kernel import Algorithm, Implementation, Op
from repro.util.errors import SimulationError
from repro.util.freeze import freeze


class I12TransactionalMemory(Implementation):
    """The paper's Algorithm 1 (``I(1,2)``)."""

    name = "i12-tm"

    def __init__(
        self,
        n_processes: int,
        variables: Sequence[int] = (0, 1),
        initial_value: Any = 0,
        object_type: Optional[ObjectType] = None,
    ):
        super().__init__(
            object_type or tm_object_type(variables=variables), n_processes
        )
        self.variables = tuple(variables)
        self.initial_value = initial_value

    def create_pool(self) -> ObjectPool:
        initial = (1, tuple(self.initial_value for _ in self.variables))
        return ObjectPool(
            [
                CompareAndSwap("C", initial=initial),
                AtomicSnapshot("R", size=self.n_processes, initial=0),
            ]
        )

    def initial_memory(self, pid: int) -> Dict[str, Any]:
        # Matches the algorithm's "initially": version = ⊥, timestamp = 0,
        # count = 0 at every process.
        return {"timestamp": 0, "version": None, "count": 0, "in_tx": False}

    def _index(self, variable: Any) -> int:
        try:
            return self.variables.index(variable)
        except ValueError:
            raise SimulationError(
                f"unknown transactional variable {variable!r}; "
                f"declared: {self.variables}"
            ) from None

    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        if operation == "start":
            return self._start(pid, memory)
        if operation == "read":
            return self._read(args[0], memory)
        if operation == "write":
            return self._write(args[0], args[1], memory)
        if operation == "tryC":
            return self._try_commit(memory)
        raise SimulationError(f"TM has start/read/write/tryC; got {operation!r}")

    # -- operations (paper's pseudocode order) ---------------------------------

    def _start(self, pid: int, memory: Dict[str, Any]) -> Algorithm:
        memory["timestamp"] = memory["timestamp"] + 1
        memory["pc"] = "start-update-R"
        yield Op("R", "update", (pid, memory["timestamp"]))
        memory["pc"] = "start-read-C"
        version, old_values = yield Op("C", "read")
        memory["version"] = version
        memory["oldval"] = old_values
        memory["values"] = old_values
        memory["in_tx"] = True
        return OK

    def _read(self, variable: Any, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        return memory["values"][self._index(variable)]
        yield  # pragma: no cover - makes this a generator

    def _write(self, variable: Any, value: Any, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        values = list(memory["values"])
        values[self._index(variable)] = value
        memory["values"] = tuple(values)
        return OK
        yield  # pragma: no cover - makes this a generator

    def _try_commit(self, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        memory["pc"] = "tryC-scan"
        snapshot = yield Op("R", "scan")
        for component in snapshot:
            if component >= memory["timestamp"]:
                memory["count"] = memory["count"] + 1
        if memory["count"] >= 3:
            memory["count"] = 0
            memory["in_tx"] = False
            return ABORTED
        memory["count"] = 0
        memory["pc"] = "tryC-cas"
        expected = (memory["version"], memory["oldval"])
        replacement = (memory["version"] + 1, memory["values"])
        swapped = yield Op("C", "compare_and_swap", (expected, replacement))
        memory["version"] = None
        memory["in_tx"] = False
        return COMMITTED if swapped else ABORTED

    @staticmethod
    def _require_tx(memory: Dict[str, Any]) -> None:
        if not memory.get("in_tx"):
            raise SimulationError(
                "transactional operation outside a transaction (no start)"
            )

    # -- lasso support -------------------------------------------------------------

    def liveness_abstraction(
        self, pool: ObjectPool, memories: Tuple[Dict[str, Any], ...]
    ) -> Optional[Hashable]:
        """Timestamp-shift quotient (see module docstring)."""
        timestamps = [m.get("timestamp", 0) for m in memories]
        base = min(timestamps)
        snapshot_object = pool.get("R")
        assert isinstance(snapshot_object, AtomicSnapshot)
        shifted_snapshot = tuple(
            component - base for component in snapshot_object.snapshot_state()[1]
        )
        cas_state = pool.get("C").snapshot_state()
        shifted_memories = tuple(
            freeze(
                {
                    key: (value - base if key == "timestamp" else value)
                    for key, value in memory.items()
                }
            )
            for memory in memories
        )
        return (shifted_snapshot, cas_state, shifted_memories)
