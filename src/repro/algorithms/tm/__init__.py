"""Transactional memory implementations."""

from repro.algorithms.tm.agp import AgpTransactionalMemory
from repro.algorithms.tm.i12 import I12TransactionalMemory
from repro.algorithms.tm.trivial import TrivialTransactionalMemory
from repro.algorithms.tm.global_lock import GlobalLockTransactionalMemory
from repro.algorithms.tm.dstm import IntentTransactionalMemory
from repro.algorithms.tm.norec import NorecTransactionalMemory

__all__ = [
    "AgpTransactionalMemory",
    "I12TransactionalMemory",
    "TrivialTransactionalMemory",
    "GlobalLockTransactionalMemory",
    "IntentTransactionalMemory",
    "NorecTransactionalMemory",
]
