"""The trivial always-abort TM.

Aborting every transaction ensures opacity vacuously (Section 4.1 notes
that "requiring that each operation returns a response ... can be
trivially ensured simply by aborting every transaction") — which is why
TM progress is defined through commit events.  This implementation
anchors that observation and serves as the degenerate corner of the
implementation registry: it ensures every TM safety property shipped
here, and no liveness property demanding a single commit.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.base_objects.base import ObjectPool
from repro.core.object_type import ObjectType
from repro.objects.tm import ABORTED, tm_object_type
from repro.sim.kernel import Algorithm, Implementation, Op
from repro.util.errors import SimulationError


class TrivialTransactionalMemory(Implementation):
    """Aborts every transaction at its first call."""

    name = "trivial-tm"

    def __init__(
        self,
        n_processes: int,
        variables: Sequence[int] = (0, 1),
        object_type: Optional[ObjectType] = None,
    ):
        super().__init__(
            object_type or tm_object_type(variables=variables), n_processes
        )

    def create_pool(self) -> ObjectPool:
        return ObjectPool([])

    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        if operation not in ("start", "read", "write", "tryC"):
            raise SimulationError(f"TM has start/read/write/tryC; got {operation!r}")
        return self._abort()

    @staticmethod
    def _abort() -> Algorithm:
        return ABORTED
        yield  # pragma: no cover - makes this a generator
