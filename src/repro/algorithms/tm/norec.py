"""A NOrec-style transactional memory: one seqlock clock, no ownership records.

The shape of Dalessandro, Spear & Scott's NOrec scaled down to the
simulator: a single compare-and-swap object ``clock`` doubles as a
global sequence lock (even = quiescent, odd = a writer is publishing)
and a :class:`~repro.base_objects.register.RegisterArray` ``store``
holds the committed variable values cell by cell.

* ``start`` spins until the clock is even and records it as the
  transaction's snapshot;
* ``read(x)`` returns the local write-set value if present; otherwise
  it reads the cell and *re-reads the clock* — any change since the
  snapshot means a writer may have published in between, so the read
  retries (the blocking twin of NOrec's value-less validation: static
  plans keep issuing operations after an abort, so mid-transaction
  aborts are off the table);
* ``write`` buffers locally;
* ``tryC`` commits read-only transactions outright (every read was
  validated against the snapshot clock, so all of them belong to the
  snapshot version); writers acquire the seqlock with
  ``cas(clock, snap, snap+1)``, publish the write set cell by cell,
  and release by writing ``snap+2``.  A failed CAS means a concurrent
  commit — abort.

Opaque: the clock goes odd *before* any cell is written, so a reader
that could observe a torn cell necessarily sees a changed clock and
retries until the publish completes; committed writers are fully
serialized by the seqlock.  Unlike
:class:`~repro.algorithms.tm.agp.AgpTransactionalMemory` the publish is
per-cell rather than one big CAS, which is exactly the window the
``norec-skipped-validation`` mutant (:mod:`repro.mutate`) opens into a
torn read.  Blocking like the global-lock TM: a writer crashing
mid-publish leaves the clock odd forever.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.base_objects.base import ObjectPool
from repro.base_objects.cas import CompareAndSwap
from repro.base_objects.register import RegisterArray
from repro.core.object_type import ObjectType
from repro.objects.tm import ABORTED, COMMITTED, OK, tm_object_type
from repro.sim.kernel import Algorithm, Implementation, Op
from repro.util.errors import SimulationError


class NorecTransactionalMemory(Implementation):
    """Seqlock-clock TM with value-free validation (NOrec-style)."""

    name = "norec-tm"

    def __init__(
        self,
        n_processes: int,
        variables: Sequence[int] = (0, 1),
        initial_value: Any = 0,
        object_type: Optional[ObjectType] = None,
    ):
        super().__init__(
            object_type or tm_object_type(variables=variables), n_processes
        )
        self.variables = tuple(variables)
        self.initial_value = initial_value

    def create_pool(self) -> ObjectPool:
        return ObjectPool(
            [
                CompareAndSwap("clock", initial=0),
                RegisterArray(
                    "store", size=len(self.variables), initial=self.initial_value
                ),
            ]
        )

    def _index(self, variable: Any) -> int:
        try:
            return self.variables.index(variable)
        except ValueError:
            raise SimulationError(
                f"unknown transactional variable {variable!r}; "
                f"declared: {self.variables}"
            ) from None

    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        if operation == "start":
            return self._start(memory)
        if operation == "read":
            return self._read(args[0], memory)
        if operation == "write":
            return self._write(args[0], args[1], memory)
        if operation == "tryC":
            return self._try_commit(memory)
        raise SimulationError(f"TM has start/read/write/tryC; got {operation!r}")

    def _start(self, memory: Dict[str, Any]) -> Algorithm:
        memory["pc"] = "start-snapshot"
        while True:
            snap = yield Op("clock", "read")
            if snap % 2 == 0:
                break
        memory["snap"] = snap
        memory["wset"] = ()
        memory["in_tx"] = True
        return OK

    def _read(self, variable: Any, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        for written, value in memory["wset"]:
            if written == variable:
                return value
        index = self._index(variable)
        while True:
            memory["pc"] = "read-cell"
            value = yield Op("store", "read", (index,))
            memory["pc"] = "read-validate"
            clock = yield Op("clock", "read")
            if clock == memory["snap"]:
                return value
            # The clock moved since the snapshot: the cell value may be
            # torn.  Real NOrec aborts here; under this repository's
            # static plans aborts may only surface at tryC (the plan
            # would keep invoking operations into the aborted
            # transaction), so the read blocks conservatively instead —
            # the clock is monotonic, making a doomed reader spin
            # forever, which is the blocking twin of the abort and
            # keeps every completed read consistent.
            continue

    def _write(self, variable: Any, value: Any, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        self._index(variable)  # validate the variable name
        kept = tuple(
            entry for entry in memory["wset"] if entry[0] != variable
        )
        memory["wset"] = kept + ((variable, value),)
        return OK
        yield  # pragma: no cover - makes this a generator

    def _try_commit(self, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        memory["in_tx"] = False
        if not memory["wset"]:
            # Read-only: every read validated against the snapshot clock,
            # so the transaction serializes at its snapshot.
            return COMMITTED
        memory["pc"] = "tryC-seqlock"
        acquired = yield Op(
            "clock", "compare_and_swap", (memory["snap"], memory["snap"] + 1)
        )
        if not acquired:
            return ABORTED
        for variable, value in memory["wset"]:
            memory["pc"] = ("publish", variable)
            yield Op("store", "write", (self._index(variable), value))
        memory["pc"] = "tryC-release"
        yield Op("clock", "write", (memory["snap"] + 2,))
        return COMMITTED

    @staticmethod
    def _require_tx(memory: Dict[str, Any]) -> None:
        if not memory.get("in_tx"):
            raise SimulationError(
                "transactional operation outside a transaction (no start)"
            )
