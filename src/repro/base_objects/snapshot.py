"""Atomic snapshot object.

Algorithm 1 of the paper uses "a shared snapshot object of n registers":
process ``p_i`` may update component ``i`` and any process may ``scan``
all components atomically.  Atomic snapshots are implementable from
read/write registers in a wait-free way (Afek et al.), so granting them
as a base object does not change computability; we model them directly
as one atomic primitive for clarity and speed, as the paper's pseudocode
does.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Tuple

from repro.base_objects.base import BaseObject
from repro.util.errors import SimulationError


class AtomicSnapshot(BaseObject):
    """A single-writer-per-component atomic snapshot object.

    Primitives:

    * ``update(i, value)`` — store ``value`` into component ``i``;
    * ``scan()`` — return a tuple of all components, atomically;
    * ``read(i)`` — read a single component (a plain register read).
    """

    def __init__(self, name: str, size: int, initial: Any = 0):
        super().__init__(name)
        if size < 1:
            raise ValueError("snapshot size must be positive")
        self.size = size
        self._initial = initial
        self._components: List[Any] = [initial] * size

    def methods(self) -> Tuple[str, ...]:
        return ("update", "scan", "read")

    def _check_index(self, index: Any) -> int:
        if not isinstance(index, int) or not 0 <= index < self.size:
            raise SimulationError(
                f"component {index!r} out of range for snapshot {self.name!r} "
                f"of size {self.size}"
            )
        return index

    def apply(self, method: str, args: Tuple[Any, ...]) -> Any:
        if method == "update":
            if len(args) != 2:
                raise SimulationError("update takes (component, value)")
            self._components[self._check_index(args[0])] = args[1]
            return None
        if method == "scan":
            if args:
                raise SimulationError("scan takes no arguments")
            return tuple(self._components)
        if method == "read":
            if len(args) != 1:
                raise SimulationError("read takes exactly one component index")
            return self._components[self._check_index(args[0])]
        return self._reject(method)

    def footprint(self, method: str, args: Tuple[Any, ...]) -> Tuple[str, Hashable]:
        if method == "scan":
            return ("read", None)  # whole-object read
        key = args[0] if args else None
        return ("read" if method == "read" else "write", key)

    def snapshot_state(self) -> Hashable:
        return ("snapshot", tuple(self._components))

    def reset(self) -> None:
        self._components = [self._initial] * self.size
