"""Test-and-set base object.

A one-shot synchronization primitive with consensus number 2: it solves
consensus for two processes but not three.  Used by the two-process
consensus algorithm and the test-and-set lock.
"""

from __future__ import annotations

from typing import Any, Hashable, Tuple

from repro.base_objects.base import BaseObject
from repro.util.errors import SimulationError


class TestAndSet(BaseObject):
    """A test-and-set bit.

    (``__test__ = False`` below only tells pytest this is not a test
    class, despite the Test- prefix.)

    Primitives:

    * ``test_and_set()`` — atomically set the bit and return its
      *previous* value (``False`` exactly once: the winner);
    * ``read()`` — current value;
    * ``clear()`` — reset the bit (used by locks for release).
    """

    __test__ = False

    def __init__(self, name: str):
        super().__init__(name)
        self._set = False

    def methods(self) -> Tuple[str, ...]:
        return ("test_and_set", "read", "clear")

    def apply(self, method: str, args: Tuple[Any, ...]) -> Any:
        if method == "test_and_set":
            if args:
                raise SimulationError("test_and_set takes no arguments")
            previous = self._set
            self._set = True
            return previous
        if method == "read":
            if args:
                raise SimulationError("read takes no arguments")
            return self._set
        if method == "clear":
            if args:
                raise SimulationError("clear takes no arguments")
            self._set = False
            return None
        return self._reject(method)

    def footprint(self, method: str, args: Tuple[Any, ...]) -> Tuple[str, Hashable]:
        return ("read" if method == "read" else "write", None)

    def snapshot_state(self) -> Hashable:
        return ("tas", self._set)

    def reset(self) -> None:
        self._set = False
