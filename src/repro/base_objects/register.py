"""Atomic read/write registers and register arrays.

The weakest base objects of the model — and the only ones permitted in
the consensus corollaries (Corollaries 4.5 and 4.10 restrict consensus
implementations to read/write registers).
"""

from __future__ import annotations

from typing import Any, Hashable, List, Tuple

from repro.base_objects.base import BaseObject
from repro.util.errors import SimulationError


class AtomicRegister(BaseObject):
    """A single multi-reader multi-writer atomic register.

    Primitives: ``read()`` and ``write(value)``.
    """

    def __init__(self, name: str, initial: Any = None):
        super().__init__(name)
        self._initial = initial
        self._value = initial

    def methods(self) -> Tuple[str, ...]:
        return ("read", "write")

    def apply(self, method: str, args: Tuple[Any, ...]) -> Any:
        if method == "read":
            if args:
                raise SimulationError("read takes no arguments")
            return self._value
        if method == "write":
            if len(args) != 1:
                raise SimulationError("write takes exactly one argument")
            self._value = args[0]
            return None
        return self._reject(method)

    def footprint(self, method: str, args: Tuple[Any, ...]) -> Tuple[str, Hashable]:
        return ("read" if method == "read" else "write", None)

    def snapshot_state(self) -> Hashable:
        return ("register", self._value)

    def reset(self) -> None:
        self._value = self._initial

    @property
    def value(self) -> Any:
        """Current value (for assertions in tests; not an atomic step)."""
        return self._value


class RegisterArray(BaseObject):
    """A fixed-size array of atomic registers addressed by index.

    Primitives: ``read(i)`` and ``write(i, value)``.  Each primitive
    touches one cell — the array provides *no* multi-cell atomicity
    (that is what :class:`~repro.base_objects.snapshot.AtomicSnapshot`
    is for).
    """

    def __init__(self, name: str, size: int, initial: Any = None):
        super().__init__(name)
        if size < 1:
            raise ValueError("array size must be positive")
        self.size = size
        self._initial = initial
        self._cells: List[Any] = [initial] * size

    def methods(self) -> Tuple[str, ...]:
        return ("read", "write")

    def _check_index(self, index: Any) -> int:
        if not isinstance(index, int) or not 0 <= index < self.size:
            raise SimulationError(
                f"index {index!r} out of range for array {self.name!r} "
                f"of size {self.size}"
            )
        return index

    def apply(self, method: str, args: Tuple[Any, ...]) -> Any:
        if method == "read":
            if len(args) != 1:
                raise SimulationError("array read takes exactly one index")
            return self._cells[self._check_index(args[0])]
        if method == "write":
            if len(args) != 2:
                raise SimulationError("array write takes an index and a value")
            self._cells[self._check_index(args[0])] = args[1]
            return None
        return self._reject(method)

    def footprint(self, method: str, args: Tuple[Any, ...]) -> Tuple[str, Hashable]:
        # Each primitive touches one cell, addressed by its index
        # argument; a malformed call falls back to the whole object.
        key = args[0] if args else None
        return ("read" if method == "read" else "write", key)

    def snapshot_state(self) -> Hashable:
        return ("register-array", tuple(self._cells))

    def reset(self) -> None:
        self._cells = [self._initial] * self.size
