"""Compare-and-swap base object.

Algorithm 1 of the paper (``I(1,2)``) uses a single compare-and-swap
object ``C`` that holds a version number and the values of every
transactional variable; the AGP TM uses the same object.
"""

from __future__ import annotations

from typing import Any, Hashable, Tuple

from repro.base_objects.base import BaseObject
from repro.util.errors import SimulationError


class CompareAndSwap(BaseObject):
    """A compare-and-swap register.

    Primitives:

    * ``read()`` — current value;
    * ``write(value)`` — unconditional store;
    * ``compare_and_swap(expected, new)`` — atomically: if the current
      value equals ``expected``, store ``new`` and return ``True``;
      otherwise leave the value unchanged and return ``False``.
    """

    def __init__(self, name: str, initial: Any = None):
        super().__init__(name)
        self._initial = initial
        self._value = initial

    def methods(self) -> Tuple[str, ...]:
        return ("read", "write", "compare_and_swap")

    def apply(self, method: str, args: Tuple[Any, ...]) -> Any:
        if method == "read":
            if args:
                raise SimulationError("read takes no arguments")
            return self._value
        if method == "write":
            if len(args) != 1:
                raise SimulationError("write takes exactly one argument")
            self._value = args[0]
            return None
        if method == "compare_and_swap":
            if len(args) != 2:
                raise SimulationError(
                    "compare_and_swap takes (expected, new)"
                )
            expected, new = args
            if self._value == expected:
                self._value = new
                return True
            return False
        return self._reject(method)

    def footprint(self, method: str, args: Tuple[Any, ...]) -> Tuple[str, Hashable]:
        # compare_and_swap is conservatively a write even when it would
        # fail: whether it fails depends on the value, which a concurrent
        # write changes — so it must conflict with everything.
        return ("read" if method == "read" else "write", None)

    def snapshot_state(self) -> Hashable:
        return ("cas", self._value)

    def reset(self) -> None:
        self._value = self._initial

    @property
    def value(self) -> Any:
        """Current value (test/assertion access, not an atomic step)."""
        return self._value
