"""Register file: an unbounded family of atomic registers.

Round-based algorithms (commit-adopt consensus) use a fresh set of
registers per round.  A register file models an infinite array of
atomic registers addressed by hashable keys — each primitive touches a
single cell, so the object grants no atomicity beyond a plain register
(the standard unbounded-register idiom of wait-free computability).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from repro.base_objects.base import BaseObject
from repro.util.errors import SimulationError
from repro.util.freeze import freeze


class RegisterFile(BaseObject):
    """Atomic registers addressed by arbitrary hashable keys.

    Primitives: ``read(key)`` (initial value for untouched cells) and
    ``write(key, value)``.
    """

    def __init__(self, name: str, initial: Any = None):
        super().__init__(name)
        self._initial = initial
        self._cells: Dict[Hashable, Any] = {}

    def methods(self) -> Tuple[str, ...]:
        return ("read", "write")

    def apply(self, method: str, args: Tuple[Any, ...]) -> Any:
        if method == "read":
            if len(args) != 1:
                raise SimulationError("register-file read takes one key")
            return self._cells.get(args[0], self._initial)
        if method == "write":
            if len(args) != 2:
                raise SimulationError("register-file write takes (key, value)")
            self._cells[args[0]] = args[1]
            return None
        return self._reject(method)

    def footprint(self, method: str, args: Tuple[Any, ...]) -> Tuple[str, Hashable]:
        key = freeze(args[0]) if args else None
        return ("read" if method == "read" else "write", key)

    def snapshot_state(self) -> Hashable:
        return (
            "register-file",
            tuple(sorted(((freeze(k), freeze(v)) for k, v in self._cells.items()),
                         key=repr)),
        )

    def cells_matching(self, predicate) -> Dict[Hashable, Any]:
        """Cells whose key satisfies ``predicate`` (used by liveness
        abstractions to project away dead rounds)."""
        return {k: v for k, v in self._cells.items() if predicate(k)}

    def reset(self) -> None:
        self._cells = {}
