"""Base objects: the atomic hardware primitives of the model (Section 2).

Implementations of high-level shared objects perform *atomic primitives*
on base objects.  In the simulator each primitive application is one
indivisible step: the kernel calls :meth:`BaseObject.apply` between two
scheduler decisions, so no interleaving can observe a half-applied
primitive — exactly the atomicity granted to base objects by the model.

Every base object exposes:

* ``apply(method, args)`` — execute one primitive and return its result;
* ``snapshot_state()`` — a hashable fingerprint of the current state,
  used by the lasso detector to certify infinite executions;
* ``reset()`` — return to the initial state (fresh runs without
  reallocation);
* ``capture_state()`` / ``restore_state(state)`` — a *restorable* copy
  of the full mutable state, used by the exploration engine
  (:mod:`repro.engine`) to snapshot configurations instead of replaying
  whole schedules.  The default implementation copies ``__dict__`` and
  works for every state layout made of plain data; objects holding
  non-copyable resources must override both.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.util.errors import SimulationError
from repro.util.plaincopy import plain_copy


class BaseObject(ABC):
    """An atomic base object addressable by name inside a runtime."""

    def __init__(self, name: str):
        self.name = name

    @abstractmethod
    def methods(self) -> Tuple[str, ...]:
        """The primitive method names this object accepts."""

    @abstractmethod
    def apply(self, method: str, args: Tuple[Any, ...]) -> Any:
        """Atomically execute ``method(*args)`` and return its result."""

    @abstractmethod
    def snapshot_state(self) -> Hashable:
        """A hashable fingerprint of the full current state."""

    @abstractmethod
    def reset(self) -> None:
        """Restore the initial state."""

    def footprint(self, method: str, args: Tuple[Any, ...]) -> Tuple[str, Hashable]:
        """Declare what one primitive touches, as ``(mode, key)``.

        ``mode`` is ``"read"`` or ``"write"``; ``key`` names the part of
        the object the primitive touches (``None`` means the whole
        object, which conflicts with every key).  The partial-order
        reduction (:mod:`repro.engine.dpor`) uses these declarations to
        decide when two steps of different processes commute; the
        declaration must be *conservative* — it may over-approximate the
        touched set (costing only pruning power), never under-approximate
        it (which would prune reachable verdict-relevant interleavings).

        The default declares a whole-object write: correct for every
        primitive, independent of nothing on the same object.
        """
        return ("write", None)

    def capture_state(self) -> Any:
        """A restorable copy of the full mutable state.

        The default copies ``__dict__`` structurally via
        :func:`~repro.util.plaincopy.plain_copy`; objects whose state is
        not plain data must override both capture and restore.
        """
        return plain_copy(self.__dict__)

    def restore_state(self, state: Any) -> None:
        """Restore state previously returned by :meth:`capture_state`.

        The captured value is copied again on restore, so one capture
        may seed any number of restores (the engine restores the same
        snapshot once per explored successor) and captured states are
        never mutated — which is what lets the pool share them between
        snapshots copy-on-write.
        """
        self.__dict__.update(plain_copy(state))

    def _reject(self, method: str) -> Any:
        raise SimulationError(
            f"base object {self.name!r} ({type(self).__name__}) has no "
            f"primitive {method!r}; available: {self.methods()}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} state={self.snapshot_state()!r}>"


class ObjectPool:
    """The set of base objects available to one run of an implementation.

    The pool owns the objects, routes primitive applications by object
    name, and aggregates fingerprints for the lasso detector.
    """

    def __init__(self, objects: Iterable[BaseObject] = ()):
        self._objects: Dict[str, BaseObject] = {}
        # Copy-on-write bookkeeping for capture(): the last captured (or
        # restored) state per object, reusable while the object stays
        # clean.  Dirtiness is tracked at the only mutation point the
        # kernel has — apply().  The fingerprint cache is invalidated the
        # same way, which makes snapshot_state() incremental: along an
        # exploration path only the one object a step touched is
        # re-fingerprinted.
        self._baseline: Dict[str, Any] = {}
        self._dirty: set = set()
        self._fp_cache: Dict[str, Hashable] = {}
        self._sorted_names: List[str] = []
        for obj in objects:
            self.add(obj)

    def add(self, obj: BaseObject) -> None:
        """Register a base object; names must be unique within the pool."""
        if obj.name in self._objects:
            raise SimulationError(f"duplicate base object name {obj.name!r}")
        self._objects[obj.name] = obj
        self._sorted_names = sorted(self._objects)

    def get(self, name: str) -> BaseObject:
        """Look up a base object by name."""
        try:
            return self._objects[name]
        except KeyError:
            raise SimulationError(
                f"unknown base object {name!r}; pool has {sorted(self._objects)}"
            ) from None

    def apply(self, name: str, method: str, args: Tuple[Any, ...]) -> Any:
        """Route one atomic primitive application."""
        self._dirty.add(name)
        self._fp_cache.pop(name, None)
        return self.get(name).apply(method, args)

    def footprint(
        self, name: str, method: str, args: Tuple[Any, ...]
    ) -> Tuple[str, Hashable]:
        """The ``(mode, key)`` footprint one primitive would touch.

        Pure: consults the object's declaration without applying
        anything.  Used by the runtime's footprint recording
        (:mod:`repro.engine.dpor`)."""
        return self.get(name).footprint(method, args)

    def names(self) -> List[str]:
        """Names of all registered objects, sorted."""
        return sorted(self._objects)

    def snapshot_state(self) -> Hashable:
        """Combined fingerprint of every object in the pool.

        Incremental: an object's fingerprint is recomputed only if it
        was applied to (or the pool restored without a fingerprint seed)
        since the last call.
        """
        cache = self._fp_cache
        for name in self._sorted_names:
            if name not in cache:
                cache[name] = self._objects[name].snapshot_state()
        return tuple((name, cache[name]) for name in self._sorted_names)

    def fingerprint_parts(self) -> Dict[str, Hashable]:
        """Per-object fingerprints (filling the cache), for snapshots."""
        self.snapshot_state()
        return dict(self._fp_cache)

    def reset(self) -> None:
        """Reset every object in the pool."""
        for obj in self._objects.values():
            obj.reset()
        self._baseline.clear()
        self._dirty.clear()
        self._fp_cache.clear()

    def capture(self) -> Dict[str, Any]:
        """Restorable state of every object, keyed by name.

        Copy-on-write: objects untouched since the previous capture (or
        restore) contribute the *same* state value as before, so
        successive snapshots along an exploration path share everything
        except the one object the step mutated.  Sharing is safe because
        captured states are never mutated (see
        :meth:`BaseObject.restore_state`).  Mutations that bypass
        :meth:`apply` (e.g. poking an object directly in a test) are
        invisible to the dirty tracking — the kernel never does that.
        """
        captured: Dict[str, Any] = {}
        for name, obj in self._objects.items():
            if name in self._baseline and name not in self._dirty:
                captured[name] = self._baseline[name]
            else:
                captured[name] = obj.capture_state()
        self._baseline = dict(captured)
        self._dirty.clear()
        return captured

    def restore(
        self,
        captured: Dict[str, Any],
        fingerprints: Optional[Dict[str, Hashable]] = None,
    ) -> None:
        """Restore a state previously returned by :meth:`capture`.

        The pool must contain exactly the captured object names — the
        engine restores into a fresh pool built by the same
        implementation's :meth:`~repro.sim.kernel.Implementation.create_pool`
        (or re-restores its scratch pool).  ``fingerprints`` optionally
        seeds the fingerprint cache with the per-object fingerprints
        recorded when ``captured`` was taken, making the next
        :meth:`snapshot_state` incremental too.
        """
        if set(captured) != set(self._objects):
            raise SimulationError(
                f"snapshot names {sorted(captured)} do not match pool "
                f"{sorted(self._objects)}"
            )
        for name, state in captured.items():
            self._objects[name].restore_state(state)
        self._baseline = dict(captured)
        self._dirty.clear()
        self._fp_cache = dict(fingerprints) if fingerprints else {}

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, name: str) -> bool:
        return name in self._objects
