"""Base objects: the atomic hardware primitives of the model (Section 2).

Implementations of high-level shared objects perform *atomic primitives*
on base objects.  In the simulator each primitive application is one
indivisible step: the kernel calls :meth:`BaseObject.apply` between two
scheduler decisions, so no interleaving can observe a half-applied
primitive — exactly the atomicity granted to base objects by the model.

Every base object exposes:

* ``apply(method, args)`` — execute one primitive and return its result;
* ``snapshot_state()`` — a hashable fingerprint of the current state,
  used by the lasso detector to certify infinite executions;
* ``reset()`` — return to the initial state (fresh runs without
  reallocation).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, Iterable, List, Tuple

from repro.util.errors import SimulationError


class BaseObject(ABC):
    """An atomic base object addressable by name inside a runtime."""

    def __init__(self, name: str):
        self.name = name

    @abstractmethod
    def methods(self) -> Tuple[str, ...]:
        """The primitive method names this object accepts."""

    @abstractmethod
    def apply(self, method: str, args: Tuple[Any, ...]) -> Any:
        """Atomically execute ``method(*args)`` and return its result."""

    @abstractmethod
    def snapshot_state(self) -> Hashable:
        """A hashable fingerprint of the full current state."""

    @abstractmethod
    def reset(self) -> None:
        """Restore the initial state."""

    def _reject(self, method: str) -> Any:
        raise SimulationError(
            f"base object {self.name!r} ({type(self).__name__}) has no "
            f"primitive {method!r}; available: {self.methods()}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} state={self.snapshot_state()!r}>"


class ObjectPool:
    """The set of base objects available to one run of an implementation.

    The pool owns the objects, routes primitive applications by object
    name, and aggregates fingerprints for the lasso detector.
    """

    def __init__(self, objects: Iterable[BaseObject] = ()):
        self._objects: Dict[str, BaseObject] = {}
        for obj in objects:
            self.add(obj)

    def add(self, obj: BaseObject) -> None:
        """Register a base object; names must be unique within the pool."""
        if obj.name in self._objects:
            raise SimulationError(f"duplicate base object name {obj.name!r}")
        self._objects[obj.name] = obj

    def get(self, name: str) -> BaseObject:
        """Look up a base object by name."""
        try:
            return self._objects[name]
        except KeyError:
            raise SimulationError(
                f"unknown base object {name!r}; pool has {sorted(self._objects)}"
            ) from None

    def apply(self, name: str, method: str, args: Tuple[Any, ...]) -> Any:
        """Route one atomic primitive application."""
        return self.get(name).apply(method, args)

    def names(self) -> List[str]:
        """Names of all registered objects, sorted."""
        return sorted(self._objects)

    def snapshot_state(self) -> Hashable:
        """Combined fingerprint of every object in the pool."""
        return tuple(
            (name, self._objects[name].snapshot_state())
            for name in sorted(self._objects)
        )

    def reset(self) -> None:
        """Reset every object in the pool."""
        for obj in self._objects.values():
            obj.reset()

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, name: str) -> bool:
        return name in self._objects
