"""Fetch-and-increment counter base object."""

from __future__ import annotations

from typing import Any, Hashable, Tuple

from repro.base_objects.base import BaseObject
from repro.util.errors import SimulationError


class FetchAndIncrement(BaseObject):
    """An atomic counter.

    Primitives:

    * ``fetch_and_increment()`` — return the current value and add one;
    * ``read()`` — current value.
    """

    def __init__(self, name: str, initial: int = 0):
        super().__init__(name)
        self._initial = initial
        self._value = initial

    def methods(self) -> Tuple[str, ...]:
        return ("fetch_and_increment", "read")

    def apply(self, method: str, args: Tuple[Any, ...]) -> Any:
        if method == "fetch_and_increment":
            if args:
                raise SimulationError("fetch_and_increment takes no arguments")
            value = self._value
            self._value += 1
            return value
        if method == "read":
            if args:
                raise SimulationError("read takes no arguments")
            return self._value
        return self._reject(method)

    def footprint(self, method: str, args: Tuple[Any, ...]) -> Tuple[str, Hashable]:
        return ("read" if method == "read" else "write", None)

    def snapshot_state(self) -> Hashable:
        return ("counter", self._value)

    def reset(self) -> None:
        self._value = self._initial
