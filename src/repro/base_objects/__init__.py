"""Atomic base objects (the model's hardware primitives)."""

from repro.base_objects.base import BaseObject, ObjectPool
from repro.base_objects.register import AtomicRegister, RegisterArray
from repro.base_objects.cas import CompareAndSwap
from repro.base_objects.tas import TestAndSet
from repro.base_objects.counter import FetchAndIncrement
from repro.base_objects.snapshot import AtomicSnapshot
from repro.base_objects.regfile import RegisterFile

__all__ = [
    "RegisterFile",
    "BaseObject",
    "ObjectPool",
    "AtomicRegister",
    "RegisterArray",
    "CompareAndSwap",
    "TestAndSet",
    "FetchAndIncrement",
    "AtomicSnapshot",
]
