"""Theorem 4.4, checked exactly on micro models.

    There exists a weakest liveness property that excludes ``S`` iff
    ``Gmax`` (the intersection of all adversary sets w.r.t. ``Lmax``
    and ``S``) is itself an adversary set w.r.t. ``Lmax`` and ``S``.

Both directions are exercised:

* :func:`positive_model` — a one-process micro type whose only
  implementation is silent.  ``F(Lmax)`` is non-trivial, ``Gmax``
  belongs to it, and the brute-force search over the whole liveness
  lattice finds the weakest excluding property — equal to
  ``complement(Gmax)``, exactly as the theorem's proof constructs it.

* :func:`negative_model` — a two-process symmetric micro type.  The
  paper's disjointness argument applies verbatim: the set of histories
  beginning with an event of ``p0`` and the set beginning with an event
  of ``p1`` are both adversary sets, so ``Gmax ⊆ F1 ∩ F2 = ∅`` and no
  weakest excluding liveness exists — confirmed by the same brute-force
  search coming back empty-handed.

:func:`verify_theorem44` evaluates the iff for any (model, safety)
pair; the hypothesis tests sweep it over *every* prefix-closed safety
property of tiny models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.core.history import History
from repro.core.object_type import ObjectType, OperationSignature, ProgressMode
from repro.setmodel.model import FiniteModel, HistorySet
from repro.setmodel.universe import build_model, silent_policy


def _micro_type(responses: Tuple[object, ...]) -> ObjectType:
    """A one-operation object type with the given response domain."""
    return ObjectType(
        name="micro",
        operations=(
            OperationSignature(
                name="a", argument_domains=(), response_domain=responses
            ),
        ),
        sequential_spec=None,
        good_response=lambda response: True,
        progress_mode=ProgressMode.EVENTUAL,
    )


def positive_model() -> Tuple[FiniteModel, HistorySet]:
    """A model in which the weakest excluding liveness *exists*.

    One process, operation ``a`` with responses ``{0, 1}``, and a
    single (silent) implementation.  ``S`` = "every response is 0" —
    prefix-closed, and ensured by the silent implementation, so
    condition (3) of Definition 4.3 has teeth.
    """
    object_type = _micro_type((0, 1))
    model = build_model(
        object_type,
        processes=[0],
        policies=[silent_policy()],
        per_process_ops=1,
        name="thm44-positive",
    )
    safety = frozenset(
        h for h in model.universe if all(r.value == 0 for r in h.responses())
    )
    return model, safety


def negative_model() -> Tuple[FiniteModel, HistorySet]:
    """A model in which no weakest excluding liveness exists.

    Two processes, symmetric operation ``a`` with the single response
    ``0``, one silent implementation, and ``S`` = the whole universe
    (the most permissive safety property, making every subset of
    ``¬Lmax`` pass conditions (1)+(2)).  The first-event argument of
    Corollaries 4.5/4.6 then yields two disjoint adversary sets.
    """
    object_type = _micro_type((0,))
    model = build_model(
        object_type,
        processes=[0, 1],
        policies=[silent_policy()],
        per_process_ops=1,
        name="thm44-negative",
    )
    safety = model.universe
    return model, safety


def first_event_adversary_sets(
    model: FiniteModel, safety: HistorySet
) -> Tuple[HistorySet, HistorySet]:
    """The paper's ``F1``/``F2`` shape inside a two-process model:
    non-``Lmax`` safe histories beginning with an event of ``p0``
    (resp. ``p1``)."""
    pool = safety & model.complement(model.lmax)
    f1 = frozenset(h for h in pool if len(h) > 0 and h[0].process == 0)
    f2 = frozenset(h for h in pool if len(h) > 0 and h[0].process == 1)
    return f1, f2


@dataclass(frozen=True)
class Theorem44Report:
    """Both sides of the iff, plus the witnessing sets."""

    model_name: str
    gmax: Optional[HistorySet]
    gmax_is_adversary_set: bool
    weakest_excluding: Optional[HistorySet]
    weakest_equals_complement_gmax: Optional[bool]

    @property
    def iff_holds(self) -> bool:
        """The theorem's biconditional, as observed on this model."""
        return self.gmax_is_adversary_set == (self.weakest_excluding is not None)


def verify_theorem44(model: FiniteModel, safety: HistorySet) -> Theorem44Report:
    """Evaluate both sides of Theorem 4.4 by enumeration."""
    gmax = model.gmax(safety)
    gmax_is_adversary = (
        gmax is not None and model.is_adversary_set(gmax, model.lmax, safety)
    )
    weakest = model.weakest_excluding(safety)
    equals_complement: Optional[bool] = None
    if weakest is not None and gmax is not None:
        equals_complement = weakest == model.complement(gmax)
    return Theorem44Report(
        model_name=model.name,
        gmax=gmax,
        gmax_is_adversary_set=gmax_is_adversary,
        weakest_excluding=weakest,
        weakest_equals_complement_gmax=equals_complement,
    )
