"""Finite set-theoretic models of Sections 3–4.

Theorem 4.4 and Theorem 4.9 are statements of pure set arithmetic over

* a universe of histories,
* safety properties (prefix-closed subsets),
* liveness properties (supersets of ``Lmax``),
* implementations, each contributing its set of histories and its set
  of *fair* histories, and
* adversary sets (Definition 4.3).

Over a finite universe every one of these quantifiers is enumerable, so
the theorems can be *checked*, not just trusted.  A
:class:`FiniteModel` packages the universe, the ``Lmax`` set, and a
family of implementations; the functions below decide ensuring,
exclusion, adversary-set-hood, compute ``F(Lmax)`` and ``Gmax``, and
search for weakest-excluding / strongest-non-excluding liveness
properties by brute force.  :mod:`repro.setmodel.theorem44` and
:mod:`repro.setmodel.theorem49` wrap them into the experiment checks,
and :mod:`repro.setmodel.universe` builds concrete micro models from
actual object types.

Size guards: liveness enumeration is ``2^(|U| - |Lmax|)`` and adversary
enumeration ``2^(|S ∩ ¬Lmax|)``; both raise :class:`ModelError` beyond
``max_exponent`` rather than silently burning time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.history import History
from repro.util.errors import ModelError

HistorySet = FrozenSet[History]


@dataclass(frozen=True)
class ImplementationModel:
    """An implementation as the paper's theorems consume it.

    ``histories`` is ``{finite histories of A_I}`` (must be prefix-closed
    and include the empty history); ``fair`` is ``fair(A_I)`` restricted
    to the universe.
    """

    name: str
    histories: HistorySet
    fair: HistorySet

    def __post_init__(self) -> None:
        if not self.fair <= self.histories:
            raise ModelError(f"{self.name}: fair histories must be histories")

    def ensures_safety(self, safety: HistorySet) -> bool:
        """``I`` ensures ``S`` iff every (finite) history of ``A_I`` is
        in ``S``."""
        return self.histories <= safety

    def ensures_liveness(self, liveness: HistorySet) -> bool:
        """``I`` ensures ``L`` iff ``fair(A_I) ⊆ L``."""
        return self.fair <= liveness


@dataclass
class FiniteModel:
    """A finite instantiation of the paper's Section 3 definitions."""

    universe: HistorySet
    lmax: HistorySet
    implementations: Tuple[ImplementationModel, ...]
    name: str = "finite-model"
    max_exponent: int = 18

    def __post_init__(self) -> None:
        if not self.lmax <= self.universe:
            raise ModelError("Lmax must be a subset of the universe")
        for impl in self.implementations:
            if not impl.histories <= self.universe:
                raise ModelError(f"{impl.name}: histories escape the universe")
        self._check_prefix_closed(self.universe, "universe")
        for impl in self.implementations:
            self._check_prefix_closed(impl.histories, impl.name)

    @staticmethod
    def _check_prefix_closed(histories: HistorySet, label: str) -> None:
        for history in histories:
            if len(history) == 0:
                continue
            if history[: len(history) - 1] not in histories:
                raise ModelError(
                    f"{label} is not prefix-closed (missing prefix of {history})"
                )

    # -- basic notions ------------------------------------------------------------

    def complement(self, subset: HistorySet) -> HistorySet:
        """Complement within the universe (the paper's complement over
        all well-formed histories, relativised to the model)."""
        return self.universe - subset

    def is_liveness(self, candidate: HistorySet) -> bool:
        """Definition 3.2: a liveness property contains ``Lmax``."""
        return self.lmax <= candidate <= self.universe

    def liveness_properties(self) -> Iterator[HistorySet]:
        """Enumerate every liveness property of the model."""
        free = sorted(self.universe - self.lmax, key=lambda h: (len(h), repr(h)))
        if len(free) > self.max_exponent:
            raise ModelError(
                f"liveness enumeration needs 2^{len(free)} sets; raise "
                f"max_exponent explicitly if you mean it"
            )
        for r in range(len(free) + 1):
            for extra in itertools.combinations(free, r):
                yield self.lmax | frozenset(extra)

    def ensurers_of(self, safety: HistorySet) -> List[ImplementationModel]:
        """Implementations in the family ensuring ``S``."""
        return [impl for impl in self.implementations if impl.ensures_safety(safety)]

    def safety_is_implementable(self, safety: HistorySet) -> bool:
        """Section 3.1's first standing assumption, family-relative.

        "For any history ``h ∈ S`` there exists an implementation ``I``
        such that ``h`` is a history of ``A_I`` and ``I`` ensures
        ``S``."  Theorem 4.4's easy equivalence ("L excludes S iff an
        adversary set exists") genuinely needs it: for an
        unimplementable ``S``, every liveness property excludes ``S``
        vacuously while no non-empty adversary set may exist.
        """
        ensurers = self.ensurers_of(safety)
        for history in safety:
            if not any(history in impl.histories for impl in ensurers):
                return False
        return True

    def excludes(self, liveness: HistorySet, safety: HistorySet) -> bool:
        """Definition 4.1, relative to the implementation family."""
        return not any(
            impl.ensures_liveness(liveness)
            for impl in self.ensurers_of(safety)
        )

    # -- adversary sets (Definition 4.3) ---------------------------------------------

    def is_adversary_set(
        self, candidate: HistorySet, liveness: HistorySet, safety: HistorySet
    ) -> bool:
        """Conditions (1)-(3) of Definition 4.3, plus non-emptiness."""
        if not candidate:
            return False
        if not candidate <= safety:
            return False
        if not candidate <= self.complement(liveness):
            return False
        for impl in self.ensurers_of(safety):
            if not (impl.fair & candidate):
                return False
        return True

    def adversary_sets(
        self, liveness: HistorySet, safety: HistorySet
    ) -> List[HistorySet]:
        """All adversary sets w.r.t. ``L`` and ``S`` (enumerated).

        Candidates are subsets of ``S ∩ ¬L`` (conditions (1)+(2)), so
        the exponent is bounded by that intersection's size.
        """
        pool = sorted(
            safety & self.complement(liveness), key=lambda h: (len(h), repr(h))
        )
        if len(pool) > self.max_exponent:
            raise ModelError(
                f"adversary enumeration needs 2^{len(pool)} sets; raise "
                f"max_exponent explicitly if you mean it"
            )
        found: List[HistorySet] = []
        for r in range(1, len(pool) + 1):
            for combo in itertools.combinations(pool, r):
                candidate = frozenset(combo)
                if self.is_adversary_set(candidate, liveness, safety):
                    found.append(candidate)
        return found

    def gmax(self, safety: HistorySet) -> Optional[HistorySet]:
        """``Gmax`` = intersection of all adversary sets w.r.t. ``Lmax``;
        ``None`` when ``F(Lmax)`` is empty (then ``Lmax`` does not
        exclude ``S`` and the weakest-excluding question is moot)."""
        family = self.adversary_sets(self.lmax, safety)
        if not family:
            return None
        result = family[0]
        for other in family[1:]:
            result = result & other
        return result

    # -- extremal liveness searches ------------------------------------------------------

    def weakest_excluding(self, safety: HistorySet) -> Optional[HistorySet]:
        """The weakest liveness property excluding ``S``, if one exists.

        Brute force over the full liveness lattice: collect every
        excluding property and check whether one of them contains all
        others (weaker = superset).
        """
        excluding = [
            liveness
            for liveness in self.liveness_properties()
            if self.excludes(liveness, safety)
        ]
        if not excluding:
            return None
        for candidate in excluding:
            if all(other <= candidate for other in excluding):
                return candidate
        return None

    def strongest_non_excluding(self, safety: HistorySet) -> Optional[HistorySet]:
        """The strongest liveness property not excluding ``S``, if any.

        Stronger = subset; the strongest non-excluding property, if it
        exists, is contained in every other non-excluding property.
        """
        non_excluding = [
            liveness
            for liveness in self.liveness_properties()
            if not self.excludes(liveness, safety)
        ]
        if not non_excluding:
            return None
        for candidate in non_excluding:
            if all(candidate <= other for other in non_excluding):
                return candidate
        return None

    def strongest_liveness_of(self, impl: ImplementationModel) -> HistorySet:
        """Lemma 4.8's candidate: ``Lmax ∪ fair(A_I)``."""
        return self.lmax | impl.fair
