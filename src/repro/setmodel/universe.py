"""Building micro models: bounded history universes and policy families.

The finite-model layer (:mod:`repro.setmodel.model`) consumes explicit
sets; this module produces them from actual
:class:`~repro.core.object_type.ObjectType` declarations:

* :func:`enumerate_universe` — every well-formed crash-free history over
  ``ext(Tp)`` with at most ``per_process_ops`` operations per process
  (breadth-first extension, so the result is prefix-closed by
  construction);
* :func:`lmax_of` — the model's ``Lmax``: the histories in which every
  invoked operation has received a good response (the bounded-universe
  reading of "every correct process makes progress"; with crash-free
  micro models every process is correct);
* :class:`ResponsePolicy` and :func:`enumerate_policies` — deterministic
  implementations as response policies.  A policy maps a *context* —
  ``(process, its pending invocation, the set of invocations issued so
  far)`` — to a response value or :data:`SILENT`.  Policies cover the
  implementation behaviours the theorems quantify over while keeping
  the family finite; the history and fair-history sets of each policy
  are computed by intersection with the universe:

  - a history is consistent with policy ``P`` iff every response in it
    is the one ``P`` prescribes at its position;
  - a consistent history is *fair* iff no pending process has a
    prescribed (non-silent) response — i.e. no output action of the
    implementation automaton is enabled at its end (Section 3.2's
    finite-fairness clause; input actions are never required to occur).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.events import Invocation, Response, is_invocation, is_response
from repro.core.history import EMPTY_HISTORY, History
from repro.core.object_type import ObjectType
from repro.setmodel.model import FiniteModel, ImplementationModel
from repro.util.errors import ModelError

#: Policy verdict: never respond to this invocation.
SILENT = ("silent",)

#: A policy context: (pid, pending invocation, invocations issued so far).
Context = Tuple[int, Invocation, FrozenSet[Invocation]]


def enumerate_universe(
    object_type: ObjectType,
    processes: Sequence[int],
    per_process_ops: int = 1,
    max_events: Optional[int] = None,
) -> FrozenSet[History]:
    """All bounded well-formed crash-free histories over ``ext(Tp)``."""
    limit = max_events if max_events is not None else 2 * per_process_ops * len(processes)
    universe = {EMPTY_HISTORY}
    frontier = [EMPTY_HISTORY]
    while frontier:
        history = frontier.pop()
        if len(history) >= limit:
            continue
        pending = history.pending_invocations()
        for pid in processes:
            if pid in pending:
                invocation = pending[pid]
                for response in object_type.responses_to(invocation):
                    extended = history.append(response)
                    if extended not in universe:
                        universe.add(extended)
                        frontier.append(extended)
            else:
                if len(history.invocations(pid)) >= per_process_ops:
                    continue
                for invocation in object_type.invocation_alphabet([pid]):
                    extended = history.append(invocation)
                    if extended not in universe:
                        universe.add(extended)
                        frontier.append(extended)
    return frozenset(universe)


def lmax_of(
    object_type: ObjectType, universe: Iterable[History]
) -> FrozenSet[History]:
    """The histories in which every invoked operation got a good
    response (the strongest liveness requirement over the bounded
    universe)."""
    satisfied = set()
    for history in universe:
        pending = history.pending_invocations()
        if pending:
            continue
        good = True
        for response in history.responses():
            if not object_type.is_good(response):
                good = False
                break
        if good:
            satisfied.add(history)
    return frozenset(satisfied)


class ResponsePolicy:
    """A deterministic implementation given by a response rule."""

    def __init__(self, name: str, rule: Callable[[Context], Any]):
        self.name = name
        self._rule = rule

    def response_for(self, context: Context) -> Any:
        """The prescribed response value, or :data:`SILENT`."""
        return self._rule(context)

    @staticmethod
    def context_at(history: History, position: int) -> Context:
        """The context of the response event at ``position``."""
        event = history[position]
        if not is_response(event):
            raise ModelError("context_at expects a response position")
        prefix = history[:position]
        pending = prefix.pending_invocations()
        invocation = pending[event.process]
        issued = frozenset(prefix.invocations())
        return (event.process, invocation, issued)

    def histories_in(self, universe: Iterable[History]) -> FrozenSet[History]:
        """Universe histories consistent with this policy."""
        consistent = set()
        for history in universe:
            if self._consistent(history):
                consistent.add(history)
        return frozenset(consistent)

    def _consistent(self, history: History) -> bool:
        for position, event in enumerate(history):
            if not is_response(event):
                continue
            context = self.context_at(history, position)
            prescribed = self.response_for(context)
            if prescribed is SILENT or prescribed != event.value:
                return False
        return True

    def fair_in(self, histories: Iterable[History]) -> FrozenSet[History]:
        """Consistent histories at which no response is enabled."""
        fair = set()
        for history in histories:
            enabled = False
            for pid, invocation in history.pending_invocations().items():
                issued = frozenset(history.invocations())
                if self.response_for((pid, invocation, issued)) is not SILENT:
                    enabled = True
                    break
            if not enabled:
                fair.add(history)
        return frozenset(fair)

    def as_implementation(
        self, universe: Iterable[History]
    ) -> ImplementationModel:
        """Materialise the policy over a universe."""
        histories = self.histories_in(universe)
        return ImplementationModel(
            name=self.name, histories=histories, fair=self.fair_in(histories)
        )


def silent_policy(name: str = "silent") -> ResponsePolicy:
    """The trivial implementation of Theorem 4.9's proof: never
    responds."""
    return ResponsePolicy(name, lambda context: SILENT)


def constant_policy(value: Any, name: Optional[str] = None) -> ResponsePolicy:
    """Respond ``value`` to every invocation, immediately."""
    return ResponsePolicy(name or f"const({value!r})", lambda context: value)


def enumerate_policies(
    object_type: ObjectType,
    processes: Sequence[int],
    universe: Iterable[History],
    include_silent_choice: bool = True,
    max_policies: int = 4096,
) -> List[ResponsePolicy]:
    """Every deterministic context-based policy over the universe.

    Contexts are collected from the universe; each context independently
    picks one declared response value (or :data:`SILENT` when
    ``include_silent_choice``).  Raises :class:`ModelError` when the
    space exceeds ``max_policies`` — shrink the object type instead of
    waiting.
    """
    contexts: List[Context] = []
    seen = set()
    for history in sorted(universe, key=lambda h: (len(h), repr(h))):
        for pid, invocation in history.pending_invocations().items():
            context = (pid, invocation, frozenset(history.invocations()))
            if context not in seen:
                seen.add(context)
                contexts.append(context)
    choice_lists: List[List[Any]] = []
    for pid, invocation, _issued in contexts:
        values = [r.value for r in object_type.responses_to(invocation)]
        if include_silent_choice:
            values.append(SILENT)
        choice_lists.append(values)
    total = 1
    for values in choice_lists:
        total *= len(values)
    if total > max_policies:
        raise ModelError(
            f"policy space has {total} members (> {max_policies}); "
            "shrink the object type or the universe"
        )
    policies: List[ResponsePolicy] = []
    for assignment in itertools.product(*choice_lists):
        table = dict(zip(contexts, assignment))

        def rule(context: Context, _table=table) -> Any:
            return _table.get(context, SILENT)

        label = ",".join(
            "s" if value is SILENT else repr(value) for value in assignment
        )
        policies.append(ResponsePolicy(f"policy[{label}]", rule))
    return policies


def safety_is_admissible(
    object_type: ObjectType,
    processes: Sequence[int],
    safety: Iterable[History],
) -> bool:
    """Section 3.1's standing assumption on safety properties.

    "For each ``inv ∈ Inv`` and each process ``p_i`` there exists
    ``res ∈ Res`` such that ``inv_i · res_i ∈ S``" — a safety property
    must allow at least one response for every invocation executed
    sequentially from the initial state.  Theorem 4.9's proof uses
    this, and :func:`repro.setmodel.theorem49.negative_model` documents
    what happens without it.
    """
    safety_set = frozenset(safety)
    for pid in processes:
        for invocation in object_type.invocation_alphabet([pid]):
            if not any(
                History((invocation, response)) in safety_set
                for response in object_type.responses_to(invocation)
            ):
                return False
    return True


def build_model(
    object_type: ObjectType,
    processes: Sequence[int],
    policies: Sequence[ResponsePolicy],
    per_process_ops: int = 1,
    name: str = "micro-model",
    max_exponent: int = 18,
) -> FiniteModel:
    """Assemble a :class:`FiniteModel` from an object type and policies."""
    universe = enumerate_universe(object_type, processes, per_process_ops)
    lmax = lmax_of(object_type, universe)
    implementations = tuple(
        policy.as_implementation(universe) for policy in policies
    )
    return FiniteModel(
        universe=universe,
        lmax=lmax,
        implementations=implementations,
        name=name,
        max_exponent=max_exponent,
    )
