"""Exact finite set-theoretic models of the paper's Sections 3-4."""

from repro.setmodel.model import FiniteModel, HistorySet, ImplementationModel
from repro.setmodel.universe import (
    SILENT,
    ResponsePolicy,
    build_model,
    constant_policy,
    enumerate_policies,
    enumerate_universe,
    lmax_of,
    safety_is_admissible,
    silent_policy,
)
from repro.setmodel.theorem44 import (
    Theorem44Report,
    first_event_adversary_sets,
    verify_theorem44,
)
from repro.setmodel import theorem44, theorem49
from repro.setmodel.theorem49 import (
    Lemma48Report,
    Theorem49Report,
    verify_lemma48,
    verify_theorem49,
)

__all__ = [
    "FiniteModel",
    "HistorySet",
    "ImplementationModel",
    "SILENT",
    "ResponsePolicy",
    "build_model",
    "constant_policy",
    "enumerate_policies",
    "enumerate_universe",
    "lmax_of",
    "safety_is_admissible",
    "silent_policy",
    "Theorem44Report",
    "first_event_adversary_sets",
    "verify_theorem44",
    "theorem44",
    "theorem49",
    "Lemma48Report",
    "Theorem49Report",
    "verify_lemma48",
    "verify_theorem49",
]
