"""Lemma 4.8 and Theorem 4.9, checked exactly on micro models.

* **Lemma 4.8** — the strongest liveness property an implementation
  ``I`` ensures is ``Lmax ∪ fair(A_I)``.  Over a finite model the set
  of liveness properties ``I`` ensures is exactly the up-set of that
  union, so the check is: the intersection of all ensured liveness
  properties equals ``Lmax ∪ fair(A_I)``, and every superset is
  ensured.

* **Theorem 4.9** — if a strongest liveness property not excluding
  ``S`` exists, it is ``Lmax``.  Equivalently: either ``Lmax`` itself
  does not exclude ``S`` (then it is trivially the strongest
  non-excluding property), or no strongest non-excluding property
  exists.  :func:`verify_theorem49` checks precisely this disjunction
  by brute force; :func:`positive_model` and :func:`negative_model`
  instantiate each branch.

The proof of Theorem 4.9 leans on two constructed implementations —
the trivial never-responding ``I_t`` and the respond-once ``I_b``.
The micro models include silent and constant policies so that the
lattice genuinely contains the behaviours the proof needs; the tests
additionally verify the proof's key step (``L_t = Lmax ∪ fair(A_{I_t})``
is not weaker than any candidate ``L_s ≠ Lmax``) on the positive model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.setmodel.model import FiniteModel, HistorySet, ImplementationModel
from repro.setmodel.theorem44 import _micro_type
from repro.setmodel.universe import (
    build_model,
    constant_policy,
    enumerate_policies,
    enumerate_universe,
    silent_policy,
)


def positive_model() -> Tuple[FiniteModel, HistorySet]:
    """A model where ``Lmax`` does not exclude ``S``.

    One process, responses ``{0, 1}``, ``S`` = "responses are 0", and a
    family containing the constant-0 policy — a wait-free
    implementation of ``S``.  The strongest non-excluding liveness
    property must exist and be ``Lmax``.
    """
    object_type = _micro_type((0, 1))
    model = build_model(
        object_type,
        processes=[0],
        policies=[constant_policy(0), constant_policy(1), silent_policy()],
        per_process_ops=1,
        name="thm49-positive",
    )
    safety = frozenset(
        h for h in model.universe if all(r.value == 0 for r in h.responses())
    )
    return model, safety


def negative_model() -> Tuple[FiniteModel, HistorySet]:
    """A model where ``Lmax`` excludes ``S`` — so by Theorem 4.9 *no*
    strongest non-excluding liveness property may exist.

    Two processes, single response value, ``S`` = "at most one response
    in total".  ``S`` is *admissible* (Section 3.1's standing
    assumption: each invocation run sequentially from the initial state
    can be answered — one lone response is allowed), which Theorem 4.9's
    proof requires; an inadmissible ``S`` such as "no responses at all"
    genuinely breaks the theorem on restricted families, and the test
    suite keeps a regression exhibit of that.

    The family is *every* context policy (16 of them), so it contains
    the proof's constructed implementations: the silent ``I_t`` and the
    respond-to-one-process-only ``I_b`` variants.  Every policy ensuring
    ``S`` must keep some process silent, hence starves it in a fair
    history — ``Lmax`` excludes ``S`` — and the minimal non-excluding
    liveness properties (``Lmax ∪ fair`` of the one-sided responders)
    are incomparable, so no strongest exists.
    """
    object_type = _micro_type((0,))
    processes = [0, 1]
    universe = enumerate_universe(object_type, processes, per_process_ops=1)
    policies = enumerate_policies(object_type, processes, universe)
    model = build_model(
        object_type,
        processes=processes,
        policies=policies,
        per_process_ops=1,
        name="thm49-negative",
    )
    safety = frozenset(h for h in model.universe if len(h.responses()) <= 1)
    return model, safety


@dataclass(frozen=True)
class Lemma48Report:
    """Lemma 4.8 on one implementation."""

    implementation: str
    candidate: HistorySet  # Lmax ∪ fair(A_I)
    candidate_is_ensured: bool
    candidate_is_strongest: bool

    @property
    def holds(self) -> bool:
        return self.candidate_is_ensured and self.candidate_is_strongest


def verify_lemma48(model: FiniteModel, impl: ImplementationModel) -> Lemma48Report:
    """Check Lemma 4.8 by enumerating the liveness lattice."""
    candidate = model.strongest_liveness_of(impl)
    ensured = impl.ensures_liveness(candidate) and model.is_liveness(candidate)
    strongest = all(
        candidate <= liveness
        for liveness in model.liveness_properties()
        if impl.ensures_liveness(liveness)
    )
    return Lemma48Report(
        implementation=impl.name,
        candidate=candidate,
        candidate_is_ensured=ensured,
        candidate_is_strongest=strongest,
    )


@dataclass(frozen=True)
class Theorem49Report:
    """Theorem 4.9 on one (model, safety) pair."""

    model_name: str
    lmax_excludes_safety: bool
    strongest_non_excluding: Optional[HistorySet]
    strongest_is_lmax: Optional[bool]

    @property
    def holds(self) -> bool:
        """The theorem's content: a strongest non-excluding property,
        when it exists, is ``Lmax``."""
        if self.strongest_non_excluding is None:
            return True
        return bool(self.strongest_is_lmax)


def verify_theorem49(model: FiniteModel, safety: HistorySet) -> Theorem49Report:
    """Evaluate Theorem 4.9 by brute force over the liveness lattice."""
    strongest = model.strongest_non_excluding(safety)
    return Theorem49Report(
        model_name=model.name,
        lmax_excludes_safety=model.excludes(model.lmax, safety),
        strongest_non_excluding=strongest,
        strongest_is_lmax=None if strongest is None else strongest == model.lmax,
    )
