"""The repro-lint engine: rule registry, file discovery, reports.

``python -m repro lint`` runs every rule over the package's own source
tree (or explicit paths), applies inline suppressions, and renders the
result as text, markdown, or JSON.  Exit codes follow the CLI
convention: 0 clean, 1 violations, 2 usage error (unknown rule, bad
path).

The registry below is the single source of truth for rule ids; the CLI
``--list-rules`` table and the docs table are generated from it.
"""

from __future__ import annotations

import ast

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.lint.diagnostics import (
    Diagnostic,
    Suppressed,
    parse_suppressions,
)
from repro.lint.footprint import check_footprints
from repro.lint.rules_determinism import check_determinism
from repro.lint.rules_errors import check_errors
from repro.lint.rules_obs import check_obs
from repro.util.errors import unknown_choice

#: One checker may emit several rule ids (the DT family shares a walk).
Checker = Callable[[ast.Module, str, bool], List[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """Metadata for one rule id (the checker is shared per family)."""

    rule_id: str
    title: str
    invariant: str


RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "FP001",
            "footprint soundness",
            "BaseObject.footprint() never under-approximates what "
            "apply() touches (DPOR soundness)",
        ),
        Rule(
            "DT001",
            "wall-clock read",
            "deterministic modules never read wall-clock time",
        ),
        Rule(
            "DT002",
            "ambient randomness",
            "deterministic modules use explicitly seeded rngs only",
        ),
        Rule(
            "DT003",
            "unsorted JSON",
            "json.dumps outside util/hashing.py passes sort_keys=True",
        ),
        Rule(
            "DT004",
            "set iteration order",
            "deterministic modules never iterate a set without sorted()",
        ),
        Rule(
            "OB001",
            "obs fast-path discipline",
            "recorder uses are dominated by an `is not None` guard",
        ),
        Rule(
            "ER001",
            "registry error convention",
            "lookups fail through unknown_choice/UsageError, never a "
            "bare KeyError",
        ),
    )
}

CHECKERS: Tuple[Checker, ...] = (
    check_footprints,
    check_determinism,
    check_obs,
    check_errors,
)


def validate_select(select: Optional[Sequence[str]]) -> Optional[frozenset]:
    """Normalize a ``--select`` list, rejecting unknown rule ids."""
    if not select:
        return None
    chosen = []
    for rule_id in select:
        rule_id = rule_id.strip().upper()
        if not rule_id:
            continue
        if rule_id not in RULES:
            raise unknown_choice("lint rule", rule_id, sorted(RULES))
        chosen.append(rule_id)
    return frozenset(chosen) if chosen else None


@dataclass
class FileResult:
    """Lint outcome for one file."""

    path: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Suppressed] = field(default_factory=list)
    error: Optional[str] = None  # parse failure


@dataclass
class LintReport:
    """Aggregated lint outcome over a file set."""

    files: List[FileResult] = field(default_factory=list)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        out = [d for f in self.files for d in f.diagnostics]
        out.sort(key=Diagnostic.sort_key)
        return out

    @property
    def suppressed(self) -> List[Suppressed]:
        out = [s for f in self.files for s in f.suppressed]
        out.sort(key=lambda s: s.diagnostic.sort_key())
        return out

    @property
    def errors(self) -> List[str]:
        return [f"{f.path}: {f.error}" for f in self.files if f.error]

    @property
    def clean(self) -> bool:
        return not self.diagnostics and not self.errors

    def to_document(self) -> Dict[str, object]:
        return {
            "schema": "repro-lint-report",
            "version": 1,
            "files_checked": len(self.files),
            "violations": [d.to_document() for d in self.diagnostics],
            "suppressed": [s.to_document() for s in self.suppressed],
            "errors": self.errors,
            "clean": self.clean,
        }

    def render_text(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        lines.extend(f"error: {message}" for message in self.errors)
        lines.append(
            f"{len(self.files)} files checked: "
            f"{len(self.diagnostics)} violations, "
            f"{len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines = ["# repro-lint report", ""]
        lines.append(
            f"{len(self.files)} files checked — "
            f"**{len(self.diagnostics)} violations**, "
            f"{len(self.suppressed)} suppressed."
        )
        if self.diagnostics or self.errors:
            lines += ["", "| location | rule | message |", "| --- | --- | --- |"]
            for diagnostic in self.diagnostics:
                lines.append(
                    f"| `{diagnostic.path}:{diagnostic.line}` "
                    f"| {diagnostic.rule} | {diagnostic.message} |"
                )
            for message in self.errors:
                lines.append(f"| — | error | {message} |")
        if self.suppressed:
            lines += [
                "",
                "## Suppressed",
                "",
                "| location | rule | justification |",
                "| --- | --- | --- |",
            ]
            for suppressed in self.suppressed:
                diagnostic = suppressed.diagnostic
                why = suppressed.justification or "(none recorded)"
                lines.append(
                    f"| `{diagnostic.path}:{diagnostic.line}` "
                    f"| {diagnostic.rule} | {why} |"
                )
        return "\n".join(lines)


def package_root() -> Path:
    """The installed ``repro`` package directory (the default target)."""
    import repro

    return Path(repro.__file__).parent


def _iter_python_files(target: Path):
    if target.is_file():
        yield target
        return
    for path in sorted(target.rglob("*.py")):
        yield path


def lint_file(
    path: Path,
    relpath: str,
    external: bool,
    select: Optional[frozenset] = None,
) -> FileResult:
    """Run every checker over one file and apply its suppressions."""
    result = FileResult(path=relpath)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError) as exc:
        result.error = str(exc)
        return result
    suppressions = parse_suppressions(source)
    for checker in CHECKERS:
        for diagnostic in checker(tree, relpath, external):
            if select is not None and diagnostic.rule not in select:
                continue
            justification = suppressions.lookup(
                diagnostic.rule, diagnostic.line
            )
            if justification is not None:
                result.suppressed.append(
                    Suppressed(diagnostic, justification)
                )
            else:
                result.diagnostics.append(diagnostic)
    result.diagnostics.sort(key=Diagnostic.sort_key)
    return result


def lint_paths(
    paths: Optional[Sequence[str]] = None,
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint the given paths (default: the whole ``repro`` package).

    Paths inside the package get package-relative rule scoping; paths
    outside it (fixtures, scratch files) are treated as *external* —
    every scoped rule applies, so the rules stay testable.
    """
    chosen = validate_select(select)
    root = package_root()
    targets = [Path(p) for p in paths] if paths else [root]
    report = LintReport()
    for target in targets:
        if not target.exists():
            raise unknown_choice("lint path", str(target), [str(root)])
        for path in _iter_python_files(target):
            resolved = path.resolve()
            try:
                relpath = resolved.relative_to(root.resolve()).as_posix()
                external = False
            except ValueError:
                relpath = path.as_posix()
                external = True
            report.files.append(
                lint_file(resolved, relpath, external, chosen)
            )
    return report


def rules_table_markdown() -> str:
    """The rule table (docs and ``--list-rules`` share this)."""
    lines = [
        "| rule | title | protected invariant |",
        "| --- | --- | --- |",
    ]
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"| {rule.rule_id} | {rule.title} | {rule.invariant} |")
    return "\n".join(lines)
