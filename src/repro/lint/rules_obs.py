"""Obs discipline rule (OB001).

The instrumentation contract (:mod:`repro.obs.recorder`) is that
disabled metrics cost one pointer comparison per site: hot loops fetch
``active()`` once into a local and guard every use with an
``is not None`` check.  An *unguarded* attribute use of the fetched
recorder either crashes when metrics are off (``None.count``) or — the
sneaky version — only appears on the instrumented path and skews the
measured/unmeasured parity the obs benchmarks gate.

OB001 flags, per function:

* chained calls straight off the getter (``active().count(...)``);
* any attribute access on a local bound from ``active()`` /
  ``_obs_active()`` that is not dominated by a ``None`` guard.

Recognized guards (the shapes the codebase actually uses):

* ``if rec is not None: rec.count(...)`` (use in the body);
* ``if rec is None: ... else: rec.count(...)`` (use in the orelse);
* ``if rec is None: return`` followed by uses (early exit);
* ``rec.count(...) if rec is not None else ...`` (conditional
  expressions, either arm matching the test's polarity);
* ``rec is not None and rec.count(...)`` (short-circuit).

Passing the local to another function (``f(rec)``) is not flagged —
the callee owns the check.
"""

from __future__ import annotations

import ast

from typing import Dict, List, Optional, Set

from repro.lint.astutil import dotted_name, import_aliases, parent_map
from repro.lint.diagnostics import Diagnostic

#: Dotted origins of the active-recorder getter.
_GETTERS = {
    "repro.obs.recorder.active",
    "repro.obs.active",
}

_TERMINATORS = (ast.Return, ast.Raise, ast.Continue, ast.Break)


def _is_getter_call(node: ast.expr, aliases: Dict[str, str]) -> bool:
    return (
        isinstance(node, ast.Call)
        and dotted_name(node.func, aliases) in _GETTERS
    )


def _contains_getter_call(node: ast.expr, aliases: Dict[str, str]) -> bool:
    return any(
        _is_getter_call(child, aliases)
        for child in ast.walk(node)
        if isinstance(child, ast.Call)
    )


def _nonnull_when_true(test: ast.expr, name: str) -> bool:
    """Whether the test being true implies ``name is not None``."""
    if isinstance(test, ast.Name) and test.id == name:
        return True
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.IsNot)
        and isinstance(test.left, ast.Name)
        and test.left.id == name
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return True
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _nonnull_when_false(test.operand, name)
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_nonnull_when_true(value, name) for value in test.values)
    return False


def _nonnull_when_false(test: ast.expr, name: str) -> bool:
    """Whether the test being false implies ``name is not None``."""
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Is)
        and isinstance(test.left, ast.Name)
        and test.left.id == name
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return True
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _nonnull_when_true(test.operand, name)
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        return any(_nonnull_when_false(value, name) for value in test.values)
    return False


def _in_subtree(node: ast.AST, roots, parents) -> bool:
    seen: Set[int] = {id(root) for root in roots}
    current: Optional[ast.AST] = node
    while current is not None:
        if id(current) in seen:
            return True
        current = parents.get(current)
    return False


def _terminates(body: List[ast.stmt]) -> bool:
    return bool(body) and isinstance(body[-1], _TERMINATORS)


def _guarded(usage: ast.Name, func: ast.AST, parents) -> bool:
    name = usage.id
    node: ast.AST = usage
    while node is not func:
        parent = parents.get(node)
        if parent is None:
            break
        if isinstance(parent, (ast.If, ast.IfExp)):
            body = parent.body if isinstance(parent.body, list) else [parent.body]
            orelse = (
                parent.orelse
                if isinstance(parent.orelse, list)
                else [parent.orelse]
            )
            if _in_subtree(node, body, parents) and node is not parent.test:
                if _nonnull_when_true(parent.test, name):
                    return True
            if _in_subtree(node, orelse, parents):
                if _nonnull_when_false(parent.test, name):
                    return True
        if isinstance(parent, ast.While):
            if (
                _in_subtree(node, parent.body, parents)
                and node is not parent.test
                and _nonnull_when_true(parent.test, name)
            ):
                return True
        if isinstance(parent, ast.BoolOp):
            for index, value in enumerate(parent.values):
                if _in_subtree(node, [value], parents):
                    earlier = parent.values[:index]
                    if isinstance(parent.op, ast.And) and any(
                        _nonnull_when_true(v, name) for v in earlier
                    ):
                        return True
                    if isinstance(parent.op, ast.Or) and any(
                        _nonnull_when_false(v, name) for v in earlier
                    ):
                        return True
                    break
        # Early-exit guards: a preceding sibling ``if name is None:
        # return`` in any statement block on the ancestor path.
        for field_name in ("body", "orelse", "finalbody"):
            block = getattr(parent, field_name, None)
            if not isinstance(block, list) or node not in block:
                continue
            for sibling in block[: block.index(node)]:
                if (
                    isinstance(sibling, ast.If)
                    and not sibling.orelse
                    and _terminates(sibling.body)
                    and _nonnull_when_false(sibling.test, name)
                ):
                    return True
        node = parent
    return False


def check_obs(
    tree: ast.Module, relpath: str, external: bool = False
) -> List[Diagnostic]:
    """Run OB001 over one module."""
    diagnostics: List[Diagnostic] = []
    aliases = import_aliases(tree)
    if not any(value in _GETTERS for value in aliases.values()):
        # The module never imports the getter; nothing to check.
        return diagnostics
    parents = parent_map(tree)

    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        tracked: Set[str] = set()
        for inner in ast.walk(node):
            if isinstance(inner, ast.Assign) and _contains_getter_call(
                inner.value, aliases
            ):
                for target in inner.targets:
                    if isinstance(target, ast.Name):
                        tracked.add(target.id)
            if (
                isinstance(inner, ast.Attribute)
                and _is_getter_call(inner.value, aliases)
            ):
                diagnostics.append(
                    Diagnostic(
                        "OB001", relpath, inner.lineno, inner.col_offset,
                        "chained call on active(); bind the recorder to a "
                        "local and guard it with `is not None` (the "
                        "disabled fast path)",
                    )
                )
        if not tracked:
            continue
        for inner in ast.walk(node):
            if (
                isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id in tracked
                and isinstance(inner.value.ctx, ast.Load)
            ):
                if not _guarded(inner.value, node, parents):
                    diagnostics.append(
                        Diagnostic(
                            "OB001", relpath, inner.lineno, inner.col_offset,
                            f"recorder use {inner.value.id}.{inner.attr} "
                            "not dominated by an `is not None` guard "
                            "(obs disabled fast-path discipline)",
                        )
                    )
    return diagnostics
