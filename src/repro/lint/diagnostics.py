"""Diagnostics and suppressions for repro-lint.

A :class:`Diagnostic` is one rule violation anchored to ``file:line``.
Suppressions are source comments with a *recorded justification*::

    self._hits += 1  # repro-lint: disable=FP001 -- read-side cache, keyed cell

    # repro-lint: disable=DT003 -- probe only, output discarded
    json.dumps(value)

The comment suppresses the named rule(s) on its own line and, when it
stands alone, on the following line.  ``disable-file=RULE`` anywhere in
a module suppresses the rule for the whole file.  Suppressed
diagnostics are not dropped silently: the report keeps them (with their
justification) and ``--format json`` serializes them, so every accepted
violation stays auditable.
"""

from __future__ import annotations

import re

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Matches ``# repro-lint: disable=RULE[,RULE...] [-- justification]``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)="
    r"(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation at ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_document(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppressed:
    """A diagnostic silenced by an inline/file suppression comment."""

    diagnostic: Diagnostic
    justification: str

    def to_document(self) -> Dict[str, object]:
        document = self.diagnostic.to_document()
        document["justification"] = self.justification
        return document


@dataclass
class SuppressionIndex:
    """The suppression comments of one source file.

    ``by_line`` maps a source line number to ``{rule: justification}``
    entries that apply to diagnostics on that line; ``by_file`` holds
    the module-wide ``disable-file`` entries.
    """

    by_line: Dict[int, Dict[str, str]] = field(default_factory=dict)
    by_file: Dict[str, str] = field(default_factory=dict)

    def lookup(self, rule: str, line: int) -> Optional[str]:
        """The justification suppressing ``rule`` at ``line``, if any."""
        entry = self.by_line.get(line)
        if entry is not None and rule in entry:
            return entry[rule]
        if rule in self.by_file:
            return self.by_file[rule]
        return None


def parse_suppressions(source: str) -> SuppressionIndex:
    """Scan source lines for repro-lint suppression comments."""
    index = SuppressionIndex()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = [part.strip() for part in match.group("rules").split(",")]
        why = match.group("why") or ""
        if match.group(1) == "disable-file":
            for rule in rules:
                index.by_file[rule] = why
            continue
        targets = [lineno]
        if text.lstrip().startswith("#"):
            # A standalone comment suppresses the following line too.
            targets.append(lineno + 1)
        for target in targets:
            entry = index.by_line.setdefault(target, {})
            for rule in rules:
                entry[rule] = why
    return index
