"""Shared AST plumbing for the lint rules.

Every rule needs the same three things: a parent map (ast has none), an
import-alias table that resolves local names back to the dotted module
attribute they were imported as, and a resolver turning an expression
like ``dt.datetime.now`` into the dotted name ``datetime.datetime.now``.
"""

from __future__ import annotations

import ast

from typing import Dict, Iterator, Optional


def parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child -> parent for every node in the tree."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin, from the module's import statements.

    ``import time`` maps ``time -> time``; ``import datetime as dt``
    maps ``dt -> datetime``; ``from repro.obs.recorder import active as
    _obs_active`` maps ``_obs_active -> repro.obs.recorder.active``.
    Star imports are ignored (nothing in this repository uses them).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.partition(".")[0]] = (
                    alias.name if alias.asname else alias.name.partition(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def dotted_name(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve ``Name``/``Attribute`` chains to a dotted origin name.

    ``dt.datetime.now`` with ``dt -> datetime`` resolves to
    ``datetime.datetime.now``; unresolvable shapes (calls, subscripts)
    return ``None``.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def iter_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Every function/async-function definition in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def call_keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    """The value of keyword ``name`` in a call, or ``None``."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None
