"""FP001's dynamic half: cross-check static footprints against a live runtime.

The static analyzer (:mod:`repro.lint.footprint`) derives, from source
alone, what each base-object primitive declares it touches.  This module
checks that derivation against reality twice:

* **Synthetic exercise** — every registered base-object class is
  constructed, each of its primitives is driven through a real
  :class:`~repro.sim.runtime.Runtime` with ``record_footprints`` on (a
  one-process probe implementation issuing exactly that primitive), and
  the recorded :class:`~repro.sim.kernel.Footprint` is reduced to the
  same ``{"mode", "cell"}`` row the static map uses.  The two maps must
  byte-match under :func:`~repro.util.hashing.canonical_json`.  The
  exercise also fingerprints the object around each step: a state change
  under a declared ``read`` is an under-approximating footprint even
  when the declaration is internally consistent — exactly the bug class
  DPOR cannot survive.

* **Catalog walk** — a seeded random walk over the ``exhaustible``
  scenario slice replays real implementations decision-by-decision with
  ``record_footprints`` on and checks every recorded step footprint
  against the static row for the touched object's class.  This ties the
  static map to the objects the verification backends actually explore,
  not just to what the probe can construct.

Everything here is deterministic: probe argument discovery is ordered,
the catalog walk uses an explicitly seeded rng, and maps are compared as
canonical JSON.
"""

from __future__ import annotations

import inspect
import random

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.base_objects import BaseObject, ObjectPool
from repro.core.object_type import ObjectType, OperationSignature
from repro.sim.drivers import InvokeDecision, StepDecision
from repro.sim.kernel import Implementation, Op
from repro.sim.runtime import Runtime
from repro.util.hashing import canonical_json

#: Argument tuples tried, in order, when discovering a valid call shape
#: for a primitive.  Covers every shipped signature: niladic, one index,
#: index+value, and string-keyed forms.
CANDIDATE_ARGS: Tuple[Tuple[Any, ...], ...] = (
    (),
    (0,),
    (0, 1),
    (1, 2),
    ("k",),
    ("k", 1),
)

#: Pool name given to the probed object.
_PROBE_NAME = "probe"

#: Array-like constructors take a size; three cells is enough to make
#: keyed footprints observable.
_PROBE_SIZE = 3


def registered_classes() -> Dict[str, Type[BaseObject]]:
    """Concrete base-object classes exported by :mod:`repro.base_objects`."""
    import repro.base_objects as package

    classes: Dict[str, Type[BaseObject]] = {}
    for name in package.__all__:
        candidate = getattr(package, name)
        if (
            isinstance(candidate, type)
            and issubclass(candidate, BaseObject)
            and candidate is not BaseObject
        ):
            classes[name] = candidate
    return classes


def construct_probe(cls: Type[BaseObject]) -> BaseObject:
    """Build one instance of ``cls`` from its signature.

    ``name`` is always passed; a ``size`` parameter gets
    :data:`_PROBE_SIZE`; everything else must have a default.
    """
    signature = inspect.signature(cls.__init__)
    kwargs: Dict[str, Any] = {}
    for parameter in list(signature.parameters.values())[1:]:
        if parameter.name == "name":
            kwargs["name"] = _PROBE_NAME
        elif parameter.name == "size":
            kwargs["size"] = _PROBE_SIZE
        elif parameter.default is inspect.Parameter.empty:
            raise TypeError(
                f"{cls.__name__}.__init__ parameter {parameter.name!r} has "
                "no default; the footprint probe cannot construct it"
            )
    return cls(**kwargs)


def discover_args(
    cls: Type[BaseObject], method: str
) -> Optional[Tuple[Any, ...]]:
    """First candidate argument tuple the primitive accepts."""
    for args in CANDIDATE_ARGS:
        instance = construct_probe(cls)
        try:
            instance.apply(method, args)
        except Exception:
            continue
        return args
    return None


class _ProbeImplementation(Implementation):
    """One-process implementation issuing exactly one primitive per op."""

    name = "lint-footprint-probe"

    def __init__(self, factory, operations: Tuple[str, ...]):
        object_type = ObjectType(
            name="lint-probe",
            operations=tuple(
                OperationSignature(name=op) for op in operations
            ),
        )
        super().__init__(object_type, n_processes=1)
        self._factory = factory

    def create_pool(self) -> ObjectPool:
        return ObjectPool([self._factory()])

    def algorithm(self, pid, operation, args, memory):
        def body():
            result = yield Op(_PROBE_NAME, operation, args)
            return result

        return body()


def _footprint_row(footprint) -> Dict[str, str]:
    cells = footprint.reads or footprint.writes
    key = cells[0][1] if cells else None
    return {
        "mode": "read" if footprint.reads else "write",
        "cell": "whole" if key is None else "keyed",
    }


@dataclass
class ClassProbe:
    """Dynamic exercise result for one base-object class."""

    name: str
    rows: Dict[str, Dict[str, str]] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)


def exercise_class(cls: Type[BaseObject]) -> ClassProbe:
    """Drive every primitive of ``cls`` through a recording runtime."""
    probe = ClassProbe(name=cls.__name__)
    try:
        methods = construct_probe(cls).methods()
    except Exception as exc:  # construction itself is part of the check
        probe.problems.append(f"{cls.__name__}: cannot construct probe: {exc}")
        return probe
    for method in methods:
        args = discover_args(cls, method)
        if args is None:
            probe.problems.append(
                f"{cls.__name__}.{method}: no candidate arguments accepted"
            )
            continue
        implementation = _ProbeImplementation(
            lambda: construct_probe(cls), tuple(methods)
        )
        runtime = Runtime(implementation, driver=None, detect_lasso=False)
        runtime.record_footprints = True
        runtime.apply_decision(
            InvokeDecision(pid=0, operation=method, args=args)
        )
        state_before = runtime.pool.get(_PROBE_NAME).snapshot_state()
        runtime.apply_decision(StepDecision(pid=0))
        footprint = runtime.last_footprint
        if footprint is None or footprint.kind != "step":
            probe.problems.append(
                f"{cls.__name__}.{method}: probe step recorded no primitive "
                f"footprint (kind={getattr(footprint, 'kind', None)!r})"
            )
            continue
        state_after = runtime.pool.get(_PROBE_NAME).snapshot_state()
        row = _footprint_row(footprint)
        probe.rows[method] = row
        if row["mode"] == "read" and state_before != state_after:
            probe.problems.append(
                f"{cls.__name__}.{method}{args!r}: declared mode 'read' but "
                f"snapshot_state changed {state_before!r} -> {state_after!r} "
                "(footprint under-approximates; DPOR would commute a "
                "mutation)"
            )
    return probe


def dynamic_footprint_map(
    classes: Optional[Dict[str, Type[BaseObject]]] = None,
) -> Tuple[Dict[str, Dict[str, Dict[str, str]]], List[str]]:
    """``{class: {method: {"mode", "cell"}}}`` from live runtimes."""
    if classes is None:
        classes = registered_classes()
    rows: Dict[str, Dict[str, Dict[str, str]]] = {}
    problems: List[str] = []
    for name in sorted(classes):
        probe = exercise_class(classes[name])
        rows[name] = probe.rows
        problems.extend(probe.problems)
    return rows, problems


@dataclass
class FootprintParity:
    """Outcome of the static-vs-dynamic comparison."""

    static_map: Dict[str, Dict[str, Dict[str, str]]]
    dynamic_map: Dict[str, Dict[str, Dict[str, str]]]
    problems: List[str]
    mismatches: List[str]

    @property
    def ok(self) -> bool:
        return not self.problems and not self.mismatches


def compare_maps(
    static_map: Dict[str, Dict[str, Dict[str, str]]],
    dynamic_map: Dict[str, Dict[str, Dict[str, str]]],
) -> List[str]:
    """Human-readable differences; empty iff the maps byte-match."""
    if canonical_json(static_map) == canonical_json(dynamic_map):
        return []
    mismatches: List[str] = []
    for name in sorted(set(static_map) | set(dynamic_map)):
        static_rows = static_map.get(name)
        dynamic_rows = dynamic_map.get(name)
        if static_rows is None:
            mismatches.append(f"{name}: dynamically probed but not in the "
                              "static map")
            continue
        if dynamic_rows is None:
            mismatches.append(f"{name}: statically derived but never "
                              "dynamically probed")
            continue
        for method in sorted(set(static_rows) | set(dynamic_rows)):
            static_row = static_rows.get(method)
            dynamic_row = dynamic_rows.get(method)
            if static_row != dynamic_row:
                mismatches.append(
                    f"{name}.{method}: static {static_row!r} != dynamic "
                    f"{dynamic_row!r}"
                )
    return mismatches


def footprint_parity() -> FootprintParity:
    """Run the full synthetic cross-check for the registered catalog."""
    from pathlib import Path

    from repro.lint.footprint import static_footprint_map

    import repro.base_objects as package

    package_dir = Path(package.__file__).parent
    sources = {
        f"base_objects/{path.name}": path.read_text(encoding="utf-8")
        for path in sorted(package_dir.glob("*.py"))
    }
    static_map = static_footprint_map(sources)
    classes = registered_classes()
    # Compare exactly the registered classes: the static parse also sees
    # BaseObject subclasses that are not exported (there are none today).
    static_map = {
        name: rows for name, rows in static_map.items() if name in classes
    }
    dynamic_map, problems = dynamic_footprint_map(classes)
    return FootprintParity(
        static_map=static_map,
        dynamic_map=dynamic_map,
        problems=problems,
        mismatches=compare_maps(static_map, dynamic_map),
    )


# ---------------------------------------------------------------------------
# catalog walk
# ---------------------------------------------------------------------------


def crosscheck_catalog(
    static_map: Dict[str, Dict[str, Dict[str, str]]],
    sample: int = 6,
    seed: int = 0,
    max_steps: int = 160,
) -> List[str]:
    """Replay sampled ``exhaustible`` scenarios with footprint recording.

    Every recorded step footprint is checked against the static row of
    the touched object's class.  Returns mismatch messages (empty on a
    clean catalog).
    """
    from repro.scenarios import iter_scenarios

    mismatches: List[str] = []
    scenarios = list(iter_scenarios(tags="exhaustible"))
    rng = random.Random(seed)
    if sample and len(scenarios) > sample:
        scenarios = rng.sample(scenarios, sample)
    for scenario in scenarios:
        mismatches.extend(
            _walk_scenario(scenario, static_map, rng, max_steps)
        )
    return mismatches


def _walk_scenario(scenario, static_map, rng, max_steps) -> List[str]:
    mismatches: List[str] = []
    implementation = scenario.factory()
    runtime = Runtime(implementation, driver=None, detect_lasso=False)
    runtime.record_footprints = True
    positions = {pid: 0 for pid in scenario.plan}
    for _ in range(max_steps):
        choices: List[Any] = []
        for pid in sorted(scenario.plan):
            state = runtime.processes[pid]
            if state.idle and positions[pid] < len(scenario.plan[pid]):
                operation, args = scenario.plan[pid][positions[pid]]
                choices.append(
                    InvokeDecision(pid=pid, operation=operation, args=args)
                )
            elif state.pending:
                choices.append(StepDecision(pid=pid))
        if not choices:
            break
        decision = rng.choice(choices)
        if isinstance(decision, InvokeDecision):
            positions[decision.pid] += 1
        runtime.apply_decision(decision)
        footprint = runtime.last_footprint
        if not isinstance(decision, StepDecision) or footprint.kind != "step":
            continue
        op = runtime.processes[decision.pid].frame.pending_op
        class_name = type(runtime.pool.get(op.obj)).__name__
        static_row = static_map.get(class_name, {}).get(op.method)
        if static_row is None:
            mismatches.append(
                f"{scenario.scenario_id}: {class_name}.{op.method} has no "
                "static footprint row"
            )
            continue
        observed = _footprint_row(footprint)
        if observed != static_row:
            mismatches.append(
                f"{scenario.scenario_id}: {class_name}.{op.method}"
                f"{op.args!r} recorded {observed!r}, static row "
                f"{static_row!r}"
            )
    return mismatches
