"""repro-lint: project-specific static analysis.

Generic linters cannot see this repository's invariants — that
``BaseObject.footprint()`` must cover what ``apply()`` touches (DPOR
soundness), that fingerprinted paths stay deterministic, that recorder
uses sit behind the disabled fast-path guard, that registry lookups
fail through ``unknown_choice``.  This package encodes them as AST
rules with stable ids, surfaced as ``python -m repro lint``.

See ``docs/architecture.md`` (Static analysis layer) for the rule
table and the suppression policy.
"""

from repro.lint.diagnostics import Diagnostic, Suppressed, parse_suppressions
from repro.lint.engine import (
    RULES,
    LintReport,
    lint_file,
    lint_paths,
    rules_table_markdown,
    validate_select,
)
from repro.lint.dynamic import (
    FootprintParity,
    crosscheck_catalog,
    dynamic_footprint_map,
    footprint_parity,
)
from repro.lint.footprint import static_footprint_map

__all__ = [
    "Diagnostic",
    "Suppressed",
    "parse_suppressions",
    "RULES",
    "LintReport",
    "lint_file",
    "lint_paths",
    "rules_table_markdown",
    "validate_select",
    "FootprintParity",
    "crosscheck_catalog",
    "dynamic_footprint_map",
    "footprint_parity",
    "static_footprint_map",
]
