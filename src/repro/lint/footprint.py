"""FP001: static footprint soundness for base objects.

The partial-order reduction (:mod:`repro.engine.dpor`) commutes steps
whose declared footprints do not conflict.  The declaration lives in
:meth:`repro.base_objects.base.BaseObject.footprint`; the truth lives in
``apply``.  A primitive that *mutates* state while its footprint can
declare mode ``"read"``, or that touches cells outside the declared
key, makes DPOR prune reachable interleavings — wrong verdicts under
``reduction=dpor``, with nothing crashing.

This module walks the AST of every ``BaseObject`` subclass:

* ``methods()`` is read as a literal tuple — the method universe;
* ``footprint()`` is *symbolically evaluated* once per method name
  (branches on ``method == "..."`` resolve concretely; unresolvable
  tests fork and union), yielding the set of ``(mode, key)`` pairs the
  declaration can return, where a key is ``whole``, ``arg:i`` (derived
  from ``args[i]``, possibly through ``freeze``/checker wrappers), or
  unresolvable;
* each ``apply`` branch is scanned for ``self.<attr>`` reads and writes
  (attribute stores, augmented assigns, subscript stores, mutating
  method calls, keyed ``[...]``/``.get`` reads), with one level of
  ``self._helper(...)`` inlining.

FP001 fires when a branch writes state but the declaration can say
``read``, when an access is not covered by a declared ``arg:i`` cell,
or when the declaration is not statically analyzable at all (keeping
footprints simple is part of the contract).

:func:`static_footprint_map` exports the per-class per-method
``{"mode", "cell"}`` map; :mod:`repro.lint.dynamic` byte-compares it
(canonical JSON) against footprints recorded by a live
:class:`~repro.sim.runtime.Runtime`.
"""

from __future__ import annotations

import ast

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.diagnostics import Diagnostic

#: Attribute-call names treated as mutations of the receiver.
MUTATORS = {
    "append", "add", "clear", "pop", "popitem", "update", "extend",
    "insert", "remove", "discard", "setdefault", "sort", "reverse",
}

#: Key kinds: ``"whole"``, ``"arg:<i>"``, ``"other"`` (unresolvable).
WHOLE = "whole"
OTHER = "other"


@dataclass(frozen=True)
class Access:
    """One ``self.<attr>`` touch inside an ``apply`` branch."""

    attr: str
    kind: str  # "read" | "write"
    key: str  # WHOLE | "arg:i" | OTHER
    line: int
    col: int


@dataclass
class ClassAnalysis:
    """Everything FP001 derives about one BaseObject subclass."""

    name: str
    line: int
    col: int
    methods: Tuple[str, ...]
    #: method -> possible (mode, key) pairs; mode may be "?" when the
    #: declaration could not be evaluated.
    footprints: Dict[str, Set[Tuple[str, str]]]
    #: method -> accesses inside its apply branch (plus shared preamble).
    accesses: Dict[str, List[Access]]
    #: attributes some apply branch writes (the concurrency-visible state).
    mutable_attrs: Set[str]
    has_footprint_override: bool

    def footprint_row(self, method: str) -> Dict[str, str]:
        """The exported ``{"mode", "cell"}`` row for one method."""
        pairs = self.footprints.get(method, {("write", WHOLE)})
        modes = sorted({mode for mode, _ in pairs})
        keyed = any(key.startswith("arg:") for _, key in pairs)
        return {"mode": "|".join(modes), "cell": "keyed" if keyed else WHOLE}


# ---------------------------------------------------------------------------
# symbolic evaluation of footprint()
# ---------------------------------------------------------------------------

#: Abstract values: ("str", s) | ("none",) | ("key", kind) | ("args",)
#: | ("other",)
_Abstract = Tuple


def _eval_key(values: Set[_Abstract]) -> Set[str]:
    keys: Set[str] = set()
    for value in values:
        if value[0] == "none":
            keys.add(WHOLE)
        elif value[0] == "key":
            keys.add(value[1])
        else:
            keys.add(OTHER)
    return keys


def _arg_key(node: ast.expr) -> Optional[str]:
    """``args[i]`` (possibly wrapped in a single-argument call such as
    ``freeze(...)`` or ``self._check_index(...)``) -> ``"arg:i"``."""
    while isinstance(node, ast.Call) and len(node.args) == 1:
        node = node.args[0]
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == "args"
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, int)
    ):
        return f"arg:{node.slice.value}"
    return None


class _FootprintEval:
    """Evaluate one footprint() body with ``method`` fixed."""

    def __init__(self, method: str):
        self.method = method
        self.env: Dict[str, Set[_Abstract]] = {}
        self.returns: Set[Tuple[str, str]] = set()
        self.unresolved = False

    def eval_expr(self, node: ast.expr) -> Set[_Abstract]:
        if isinstance(node, ast.Constant):
            if node.value is None:
                return {("none",)}
            if isinstance(node.value, str):
                return {("str", node.value)}
            return {("other",)}
        if isinstance(node, ast.Name):
            if node.id == "method":
                return {("str", self.method)}
            if node.id == "args":
                return {("args",)}
            if node.id in self.env:
                return self.env[node.id]
            return {("other",)}
        arg = _arg_key(node)
        if arg is not None:
            return {("key", arg)}
        if isinstance(node, ast.IfExp):
            truth = self.eval_test(node.test)
            out: Set[_Abstract] = set()
            if True in truth:
                out |= self.eval_expr(node.body)
            if False in truth:
                out |= self.eval_expr(node.orelse)
            return out
        return {("other",)}

    def eval_test(self, node: ast.expr) -> Set[bool]:
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            left = self.eval_expr(node.left)
            right = self.eval_expr(node.comparators[0])
            op = node.ops[0]
            if isinstance(op, (ast.Eq, ast.NotEq)):
                if len(left) == 1 and len(right) == 1:
                    (lv,), (rv,) = left, right
                    if lv[0] == "str" and rv[0] == "str":
                        equal = lv[1] == rv[1]
                        return {equal if isinstance(op, ast.Eq) else not equal}
            if isinstance(op, (ast.In, ast.NotIn)):
                container = node.comparators[0]
                if (
                    len(left) == 1
                    and next(iter(left))[0] == "str"
                    and isinstance(container, (ast.Tuple, ast.List, ast.Set))
                    and all(
                        isinstance(e, ast.Constant) for e in container.elts
                    )
                ):
                    member = next(iter(left))[1] in {
                        e.value for e in container.elts  # type: ignore[union-attr]
                    }
                    return {member if isinstance(op, ast.In) else not member}
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return {not value for value in self.eval_test(node.operand)}
        return {True, False}

    def exec_stmts(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                if len(stmt.targets) == 1 and isinstance(
                    stmt.targets[0], ast.Name
                ):
                    self.env[stmt.targets[0].id] = self.eval_expr(stmt.value)
                continue
            if isinstance(stmt, ast.Return):
                self._record_return(stmt)
                return
            if isinstance(stmt, ast.If):
                truth = self.eval_test(stmt.test)
                if truth == {True}:
                    self.exec_stmts(stmt.body)
                    if self._block_returns(stmt.body):
                        return
                elif truth == {False}:
                    self.exec_stmts(stmt.orelse)
                else:
                    self.exec_stmts(stmt.body)
                    self.exec_stmts(stmt.orelse)
                    if self._block_returns(stmt.body) and self._block_returns(
                        stmt.orelse
                    ):
                        return
                continue
            if isinstance(stmt, (ast.Raise, ast.Pass, ast.Expr)):
                continue
            self.unresolved = True

    def _block_returns(self, stmts: Sequence[ast.stmt]) -> bool:
        return bool(stmts) and isinstance(stmts[-1], (ast.Return, ast.Raise))

    def _record_return(self, stmt: ast.Return) -> None:
        value = stmt.value
        if not isinstance(value, ast.Tuple) or len(value.elts) != 2:
            self.unresolved = True
            return
        modes = self.eval_expr(value.elts[0])
        keys = _eval_key(self.eval_expr(value.elts[1]))
        for mode_value in modes:
            mode = mode_value[1] if mode_value[0] == "str" else "?"
            if mode not in ("read", "write"):
                mode = "?"
            for key in keys:
                self.returns.add((mode, key))


def _possible_footprints(
    funcdef: ast.FunctionDef, method: str
) -> Tuple[Set[Tuple[str, str]], bool]:
    """All ``(mode, key)`` pairs footprint() can return for ``method``."""
    evaluator = _FootprintEval(method)
    evaluator.exec_stmts(funcdef.body)
    if not evaluator.returns:
        evaluator.unresolved = True
    return evaluator.returns, evaluator.unresolved


# ---------------------------------------------------------------------------
# apply() access collection
# ---------------------------------------------------------------------------


class _AccessCollector:
    """Collect ``self.<attr>`` reads/writes from one statement list."""

    def __init__(self, helpers: Dict[str, ast.FunctionDef], depth: int = 0):
        self.helpers = helpers
        self.depth = depth
        self.accesses: List[Access] = []
        self.env: Dict[str, str] = {}  # local name -> "arg:i"

    def _key(self, node: ast.expr) -> str:
        arg = _arg_key(node)
        if arg is not None:
            return arg
        if isinstance(node, ast.Name) and node.id in self.env:
            return self.env[node.id]
        return OTHER

    def _self_attr(self, node: ast.expr) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def record(self, attr: str, kind: str, key: str, node: ast.AST) -> None:
        self.accesses.append(
            Access(attr, kind, key, node.lineno, node.col_offset)
        )

    def collect(self, stmts: Sequence[ast.stmt]) -> List[Access]:
        for stmt in stmts:
            self.visit(stmt)
        return self.accesses

    def visit_target(self, node: ast.expr) -> None:
        attr = self._self_attr(node)
        if attr is not None:
            self.record(attr, "write", WHOLE, node)
            return
        if isinstance(node, ast.Subscript):
            base = self._self_attr(node.value)
            if base is not None:
                self.record(base, "write", self._key(node.slice), node)
                self.visit(node.slice)
                return
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self.visit_target(element)
            return
        if isinstance(node, ast.Starred):
            self.visit_target(node.value)
            return
        # Name / other targets: plain locals, nothing shared touched.

    def _track_assign(self, stmt: ast.Assign) -> None:
        # ``expected, new = args`` and ``key = args[0]`` style bindings,
        # so later subscripts through the local still resolve to arg:i.
        if len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            key = self._key(stmt.value)
            if key != OTHER:
                self.env[target.id] = key
        if (
            isinstance(target, (ast.Tuple, ast.List))
            and isinstance(stmt.value, ast.Name)
            and stmt.value.id == "args"
        ):
            for index, element in enumerate(target.elts):
                if isinstance(element, ast.Name):
                    self.env[element.id] = f"arg:{index}"

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            self._track_assign(node)
            for target in node.targets:
                self.visit_target(target)
            self.visit(node.value)
            return
        if isinstance(node, ast.AugAssign):
            self.visit_target(node.target)
            self.visit(node.value)
            return
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base_attr = self._self_attr(node.func.value)
            if base_attr is not None:
                if node.func.attr in MUTATORS:
                    self.record(base_attr, "write", WHOLE, node)
                elif node.func.attr == "get" and node.args:
                    self.record(
                        base_attr, "read", self._key(node.args[0]), node
                    )
                else:
                    self.record(base_attr, "read", WHOLE, node)
                for arg in node.args:
                    self.visit(arg)
                for keyword in node.keywords:
                    self.visit(keyword.value)
                return
            if (
                isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr in self.helpers
                and self.depth < 2
            ):
                helper = _AccessCollector(self.helpers, self.depth + 1)
                self.accesses.extend(
                    helper.collect(self.helpers[node.func.attr].body)
                )
                for arg in node.args:
                    self.visit(arg)
                return
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, ast.Load
        ):
            base = self._self_attr(node.value)
            if base is not None:
                self.record(base, "read", self._key(node.slice), node)
                self.visit(node.slice)
                return
        attr = self._self_attr(node) if isinstance(node, ast.Attribute) else None
        if attr is not None and isinstance(node.ctx, ast.Load):
            self.record(attr, "read", WHOLE, node)
            return
        for child in ast.iter_child_nodes(node):
            self.visit(child)


def _apply_branches(
    funcdef: ast.FunctionDef,
) -> Tuple[Dict[str, List[ast.stmt]], List[ast.stmt]]:
    """Split apply() into per-method branches plus shared statements."""
    branches: Dict[str, List[ast.stmt]] = {}
    common: List[ast.stmt] = []

    def method_of(test: ast.expr) -> Optional[str]:
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and isinstance(test.left, ast.Name)
            and test.left.id == "method"
            and isinstance(test.comparators[0], ast.Constant)
            and isinstance(test.comparators[0].value, str)
        ):
            return test.comparators[0].value
        return None

    def walk(stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                method = method_of(stmt.test)
                if method is not None:
                    branches.setdefault(method, []).extend(stmt.body)
                    walk(stmt.orelse)
                    continue
            if isinstance(stmt, ast.Return) or isinstance(stmt, ast.Raise):
                continue
            common.append(stmt)

    walk(funcdef.body)
    return branches, common


# ---------------------------------------------------------------------------
# class discovery and the rule
# ---------------------------------------------------------------------------


def _base_object_classes(tree: ast.Module) -> List[ast.ClassDef]:
    """Classes whose base chain reaches ``BaseObject``."""
    classes = {
        node.name: node
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
    }
    known: Set[str] = {"BaseObject"}
    changed = True
    while changed:
        changed = False
        for name, node in classes.items():
            if name in known:
                continue
            for base in node.bases:
                base_name = (
                    base.id
                    if isinstance(base, ast.Name)
                    else base.attr
                    if isinstance(base, ast.Attribute)
                    else None
                )
                if base_name in known:
                    known.add(name)
                    changed = True
                    break
    return [
        classes[name]
        for name in classes
        if name in known and name != "BaseObject"
    ]


def _literal_methods(classdef: ast.ClassDef) -> Tuple[str, ...]:
    for node in classdef.body:
        if isinstance(node, ast.FunctionDef) and node.name == "methods":
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Return) and isinstance(
                    stmt.value, (ast.Tuple, ast.List)
                ):
                    names = []
                    for element in stmt.value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            names.append(element.value)
                    return tuple(names)
    return ()


def _local_base_chain(
    classdef: ast.ClassDef, module_classes: Dict[str, ast.ClassDef]
) -> List[ast.ClassDef]:
    """``classdef`` followed by its same-module ancestors, nearest first."""
    chain = [classdef]
    seen = {classdef.name}
    frontier = [classdef]
    while frontier:
        current = frontier.pop(0)
        for base in current.bases:
            base_name = base.id if isinstance(base, ast.Name) else None
            parent = module_classes.get(base_name) if base_name else None
            if parent is not None and parent.name not in seen:
                seen.add(parent.name)
                chain.append(parent)
                frontier.append(parent)
    return chain


def analyze_class(
    classdef: ast.ClassDef,
    module_classes: Optional[Dict[str, ast.ClassDef]] = None,
) -> ClassAnalysis:
    """Derive the full FP001 view of one BaseObject subclass.

    ``module_classes`` (name -> classdef for the whole module) lets the
    analysis resolve same-module inheritance: a subclass overriding only
    ``footprint()`` is analyzed against its parent's ``methods()`` and
    ``apply()``.  Cross-module inheritance is not resolved — base
    objects subclass :class:`~repro.base_objects.base.BaseObject`
    directly, and missing definitions fall back to the conservative
    defaults.
    """
    chain = _local_base_chain(classdef, module_classes or {})
    functions: Dict[str, ast.FunctionDef] = {}
    for ancestor in reversed(chain):  # nearest override wins
        for node in ancestor.body:
            if isinstance(node, ast.FunctionDef):
                functions[node.name] = node
    methods: Tuple[str, ...] = ()
    for ancestor in chain:
        methods = _literal_methods(ancestor)
        if methods:
            break
    footprint_def = functions.get("footprint")
    apply_def = functions.get("apply")

    branches: Dict[str, List[ast.stmt]] = {}
    common: List[ast.stmt] = []
    if apply_def is not None:
        branches, common = _apply_branches(apply_def)

    universe = tuple(dict.fromkeys(list(methods) + sorted(branches)))

    footprints: Dict[str, Set[Tuple[str, str]]] = {}
    for method in universe:
        if footprint_def is None:
            footprints[method] = {("write", WHOLE)}
        else:
            returns, unresolved = _possible_footprints(footprint_def, method)
            if unresolved:
                returns = set(returns) | {("?", OTHER)}
            footprints[method] = returns

    helpers = {
        name: fn for name, fn in functions.items() if name not in ("apply",)
    }
    accesses: Dict[str, List[Access]] = {}
    common_accesses = _AccessCollector(helpers).collect(common)
    for method in universe:
        collector = _AccessCollector(helpers)
        accesses[method] = common_accesses + collector.collect(
            branches.get(method, [])
        )

    mutable: Set[str] = {
        access.attr
        for method_accesses in accesses.values()
        for access in method_accesses
        if access.kind == "write"
    }
    return ClassAnalysis(
        name=classdef.name,
        line=classdef.lineno,
        col=classdef.col_offset,
        methods=universe,
        footprints=footprints,
        accesses=accesses,
        mutable_attrs=mutable,
        has_footprint_override=footprint_def is not None,
    )


def check_footprints(
    tree: ast.Module, relpath: str, external: bool = False
) -> List[Diagnostic]:
    """Run FP001 over one module."""
    diagnostics: List[Diagnostic] = []
    module_classes = {
        node.name: node
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
    }
    for classdef in _base_object_classes(tree):
        analysis = analyze_class(classdef, module_classes)
        for method in analysis.methods:
            pairs = analysis.footprints[method]
            relevant = [
                access
                for access in analysis.accesses[method]
                if access.kind == "write"
                or access.attr in analysis.mutable_attrs
            ]
            writes = [a for a in relevant if a.kind == "write"]
            for mode, key in sorted(pairs):
                if mode == "?":
                    diagnostics.append(
                        Diagnostic(
                            "FP001", relpath, analysis.line, analysis.col,
                            f"{analysis.name}.footprint() is not statically "
                            f"analyzable for method {method!r}; keep "
                            "footprint declarations symbolically simple",
                        )
                    )
                    continue
                if writes and mode == "read":
                    worst = writes[0]
                    diagnostics.append(
                        Diagnostic(
                            "FP001", relpath, worst.line, worst.col,
                            f"{analysis.name}.apply() branch for "
                            f"{method!r} writes self.{worst.attr} but "
                            "footprint() can declare mode 'read' — DPOR "
                            "would commute a mutation (unsound reduction)",
                        )
                    )
                if key == OTHER:
                    diagnostics.append(
                        Diagnostic(
                            "FP001", relpath, analysis.line, analysis.col,
                            f"{analysis.name}.footprint() key for "
                            f"{method!r} is not statically resolvable "
                            "(expected None or args[i])",
                        )
                    )
                    continue
                if key.startswith("arg:"):
                    for access in relevant:
                        if access.key != key:
                            diagnostics.append(
                                Diagnostic(
                                    "FP001", relpath, access.line, access.col,
                                    f"{analysis.name}.apply() branch for "
                                    f"{method!r} touches self.{access.attr} "
                                    f"({access.kind}, "
                                    f"{'whole attribute' if access.key == WHOLE else access.key}) "
                                    f"outside the declared cell {key} — "
                                    "footprint under-approximates the "
                                    "touched set",
                                )
                            )
    return diagnostics


def static_footprint_map(
    sources: Dict[str, str]
) -> Dict[str, Dict[str, Dict[str, str]]]:
    """The per-class per-method ``{"mode", "cell"}`` map from source text.

    ``sources`` maps a label (path) to Python source; classes across all
    sources are merged (duplicate class names keep the last parse, which
    never happens in the package itself).
    """
    result: Dict[str, Dict[str, Dict[str, str]]] = {}
    for label, source in sources.items():
        tree = ast.parse(source, filename=label)
        module_classes = {
            node.name: node
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        }
        for classdef in _base_object_classes(tree):
            analysis = analyze_class(classdef, module_classes)
            result[analysis.name] = {
                method: analysis.footprint_row(method)
                for method in analysis.methods
            }
    return result
