"""Error-convention rule (ER001).

Every registry in this repository (scenarios, experiments, mutants,
families, campaign axes) fails unknown-key lookups through
:func:`repro.util.errors.unknown_choice`: a :class:`UsageError` with a
did-you-mean hint, mapped to exit code 2 by the CLI.  A ``raise
KeyError(...)`` instead bypasses that contract — callers catching
``ReproError`` miss it, the CLI turns it into a traceback instead of a
usage message, and the suggestion machinery never runs.

ER001 flags every explicit ``raise KeyError(...)`` in library code.
Lookups that *re-raise* a dict's own ``KeyError`` through
``unknown_choice`` (the standard idiom) are naturally not flagged —
only explicit constructions are.
"""

from __future__ import annotations

import ast

from typing import List

from repro.lint.diagnostics import Diagnostic


def check_errors(
    tree: ast.Module, relpath: str, external: bool = False
) -> List[Diagnostic]:
    """Run ER001 over one module."""
    diagnostics: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name == "KeyError":
            diagnostics.append(
                Diagnostic(
                    "ER001", relpath, node.lineno, node.col_offset,
                    "raise KeyError in library code; lookups should fail "
                    "through repro.util.errors.unknown_choice (UsageError "
                    "with a did-you-mean hint, CLI exit code 2)",
                )
            )
    return diagnostics
