"""Determinism rules (DT00x).

Every stable identity in this repository — campaign job fingerprints,
verdict cache keys, deterministic JSON exports, seeded fuzz schedules —
depends on the hashed path being a pure function of its inputs.  These
rules flag the classic ways that silently stops being true:

* **DT001** — wall-clock reads (``time.time``, ``datetime.now``, ...)
  inside the deterministic scope (hashing, engine, fuzz, export, and
  service-key modules).
* **DT002** — ambient randomness (``os.urandom``, ``uuid.uuid4``,
  ``secrets``, the module-level ``random`` functions, and unseeded
  ``random.Random()``) inside the same scope.
* **DT003** — ``json.dumps``/``json.dump`` without ``sort_keys=True``
  anywhere outside :mod:`repro.util.hashing` (the one module allowed to
  define the canonical encoding).  Mapping order must never leak into
  an artifact.
* **DT004** — iterating a ``set``/``frozenset`` expression without
  ``sorted(...)`` inside the deterministic scope.  Set order depends on
  the interpreter's hash seed; dict iteration is insertion-ordered and
  therefore exempt.

``time.perf_counter`` is deliberately *not* flagged: relative timing
feeds throughput stats, which are never hashed.
"""

from __future__ import annotations

import ast

from typing import List, Optional

from repro.lint.astutil import call_keyword, dotted_name, import_aliases
from repro.lint.diagnostics import Diagnostic

#: Package-relative path prefixes forming the deterministic scope of
#: DT001/DT002/DT004.  Files outside the package (test fixtures) are
#: treated as in scope so the rules stay testable.
DETERMINISTIC_SCOPE = (
    "util/hashing.py",
    "service/keys.py",
    "engine/",
    "fuzz/",
    "sim/",
    "campaign/spec.py",
    "campaign/report.py",
    "scenarios/families.py",
)

#: Wall-clock reads (DT001).
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Ambient randomness (DT002): module-level ``random`` functions use the
#: shared unseeded global Mersenne Twister.
_AMBIENT_RANDOM = {
    "os.urandom",
    "uuid.uuid4",
    "uuid.uuid1",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbelow",
    "secrets.choice",
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.sample",
    "random.getrandbits",
    "random.uniform",
    "random.seed",
}


def in_scope(relpath: str, external: bool) -> bool:
    """Whether the file falls inside the deterministic scope."""
    if external:
        return True
    return any(relpath.startswith(prefix) for prefix in DETERMINISTIC_SCOPE)


def _is_set_expression(node: ast.expr, aliases) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func, aliases) in ("set", "frozenset")
    return False


def check_determinism(
    tree: ast.Module, relpath: str, external: bool = False
) -> List[Diagnostic]:
    """Run DT001/DT002/DT003/DT004 over one module."""
    diagnostics: List[Diagnostic] = []
    aliases = import_aliases(tree)
    scoped = in_scope(relpath, external)
    hashing_module = relpath == "util/hashing.py"

    def flag(rule: str, node: ast.AST, message: str) -> None:
        diagnostics.append(
            Diagnostic(rule, relpath, node.lineno, node.col_offset, message)
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func, aliases)
            if name is None:
                continue
            if scoped and name in _WALL_CLOCK:
                flag(
                    "DT001", node,
                    f"wall-clock read {name}() in a deterministic module; "
                    "thread timestamps in from the caller instead",
                )
            elif scoped and name in _AMBIENT_RANDOM:
                flag(
                    "DT002", node,
                    f"ambient randomness {name}() in a deterministic "
                    "module; use a seeded rng (repro.util.rng)",
                )
            elif scoped and name == "random.Random" and not (
                node.args or node.keywords
            ):
                flag(
                    "DT002", node,
                    "unseeded random.Random() in a deterministic module; "
                    "pass an explicit seed",
                )
            elif name in ("json.dumps", "json.dump") and not hashing_module:
                sort_keys = call_keyword(node, "sort_keys")
                sorted_on = (
                    isinstance(sort_keys, ast.Constant)
                    and sort_keys.value is True
                )
                if not sorted_on:
                    flag(
                        "DT003", node,
                        f"{name} without sort_keys=True; mapping order "
                        "leaks into the output (use "
                        "repro.util.hashing.canonical_json for "
                        "fingerprinted payloads)",
                    )
        if not scoped:
            continue
        iterables: List[Optional[ast.expr]] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iterables.extend(gen.iter for gen in node.generators)
        for iterable in iterables:
            if iterable is not None and _is_set_expression(iterable, aliases):
                flag(
                    "DT004", iterable,
                    "iteration over a set expression; set order depends "
                    "on the hash seed — wrap it in sorted(...)",
                )
    return diagnostics
