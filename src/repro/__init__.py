"""repro — reproduction of Bushkov & Guerraoui, "Safety-Liveness
Exclusion in Distributed Computing" (PODC 2015).

Subpackages
-----------
``repro.core``
    Events, histories, object types, safety/liveness property
    framework, the ``(l,k)``-freedom family, adversary sets, exclusion
    reports.
``repro.base_objects``
    Atomic hardware primitives (registers, CAS, TAS, snapshot, ...).
``repro.sim``
    Deterministic discrete-event simulator of asynchronous shared
    memory: drivers, schedulers, workloads, crash plans, lassos.
``repro.objects``
    Shared-object types and safety checkers (consensus agreement &
    validity, linearizability, opacity, strict serializability, the
    Section 5.3 property ``S``).
``repro.algorithms``
    Implementations under evaluation: register/CAS/TAS consensus,
    AGP and Algorithm 1 (``I(1,2)``) TMs, trivial/blocking/intent TMs,
    bakery and TAS locks.
``repro.adversaries``
    The paper's adversary strategies as drivers, plus the mechanised
    valency schedule search.
``repro.automata``
    Faithful I/O automata (Section 2).
``repro.setmodel``
    Exact finite set-theoretic models of Theorems 4.4/4.9.
``repro.scenarios``
    The declarative scenario registry and the uniform ``verify()``
    facade over the exhaustive and fuzz backends.
``repro.analysis``
    The experiment registry: one claim evaluator per
    table/figure/theorem.

Quickstart
----------
>>> from repro.analysis import run_experiment
>>> result = run_experiment("thm44")
>>> result.all_ok
True
>>> from repro.scenarios import verify
>>> verify("agp-opacity", backend="exhaustive").outcome
'holds'
"""

from repro.core import (
    Crash,
    History,
    Invocation,
    LKFreedom,
    LivenessProperty,
    Response,
    SafetyProperty,
    Verdict,
    history_of,
)
from repro.sim import Implementation, Op, play
from repro.scenarios import get_scenario, iter_scenarios, verify
from repro.analysis import EXPERIMENTS, run_experiment

__version__ = "1.0.0"

__all__ = [
    "Crash",
    "History",
    "Invocation",
    "LKFreedom",
    "LivenessProperty",
    "Response",
    "SafetyProperty",
    "Verdict",
    "history_of",
    "Implementation",
    "Op",
    "play",
    "get_scenario",
    "iter_scenarios",
    "verify",
    "EXPERIMENTS",
    "run_experiment",
    "__version__",
]
