"""The campaign subsystem: persistent, resumable paper-scale sweeps.

Layers (each its own module):

* :mod:`repro.campaign.spec` — declarative parameter grids expanded
  into content-addressed jobs (the fingerprint contract);
* :mod:`repro.campaign.store` — the SQLite-backed run store with the
  ``pending → claimed → done/failed`` job lifecycle;
* :mod:`repro.campaign.runner` — the worker pool executing open jobs
  through the experiment registry and engine batch runner;
* :mod:`repro.campaign.report` — deterministic JSON export and ASCII
  re-rendering of stored results (Figure 1 panels, claim tables).

CLI: ``python -m repro campaign init|run|status|reset|export``.
"""

from repro.campaign.report import (
    export_campaign,
    merged_metrics,
    render_results,
    render_status,
    result_payload,
    store_all_ok,
    watch_status,
)
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec, Job, job_fingerprint
from repro.campaign.store import CampaignStore, JobRecord

__all__ = [
    "CampaignSpec",
    "CampaignStore",
    "Job",
    "JobRecord",
    "export_campaign",
    "job_fingerprint",
    "merged_metrics",
    "render_results",
    "render_status",
    "result_payload",
    "run_campaign",
    "store_all_ok",
    "watch_status",
]
