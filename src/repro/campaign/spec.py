"""Declarative campaign specs: parameter grids → content-addressed jobs.

A :class:`CampaignSpec` names a set of experiments and a set of *axes*
(``n=2..4``, ``seed=0,1,2``, ``crash=none,p0@40`` …).  :meth:`expand`
crosses each experiment with the axes it supports — the
``grid_axes`` contract declared on
:class:`~repro.analysis.experiments.ExperimentSpec` — yielding one
:class:`Job` per parameter combination.

Every job is *content-addressed*: its fingerprint is the SHA-256 of the
canonical JSON of ``{"experiment": id, "params": {...}}`` (sorted keys,
compact separators).  The fingerprint is the primary key of the run
store, which is what makes campaigns resumable and idempotent — re-adding
the same grid inserts nothing, and two grids that overlap share the
overlapping jobs.
"""

from __future__ import annotations

import json
import re

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.analysis.experiments import EXPERIMENTS
from repro.util.errors import UsageError, unknown_choice
from repro.util.hashing import canonical_fingerprint, canonical_json  # noqa: F401
# (canonical_json is re-exported: the store and report modules import it
# from here, and the one true encoding lives in repro.util.hashing so
# campaign job ids and service cache keys can never drift apart)
from repro.util.params import coerce_scalar  # noqa: F401  (re-exported: the
# shared key=value grammar lives in repro.util.params; campaign axis
# values and CLI --param/--set overrides must coerce identically)

#: Inclusive integer range syntax for axis values: ``2..4`` → 2, 3, 4.
_RANGE = re.compile(r"^(-?\d+)\.\.(-?\d+)$")


def parse_axis_values(raw: str) -> List[Any]:
    """Parse the value side of an axis spec into a list of values.

    ``2..4`` is an inclusive integer range; ``a,b,c`` is a list of
    scalars; a JSON array is taken verbatim (use it to pass a value
    that itself contains a comma, e.g. ``scheduler=["solo,lockstep"]``);
    anything else is a single scalar.
    """
    match = _RANGE.match(raw.strip())
    if match is not None:
        low, high = int(match.group(1)), int(match.group(2))
        if high < low:
            raise UsageError(f"empty axis range {raw!r} (use low..high)")
        return list(range(low, high + 1))
    if raw[:1] == "[":
        try:
            values = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise UsageError(f"bad JSON axis value {raw!r}: {exc}") from None
        if not isinstance(values, list) or not values:
            raise UsageError(f"JSON axis value {raw!r} must be a non-empty array")
        return values
    if "," in raw:
        parts = [part.strip() for part in raw.split(",") if part.strip()]
        if not parts:
            raise UsageError(f"axis value {raw!r} names no values")
        return [coerce_scalar(part) for part in parts]
    return [coerce_scalar(raw)]


def job_fingerprint(experiment_id: str, params: Mapping[str, Any]) -> str:
    """The content address of one job (the store's primary key).

    Contract: SHA-256 hex digest of
    ``canonical_json({"experiment": id, "params": params})``
    (:func:`repro.util.hashing.canonical_fingerprint`).  Stable across
    processes, Python versions, and parameter insertion order; any
    change to the canonical encoding invalidates existing stores
    (tests/test_hashing.py pins known fingerprints byte-identical).
    Params are hashed *verbatim* — no value normalisation — because the
    contract predates :func:`repro.util.hashing.normalized` and
    existing stores must keep resolving.
    """
    return canonical_fingerprint(
        {"experiment": experiment_id, "params": dict(params)}
    )


@dataclass(frozen=True)
class Job:
    """One content-addressed unit of campaign work."""

    experiment_id: str
    params: Any  # Mapping[str, Any]; kept loose for frozen-dataclass hashing

    @property
    def fingerprint(self) -> str:
        return job_fingerprint(self.experiment_id, self.params)


@dataclass
class CampaignSpec:
    """A named parameter grid over registered experiments."""

    experiments: List[str]
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    name: str = "campaign"

    def __post_init__(self) -> None:
        for experiment in self.experiments:
            if experiment not in EXPERIMENTS:
                raise unknown_choice("experiment", experiment, EXPERIMENTS)
        for axis, values in self.axes.items():
            if not values:
                raise UsageError(f"axis {axis!r} has no values")
            supported = [
                e for e in self.experiments if axis in EXPERIMENTS[e].grid_axes
            ]
            if not supported:
                raise UsageError(
                    f"axis {axis!r} is not a grid axis of any selected "
                    f"experiment; per-experiment axes: "
                    + ", ".join(
                        f"{e}={list(EXPERIMENTS[e].grid_axes)}"
                        for e in self.experiments
                    )
                )

    @classmethod
    def from_cli(
        cls,
        grids: Optional[Sequence[str]],
        axis_specs: Sequence[str],
        name: str = "campaign",
    ) -> "CampaignSpec":
        """Build a spec from CLI arguments: repeated ``--grid`` ids
        (default: every registered experiment) plus positional
        ``axis=values`` specs."""
        experiments = sorted(set(grids)) if grids else sorted(EXPERIMENTS)
        axes: Dict[str, List[Any]] = {}
        for spec in axis_specs:
            if "=" not in spec:
                raise UsageError(f"axis spec must be key=values, got {spec!r}")
            key, _, raw = spec.partition("=")
            key = key.strip()
            if not key:
                raise UsageError(f"axis spec {spec!r} has an empty axis name")
            if key in axes:
                raise UsageError(f"axis {key!r} specified twice")
            axes[key] = parse_axis_values(raw)
        return cls(experiments=experiments, axes=axes, name=name)

    def expand(self) -> List[Job]:
        """The job list: each experiment crossed with the axes it
        supports, deduplicated by fingerprint.

        Axes an experiment does not declare in ``grid_axes`` are
        dropped *for that experiment* (so a shared ``n=2..4`` axis
        yields three ``fig1a`` jobs but a single ``thm44`` job).
        """
        jobs: List[Job] = []
        seen = set()
        for experiment_id in self.experiments:
            supported = EXPERIMENTS[experiment_id].grid_axes
            names = sorted(axis for axis in self.axes if axis in supported)
            for combo in product(*(self.axes[axis] for axis in names)):
                job = Job(experiment_id, dict(zip(names, combo)))
                if job.fingerprint not in seen:
                    seen.add(job.fingerprint)
                    jobs.append(job)
        return jobs

    def merged(self, other: "CampaignSpec") -> "CampaignSpec":
        """The union of two specs: experiments sorted-united, axis
        values united in first-seen order, the newer name kept.  Used
        by additive ``campaign init`` so the stored spec describes
        every grid ever added."""
        axes: Dict[str, List[Any]] = {
            axis: list(values) for axis, values in self.axes.items()
        }
        for axis, values in other.axes.items():
            known = axes.setdefault(axis, [])
            known.extend(value for value in values if value not in known)
        return CampaignSpec(
            experiments=sorted(set(self.experiments) | set(other.experiments)),
            axes=axes,
            name=other.name,
        )

    # -- (de)serialisation for the store's meta table -----------------------

    def to_json(self) -> str:
        return canonical_json(
            {"name": self.name, "experiments": self.experiments, "axes": self.axes}
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        document = json.loads(text)
        return cls(
            experiments=list(document["experiments"]),
            axes={k: list(v) for k, v in document["axes"].items()},
            name=document.get("name", "campaign"),
        )
