"""The campaign worker pool: pull open jobs, execute, record.

Workers are plain processes around one loop — claim a job from the
store, run it through the experiment registry (whose batteries execute
on :func:`repro.engine.batch.run_play_batch`), persist the result
payload and timing.  The store's atomic claim is the only coordination:
workers never talk to each other, any number of them (including workers
of *other* ``campaign run`` invocations on the same store) can run
concurrently, and killing any of them loses at most the claims they
held — which :meth:`~repro.campaign.store.CampaignStore.reclaim_dead`
recovers on the next run.

``workers=None`` honours ``REPRO_ENGINE_PARALLEL`` (the engine-wide
parallelism knob).  With more than one worker, job-level parallelism
replaces battery-level parallelism — workers pin
``REPRO_ENGINE_PARALLEL=0`` in their own environment so every job runs
its battery serially instead of oversubscribing the machine with nested
pools.

Observability
-------------
With ``metrics=True`` every job executes inside its own obs recorder
(:func:`repro.obs.recorder.recording`) and its ``repro-metrics``
document is stored **on the job row** — so the merged campaign
document (:func:`repro.campaign.report.merged_metrics`) is assembled
from exactly one document per job, regardless of which worker (or
which resumed invocation) executed it, and a dead-worker reclaim can
never double-count: returning a job to ``pending`` clears its metrics
column and re-execution replaces the document.  With ``trace_dir``
set, each worker additionally wraps its whole drain in a tracing
recorder and writes a trace *fragment* file (raw Chrome events + lane
label) that the parent merges into one Perfetto timeline.
"""

from __future__ import annotations

import multiprocessing
import os
import time

from typing import Any, Dict, Optional

from repro.analysis.experiments import run_experiment
from repro.campaign.report import result_payload
from repro.campaign.store import CampaignStore, JobRecord, local_worker_id
from repro.engine.batch import default_parallelism
from repro.obs.metrics import metrics_document
from repro.obs.recorder import active as _obs_active, recording as _obs_recording
from repro.obs.trace import write_trace_fragment


def _run(record: JobRecord):
    """Execute one job's experiment; returns (payload, error, elapsed)
    with exactly one of payload/error set."""
    started = time.perf_counter()
    try:
        result = run_experiment(record.experiment, **record.params)
        payload, error = result_payload(result), None
    except Exception as exc:  # job errors are data, not crashes
        payload, error = None, f"{type(exc).__name__}: {exc}"
    return payload, error, time.perf_counter() - started


def execute_job(
    store: CampaignStore, record: JobRecord, metrics: bool = False
) -> bool:
    """Run one claimed job to ``done``/``failed``; True when it
    completed with a result payload.

    With ``metrics`` the job runs inside its own recorder (nested, so
    an enclosing worker recorder still absorbs the totals) and its
    metrics document is persisted on the job row.  The document is
    snapshotted *after* the ``campaign/job`` span closes so the span
    itself is part of it.
    """
    document = None
    if not metrics:
        payload, error, elapsed = _run(record)
    else:
        parent = _obs_active()
        trace = parent.trace if parent is not None else False
        with _obs_recording(
            label=f"job:{record.fingerprint[:12]}", trace=trace
        ) as recorder:
            recorder.count("campaign/jobs")
            with recorder.span(f"campaign/job:{record.experiment}"):
                payload, error, elapsed = _run(record)
            if error is not None:
                recorder.count("campaign/job_failures")
            document = metrics_document(recorder)
    if error is not None:
        store.fail(record.fingerprint, error, elapsed, metrics=document)
        return False
    store.complete(record.fingerprint, payload, elapsed, metrics=document)
    return True


def _drain(
    store: CampaignStore,
    worker: str,
    max_jobs: Optional[int] = None,
    metrics: bool = False,
) -> int:
    """Claim and execute jobs until the store runs dry (or ``max_jobs``
    is hit); returns the number executed."""
    executed = 0
    while max_jobs is None or executed < max_jobs:
        record = store.claim(worker)
        if record is None:
            break
        execute_job(store, record, metrics=metrics)
        executed += 1
    return executed


def _worker_main(
    store_path: str, worker_index: int, obs_dir: Optional[str] = None
) -> None:
    # Job-level parallelism replaces battery-level parallelism (see
    # module docstring).
    os.environ["REPRO_ENGINE_PARALLEL"] = "0"
    worker = f"{local_worker_id()}#{worker_index}"
    with CampaignStore.open(store_path) as store:
        if obs_dir is None:
            _drain(store, worker)
            return
        # Tracing run: a worker-lifetime recorder absorbs every per-job
        # recorder's events, then lands on disk as one fragment per
        # worker — the parent merges fragments into one timeline with
        # a lane per pid.
        with _obs_recording(label=f"worker:{worker}", trace=True) as rec:
            with rec.span("campaign/worker"):
                _drain(store, worker, metrics=True)
        write_trace_fragment(
            os.path.join(obs_dir, f"worker-{worker_index}.json"),
            worker,
            os.getpid(),
            rec.trace_events,
        )


def run_campaign(
    store_path: str,
    workers: Optional[int] = None,
    max_jobs: Optional[int] = None,
    reclaim: bool = True,
    metrics: bool = False,
    trace_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Execute the open jobs of a campaign store; returns a summary.

    ``workers=None`` consults ``REPRO_ENGINE_PARALLEL``; ``0``/``1``
    runs serially in-process.  ``max_jobs`` bounds how many jobs this
    invocation executes (serial only — used for drip-feeding and the
    resumability tests).  ``reclaim`` recovers claims of dead local
    workers before starting.  ``metrics`` stores a ``repro-metrics``
    document per job row; ``trace_dir`` (implies ``metrics``) makes
    every worker write a Chrome trace fragment file into that
    directory, named ``worker-<index>.json`` (serial runs write
    ``worker-0.json``).
    """
    if trace_dir is not None:
        metrics = True
        os.makedirs(trace_dir, exist_ok=True)
    with CampaignStore.open(store_path) as store:
        reclaimed = store.reclaim_dead() if reclaim else 0
        before = store.counts()
        if workers is None:
            workers = default_parallelism()
        pending = before["pending"]
        use_pool = (
            workers > 1
            and pending > 1
            and max_jobs is None
            and "fork" in multiprocessing.get_all_start_methods()
        )
        if use_pool:
            context = multiprocessing.get_context("fork")
            procs = [
                context.Process(
                    target=_worker_main,
                    args=(store_path, index, trace_dir),
                )
                for index in range(min(workers, pending))
            ]
            for proc in procs:
                proc.start()
            for proc in procs:
                proc.join()
        elif trace_dir is not None:
            # Serial tracing mirrors the pool's per-worker fragment
            # contract so downstream merging is shape-independent.
            worker = local_worker_id()
            with _obs_recording(label=f"worker:{worker}", trace=True) as rec:
                with rec.span("campaign/worker"):
                    _drain(store, worker, max_jobs=max_jobs, metrics=True)
            write_trace_fragment(
                os.path.join(trace_dir, "worker-0.json"),
                worker,
                os.getpid(),
                rec.trace_events,
            )
        else:
            _drain(
                store, local_worker_id(), max_jobs=max_jobs, metrics=metrics
            )
        after = store.counts()
        return {
            "reclaimed": reclaimed,
            "executed": before["pending"] - after["pending"],
            "done": after["done"],
            "failed": after["failed"],
            "pending": after["pending"],
            "claimed": after["claimed"],
        }
