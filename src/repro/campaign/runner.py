"""The campaign worker pool: pull open jobs, execute, record.

Workers are plain processes around one loop — claim a job from the
store, run it through the experiment registry (whose batteries execute
on :func:`repro.engine.batch.run_play_batch`), persist the result
payload and timing.  The store's atomic claim is the only coordination:
workers never talk to each other, any number of them (including workers
of *other* ``campaign run`` invocations on the same store) can run
concurrently, and killing any of them loses at most the claims they
held — which :meth:`~repro.campaign.store.CampaignStore.reclaim_dead`
recovers on the next run.

``workers=None`` honours ``REPRO_ENGINE_PARALLEL`` (the engine-wide
parallelism knob).  With more than one worker, job-level parallelism
replaces battery-level parallelism — workers pin
``REPRO_ENGINE_PARALLEL=0`` in their own environment so every job runs
its battery serially instead of oversubscribing the machine with nested
pools.
"""

from __future__ import annotations

import multiprocessing
import os
import time

from typing import Any, Dict, Optional

from repro.analysis.experiments import run_experiment
from repro.campaign.report import result_payload
from repro.campaign.store import CampaignStore, JobRecord, local_worker_id
from repro.engine.batch import default_parallelism


def execute_job(store: CampaignStore, record: JobRecord) -> bool:
    """Run one claimed job to ``done``/``failed``; True when it
    completed with a result payload."""
    started = time.perf_counter()
    try:
        result = run_experiment(record.experiment, **record.params)
        payload = result_payload(result)
    except Exception as exc:  # job errors are data, not crashes
        store.fail(
            record.fingerprint,
            f"{type(exc).__name__}: {exc}",
            time.perf_counter() - started,
        )
        return False
    store.complete(record.fingerprint, payload, time.perf_counter() - started)
    return True


def _drain(
    store: CampaignStore,
    worker: str,
    max_jobs: Optional[int] = None,
) -> int:
    """Claim and execute jobs until the store runs dry (or ``max_jobs``
    is hit); returns the number executed."""
    executed = 0
    while max_jobs is None or executed < max_jobs:
        record = store.claim(worker)
        if record is None:
            break
        execute_job(store, record)
        executed += 1
    return executed


def _worker_main(store_path: str, worker_index: int) -> None:
    # Job-level parallelism replaces battery-level parallelism (see
    # module docstring).
    os.environ["REPRO_ENGINE_PARALLEL"] = "0"
    with CampaignStore.open(store_path) as store:
        _drain(store, f"{local_worker_id()}#{worker_index}")


def run_campaign(
    store_path: str,
    workers: Optional[int] = None,
    max_jobs: Optional[int] = None,
    reclaim: bool = True,
) -> Dict[str, Any]:
    """Execute the open jobs of a campaign store; returns a summary.

    ``workers=None`` consults ``REPRO_ENGINE_PARALLEL``; ``0``/``1``
    runs serially in-process.  ``max_jobs`` bounds how many jobs this
    invocation executes (serial only — used for drip-feeding and the
    resumability tests).  ``reclaim`` recovers claims of dead local
    workers before starting.
    """
    with CampaignStore.open(store_path) as store:
        reclaimed = store.reclaim_dead() if reclaim else 0
        before = store.counts()
        if workers is None:
            workers = default_parallelism()
        pending = before["pending"]
        use_pool = (
            workers > 1
            and pending > 1
            and max_jobs is None
            and "fork" in multiprocessing.get_all_start_methods()
        )
        if use_pool:
            context = multiprocessing.get_context("fork")
            procs = [
                context.Process(target=_worker_main, args=(store_path, index))
                for index in range(min(workers, pending))
            ]
            for proc in procs:
                proc.start()
            for proc in procs:
                proc.join()
        else:
            _drain(store, local_worker_id(), max_jobs=max_jobs)
        after = store.counts()
        return {
            "reclaimed": reclaimed,
            "executed": before["pending"] - after["pending"],
            "done": after["done"],
            "failed": after["failed"],
            "pending": after["pending"],
            "claimed": after["claimed"],
        }
