"""The SQLite-backed campaign run store.

One file holds one campaign: its spec, and one row per
content-addressed job.  The job lifecycle is::

    pending ──claim──▶ claimed ──complete──▶ done
                          │
                          └──────fail──────▶ failed

and every transition is a single transaction, so the store survives
``kill -9`` at any point: a job is never half-recorded, and on reopen
the campaign resumes exactly where it stopped.  ``claim`` uses
``BEGIN IMMEDIATE`` (plus WAL journaling and a busy timeout), so any
number of worker processes can pull from the same store concurrently —
each open job is handed to exactly one worker.

Claims left behind by dead workers are recovered by
:meth:`CampaignStore.reclaim_dead` (workers are identified as
``host:pid``; a claim whose pid no longer exists on this host goes back
to pending) or explicitly by :meth:`CampaignStore.reset`.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import time

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.campaign.spec import CampaignSpec, Job, canonical_json
from repro.util.errors import UsageError

#: Bump on any incompatible schema or fingerprint-contract change.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    fingerprint TEXT PRIMARY KEY,
    experiment  TEXT NOT NULL,
    params      TEXT NOT NULL,
    status      TEXT NOT NULL DEFAULT 'pending'
                CHECK (status IN ('pending', 'claimed', 'done', 'failed')),
    worker      TEXT,
    attempts    INTEGER NOT NULL DEFAULT 0,
    claimed_at  REAL,
    finished_at REAL,
    elapsed     REAL,
    error       TEXT,
    result      TEXT
);
CREATE INDEX IF NOT EXISTS jobs_status ON jobs(status, experiment, fingerprint);
"""

#: Columns added after SCHEMA_VERSION 1 shipped, applied as guarded
#: ALTER TABLE migrations on open.  Nullable and additive only — old
#: readers ignore them, so no schema-version bump is needed.  ``metrics``
#: holds the job's ``repro-metrics`` v1 document (JSON) and is cleared
#: whenever the job returns to ``pending``: a reclaimed-and-re-executed
#: job therefore contributes exactly one document to merged exports.
_EXTRA_COLUMNS = (("metrics", "TEXT"),)

#: Job lifecycle states.
STATUSES = ("pending", "claimed", "done", "failed")


def local_worker_id() -> str:
    """This process's worker identity (``host:pid``)."""
    return f"{socket.gethostname()}:{os.getpid()}"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


@dataclass(frozen=True)
class JobRecord:
    """One job row, params and result decoded."""

    fingerprint: str
    experiment: str
    params: Dict[str, Any]
    status: str
    worker: Optional[str]
    attempts: int
    elapsed: Optional[float]
    error: Optional[str]
    result: Optional[Dict[str, Any]]
    #: The job's ``repro-metrics`` document (metrics-enabled runs only).
    metrics: Optional[Dict[str, Any]] = None

    @staticmethod
    def from_row(row: sqlite3.Row) -> "JobRecord":
        return JobRecord(
            fingerprint=row["fingerprint"],
            experiment=row["experiment"],
            params=json.loads(row["params"]),
            status=row["status"],
            worker=row["worker"],
            attempts=row["attempts"],
            elapsed=row["elapsed"],
            error=row["error"],
            result=json.loads(row["result"]) if row["result"] else None,
            metrics=json.loads(row["metrics"]) if row["metrics"] else None,
        )


class CampaignStore:
    """One campaign's persistent job store (see module docstring)."""

    def __init__(self, path: str, create: bool = False):
        if not create and not os.path.exists(path):
            raise UsageError(
                f"no campaign store at {path!r}; create one with "
                "'python -m repro campaign init'"
            )
        self.path = path
        self._conn = sqlite3.connect(path, timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            if create:
                with self._conn:
                    self._conn.executescript(_SCHEMA)
                    self._conn.execute(
                        "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                        ("schema_version", str(SCHEMA_VERSION)),
                    )
            version = self.get_meta("schema_version")
            self._migrate_columns()
        except sqlite3.DatabaseError as exc:
            # not SQLite at all, or SQLite without our schema
            self._conn.close()
            raise UsageError(f"{path!r} is not a campaign store: {exc}") from None
        if version != str(SCHEMA_VERSION):
            self._conn.close()
            raise UsageError(
                f"{path!r} is not a campaign store (schema version "
                f"{version!r}, expected {SCHEMA_VERSION!r})"
            )

    def _migrate_columns(self) -> None:
        """Apply the additive column migrations (no-op when current)."""
        present = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(jobs)")
        }
        if not present:  # not our schema; the version check reports it
            return
        with self._conn:
            for name, column_type in _EXTRA_COLUMNS:
                if name not in present:
                    self._conn.execute(
                        f"ALTER TABLE jobs ADD COLUMN {name} {column_type}"
                    )

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, path: str, spec: CampaignSpec) -> "CampaignStore":
        """Create (or re-open) the store at ``path`` and record the
        spec.  Init is additive and idempotent: existing jobs are kept,
        and the stored spec becomes the *union* of every init's
        experiments and axis values (the cumulative description of what
        the store sweeps — the jobs table remains the ground truth)."""
        store = cls(path, create=True)
        existing = store.spec()
        store.set_meta(
            "spec", (spec if existing is None else existing.merged(spec)).to_json()
        )
        return store

    @classmethod
    def open(cls, path: str) -> "CampaignStore":
        return cls(path, create=False)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- meta ---------------------------------------------------------------

    def set_meta(self, key: str, value: str) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (key, value),
            )

    def get_meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row["value"]

    def spec(self) -> Optional[CampaignSpec]:
        text = self.get_meta("spec")
        return None if text is None else CampaignSpec.from_json(text)

    # -- job intake ---------------------------------------------------------

    def add_jobs(self, jobs: Iterable[Job]) -> int:
        """Insert jobs; existing fingerprints are left untouched
        (whatever their status).  Returns the number actually added."""
        rows = [
            (job.fingerprint, job.experiment_id, canonical_json(dict(job.params)))
            for job in jobs
        ]
        with self._conn:
            before = self._conn.total_changes
            self._conn.executemany(
                "INSERT OR IGNORE INTO jobs (fingerprint, experiment, params) "
                "VALUES (?, ?, ?)",
                rows,
            )
            return self._conn.total_changes - before

    # -- the worker protocol ------------------------------------------------

    def claim(self, worker: Optional[str] = None) -> Optional[JobRecord]:
        """Atomically claim one pending job for ``worker``; ``None``
        when no job is pending.

        Deterministic order (experiment, fingerprint) so serial runs and
        exports are reproducible.
        """
        worker = worker or local_worker_id()
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE status = 'pending' "
                "ORDER BY experiment, fingerprint LIMIT 1"
            ).fetchone()
            if row is None:
                self._conn.execute("COMMIT")
                return None
            self._conn.execute(
                "UPDATE jobs SET status = 'claimed', worker = ?, "
                "claimed_at = ?, attempts = attempts + 1, error = NULL "
                "WHERE fingerprint = ?",
                (worker, time.time(), row["fingerprint"]),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            if self._conn.in_transaction:  # BEGIN itself may have failed
                self._conn.execute("ROLLBACK")
            raise
        return self.job(row["fingerprint"])

    def complete(
        self,
        fingerprint: str,
        result: Dict[str, Any],
        elapsed: float,
        metrics: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a finished job (``claimed`` → ``done``) with its
        result payload, wall-clock timing, and (metrics-enabled runs)
        its ``repro-metrics`` document.  The metrics column is always
        overwritten — a re-executed job replaces, never accumulates."""
        with self._conn:
            self._conn.execute(
                "UPDATE jobs SET status = 'done', finished_at = ?, "
                "elapsed = ?, result = ?, error = NULL, metrics = ? "
                "WHERE fingerprint = ?",
                (
                    time.time(),
                    elapsed,
                    canonical_json(result),
                    canonical_json(metrics) if metrics is not None else None,
                    fingerprint,
                ),
            )

    def fail(
        self,
        fingerprint: str,
        error: str,
        elapsed: float,
        metrics: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a failed job (``claimed`` → ``failed``) with its
        error log."""
        with self._conn:
            self._conn.execute(
                "UPDATE jobs SET status = 'failed', finished_at = ?, "
                "elapsed = ?, error = ?, result = NULL, metrics = ? "
                "WHERE fingerprint = ?",
                (
                    time.time(),
                    elapsed,
                    error,
                    canonical_json(metrics) if metrics is not None else None,
                    fingerprint,
                ),
            )

    # -- recovery -----------------------------------------------------------

    def reset(
        self,
        statuses: Sequence[str] = ("failed",),
        experiment: Optional[str] = None,
    ) -> int:
        """Send jobs in the given states back to ``pending`` (optionally
        one experiment's subset).  Returns the number reset."""
        bad = [s for s in statuses if s not in ("claimed", "done", "failed")]
        if bad:
            raise UsageError(f"cannot reset status(es) {bad!r}")
        if not statuses:
            return 0
        placeholders = ",".join("?" for _ in statuses)
        query = (
            "UPDATE jobs SET status = 'pending', worker = NULL, "
            "claimed_at = NULL, finished_at = NULL, elapsed = NULL, "
            "error = NULL, result = NULL, metrics = NULL "
            f"WHERE status IN ({placeholders})"
        )
        arguments: List[Any] = list(statuses)
        if experiment is not None:
            query += " AND experiment = ?"
            arguments.append(experiment)
        with self._conn:
            return self._conn.execute(query, arguments).rowcount

    def reclaim_dead(self) -> int:
        """Return claims of dead local workers to ``pending``.

        A worker id is ``host:pid`` or ``host:pid#slot`` (pool
        workers); only claims from *this* host are checked (a pid on
        another machine cannot be probed), and only pids that no longer
        exist are reclaimed.  Returns the number reclaimed.
        """
        host = socket.gethostname()
        reclaimed = 0
        rows = self._conn.execute(
            "SELECT fingerprint, worker FROM jobs WHERE status = 'claimed'"
        ).fetchall()
        with self._conn:
            for row in rows:
                worker = row["worker"] or ""
                worker_host, _, pid_text = worker.rpartition(":")
                pid_text = pid_text.split("#", 1)[0]
                if worker_host != host or not pid_text.isdigit():
                    continue
                if _pid_alive(int(pid_text)):
                    continue
                # Guard on the observed worker too: between our snapshot
                # and this write another invocation may have reclaimed
                # the job and a live worker re-claimed it.
                # metrics = NULL is defensive (claimed jobs have none:
                # the document is only ever written on complete/fail)
                # but keeps the invariant airtight: a job going back to
                # pending never carries a stale metrics document that a
                # merged export could double-count after re-execution.
                cursor = self._conn.execute(
                    "UPDATE jobs SET status = 'pending', worker = NULL, "
                    "claimed_at = NULL, metrics = NULL "
                    "WHERE fingerprint = ? "
                    "AND status = 'claimed' AND worker = ?",
                    (row["fingerprint"], row["worker"]),
                )
                reclaimed += cursor.rowcount
        return reclaimed

    # -- queries ------------------------------------------------------------

    def job(self, fingerprint: str) -> Optional[JobRecord]:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return None if row is None else JobRecord.from_row(row)

    def jobs(self, status: Optional[str] = None) -> List[JobRecord]:
        if status is None:
            rows = self._conn.execute(
                "SELECT * FROM jobs ORDER BY experiment, fingerprint"
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE status = ? "
                "ORDER BY experiment, fingerprint",
                (status,),
            ).fetchall()
        return [JobRecord.from_row(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Job counts by status (every status present, zeros included)."""
        counts = {status: 0 for status in STATUSES}
        for row in self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
        ):
            counts[row["status"]] = row["n"]
        return counts

    def counts_by_experiment(self) -> Dict[str, Dict[str, int]]:
        result: Dict[str, Dict[str, int]] = {}
        for row in self._conn.execute(
            "SELECT experiment, status, COUNT(*) AS n FROM jobs "
            "GROUP BY experiment, status ORDER BY experiment"
        ):
            result.setdefault(
                row["experiment"], {status: 0 for status in STATUSES}
            )[row["status"]] = row["n"]
        return result
