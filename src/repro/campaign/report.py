"""Aggregation and export: regenerate the paper's artifacts *from the
store*, without re-running anything.

Two consumers:

* ``campaign export`` — a deterministic JSON document (sorted keys,
  jobs ordered by (experiment, fingerprint), no timings or worker ids),
  so an interrupted-and-resumed campaign exports byte-identically to an
  uninterrupted one;
* ``campaign status``/``export --render`` — the existing ASCII
  renderers (:func:`repro.analysis.report.render_claims`,
  :func:`~repro.analysis.report.render_grid`) applied to result
  payloads reconstructed from the store, regenerating the Figure 1
  panels and theorem claim tables offline.
"""

from __future__ import annotations

import json
import math
import time

from typing import Any, Callable, Dict, List, Optional

from repro.analysis.classification import ClassifiedGrid, GridPoint
from repro.analysis.experiments import ExperimentResult
from repro.analysis.report import render_claims, render_grid
from repro.campaign.store import STATUSES, CampaignStore, JobRecord
from repro.core.properties import Certainty
from repro.obs.metrics import merge_metrics


# ---------------------------------------------------------------------------
# Result payloads (what the runner persists per job)
# ---------------------------------------------------------------------------


def grid_to_payload(grid: ClassifiedGrid) -> Dict[str, Any]:
    """A JSON-safe encoding of one Figure-1 panel."""
    return {
        "n": grid.n,
        "safety_name": grid.safety_name,
        "semantics": grid.semantics,
        "points": [
            {
                "l": point.l,
                "k": point.k,
                "excludes": point.excludes,
                "certainty": point.certainty.name,
                "evidence": point.evidence,
                "undetermined": point.undetermined,
            }
            for point in grid.points
        ],
    }


def grid_from_payload(payload: Dict[str, Any]) -> ClassifiedGrid:
    """Rebuild a :class:`ClassifiedGrid` from its stored encoding."""
    grid = ClassifiedGrid(
        n=payload["n"],
        safety_name=payload["safety_name"],
        semantics=payload["semantics"],
    )
    for point in payload["points"]:
        grid.points.append(
            GridPoint(
                l=point["l"],
                k=point["k"],
                excludes=point["excludes"],
                certainty=Certainty[point["certainty"]],
                evidence=point["evidence"],
                undetermined=point["undetermined"],
            )
        )
    return grid


def _json_value(value: Any) -> bool:
    """Whether an artifact round-trips through JSON as-is.

    Scalars always do; lists/dicts are probed with an actual encode so
    structured artifacts (e.g. the fuzzer's shrunk replay traces, and
    the liveness backend's verdict documents with their embedded lasso
    certificates) are persisted while object-valued artifacts (grids,
    witnesses, certificates) stay excluded.
    """
    if isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, (list, dict)):
        try:
            # repro-lint: disable=DT003 -- serializability probe, output discarded; sort_keys=True would reject mixed-type keys the real encoder accepts
            json.dumps(value)
        except (TypeError, ValueError):
            return False
        return True
    return False


def result_payload(result: ExperimentResult) -> Dict[str, Any]:
    """The JSON-safe result of one job: claim verdicts, grid cells, and
    JSON-value artifacts (history counts, fuzz coverage, shrunk
    counterexample traces)."""
    payload: Dict[str, Any] = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "all_ok": result.all_ok,
        "claims": [
            {
                "name": claim.name,
                "expected": claim.expected,
                "measured": claim.measured,
                "ok": claim.ok,
            }
            for claim in result.claims
        ],
    }
    grid = result.artifacts.get("grid")
    if isinstance(grid, ClassifiedGrid):
        payload["grid"] = grid_to_payload(grid)
    artifacts = {
        key: value
        for key, value in result.artifacts.items()
        if _json_value(value)
    }
    if artifacts:
        payload["artifacts"] = artifacts
    return payload


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------


def _job_document(record: JobRecord) -> Dict[str, Any]:
    document: Dict[str, Any] = {
        "fingerprint": record.fingerprint,
        "experiment": record.experiment,
        "params": record.params,
        "status": record.status,
    }
    if record.result is not None:
        document["result"] = record.result
    if record.error is not None:
        document["error"] = record.error
    return document


def export_campaign(store: CampaignStore) -> str:
    """The canonical JSON export of a campaign store.

    Deterministic by construction: only content-addressed fields are
    included (no timings, timestamps, workers, or attempt counts), keys
    are sorted, and jobs are ordered by (experiment, fingerprint).
    """
    records = store.jobs()
    counts = store.counts()
    spec = store.get_meta("spec")
    document = {
        "schema_version": int(store.get_meta("schema_version") or 0),
        "campaign": json.loads(spec) if spec else None,
        "summary": {
            "jobs": len(records),
            **counts,
            "all_ok": all(
                record.result is not None and record.result.get("all_ok", False)
                for record in records
            )
            and bool(records),
        },
        "jobs": [_job_document(record) for record in records],
    }
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


# ---------------------------------------------------------------------------
# ASCII reports
# ---------------------------------------------------------------------------


def _params_label(params: Dict[str, Any]) -> str:
    if not params:
        return "defaults"
    return ", ".join(f"{key}={params[key]}" for key in sorted(params))


def render_status(
    store: CampaignStore, done_records: Optional[List[JobRecord]] = None
) -> str:
    """The ``campaign status`` table: per-experiment job counts by
    lifecycle state.

    ``done_records`` lets callers that already materialised the done
    jobs (payload decoding is the expensive part on large stores) share
    the pass.
    """
    by_experiment = store.counts_by_experiment()
    counts = store.counts()
    width = max([len(e) for e in by_experiment] + [len("experiment")])
    lines = [
        f"{'experiment':<{width}}  "
        + "".join(f"{status:>9}" for status in STATUSES)
    ]
    lines.append("=" * len(lines[0]))
    for experiment, statuses in sorted(by_experiment.items()):
        lines.append(
            f"{experiment:<{width}}  "
            + "".join(f"{statuses[status]:>9}" for status in STATUSES)
        )
    lines.append(
        f"{'total':<{width}}  "
        + "".join(f"{counts[status]:>9}" for status in STATUSES)
    )
    total = sum(counts.values())
    done = counts["done"]
    lines.append(f"{done}/{total} jobs done" + (": all done" if done == total and total else ""))
    if done_records is None:
        done_records = store.jobs("done")
    mismatches = [
        record.fingerprint[:12]
        for record in done_records
        if record.result is not None and not record.result.get("all_ok", True)
    ]
    if mismatches:
        lines.append(f"claim mismatches in jobs: {', '.join(mismatches)}")
    failures = store.jobs("failed")
    for record in failures:
        lines.append(
            f"failed {record.fingerprint[:12]} [{record.experiment} "
            f"{_params_label(record.params)}]: {record.error}"
        )
    return "\n".join(lines)


def render_results(store: CampaignStore) -> str:
    """Regenerate claim tables and Figure-1 panels from stored results."""
    sections: List[str] = []
    for record in store.jobs("done"):
        payload = record.result or {}
        title = (
            f"[{record.experiment} | {_params_label(record.params)}] "
            f"{payload.get('title', '')}"
        )
        rows = [
            (claim["name"], claim["expected"], claim["measured"], claim["ok"])
            for claim in payload.get("claims", [])
        ]
        section = render_claims(title, rows)
        if "grid" in payload:
            section += "\n\n" + render_grid(grid_from_payload(payload["grid"]))
        sections.append(section)
    if not sections:
        return "(no completed jobs in store)"
    return "\n\n".join(sections)


def merged_metrics(store: CampaignStore) -> Dict[str, Any]:
    """The campaign's merged ``repro-metrics`` document.

    Sources exactly one document per finished job **row** (written on
    complete/fail, cleared whenever a job returns to ``pending``), so
    the merge is reclaim-safe by construction: a job a dead worker lost
    and another re-executed contributes its latest document once,
    never the half-finished one.  Order-independent
    (:func:`~repro.obs.metrics.merge_metrics` is commutative), so an
    interrupted-and-resumed campaign merges identically to an
    uninterrupted one.
    """
    documents = [
        record.metrics
        for record in store.jobs()
        if record.metrics is not None
    ]
    spec = store.get_meta("spec")
    label = None
    if spec:
        label = f"campaign:{json.loads(spec).get('name', '?')}"
    return merge_metrics(documents, label=label)


# ---------------------------------------------------------------------------
# Live progress (campaign status --watch)
# ---------------------------------------------------------------------------


def render_watch_line(
    counts: Dict[str, int], rate: Optional[float]
) -> str:
    """One ``--watch`` progress line: lifecycle counts, throughput of
    this watch session, and a naive remaining-work ETA.

    The ETA field is always present so consecutive lines stay
    column-comparable; without a usable rate (no job finished during
    this session yet, a zero/negative/non-finite measurement) it reads
    ``eta --`` instead of dividing by it."""
    total = sum(counts.values())
    remaining = counts["pending"] + counts["claimed"]
    parts = [
        f"{counts['done']}/{total} done",
        f"{counts['claimed']} claimed",
        f"{counts['pending']} pending",
        f"{counts['failed']} failed",
    ]
    if rate is not None and rate > 0 and math.isfinite(rate):
        parts.append(f"{rate:.2f} jobs/s")
        parts.append(f"eta {remaining / rate:.0f}s")
    else:
        parts.append("eta --")
    return "  ".join(parts)


def watch_status(
    store_path: str,
    interval: float = 2.0,
    emit: Callable[[str], None] = print,
    max_polls: Optional[int] = None,
) -> Dict[str, int]:
    """Poll a store until no open jobs remain, emitting one progress
    line per change; returns the final counts.

    Read-only: safe to run alongside any number of workers (including
    ones from other hosts sharing the store file).  The job rate is
    measured over this watch session (done-delta / elapsed), so the ETA
    reflects current throughput, not the campaign's lifetime average.
    ``max_polls`` bounds the loop for tests.
    """
    started = time.monotonic()
    first_done: Optional[int] = None
    last_line = ""
    polls = 0
    while True:
        with CampaignStore.open(store_path) as store:
            counts = store.counts()
        if first_done is None:
            first_done = counts["done"]
        elapsed = time.monotonic() - started
        # The done count can *shrink* while we watch (a reset/reclaim
        # returning jobs to pending); a negative or zero delta means no
        # measurable throughput this session, never a negative ETA.
        delta = counts["done"] - first_done
        rate = delta / elapsed if delta > 0 and elapsed > 0 else None
        line = render_watch_line(counts, rate)
        if line != last_line:
            emit(line)
            last_line = line
        polls += 1
        if counts["pending"] + counts["claimed"] == 0:
            return counts
        if max_polls is not None and polls >= max_polls:
            return counts
        time.sleep(interval)


def store_all_ok(
    store: CampaignStore, done_records: Optional[List[JobRecord]] = None
) -> bool:
    """Whether every finished job has every claim OK (the CLI's exit-0
    condition; pair with pending/claimed counts for completeness)."""
    counts = store.counts()
    if counts["failed"]:
        return False
    if done_records is None:
        done_records = store.jobs("done")
    return all(
        record.result is not None and record.result.get("all_ok", False)
        for record in done_records
    )
