"""Named implementation mutants: seeded bugs the oracles must catch.

Mutation testing for the verification stack itself.  Each
:class:`Mutant` pairs a *hunting scenario* — an *unregistered*
:class:`~repro.scenarios.scenario.Scenario` whose implementation
factory builds a deliberately broken subclass of a zoo algorithm —
with a *baseline scenario* that runs the pristine implementation under
the exact same plan and property.  A backend **kills** a mutant when
:func:`~repro.scenarios.verify.verify` returns a violation; the
baseline must hold everywhere (a baseline violation is a *false kill*
and fails the whole matrix, because it means the oracle flags correct
code).

The mutants are factory wrappers — subclasses overriding exactly one
method — never patches to the shipped sources, so the zoo under test
is byte-identical to the zoo in production.  Every mutant models a
classic concurrency-implementation slip:

=========================  =================================================
``agp-dropped-cas``        commit publishes with a blind write, no validation
``agp-swallowed-abort``    a failed commit CAS still reports ``COMMITTED``
``global-lock-reordered-release``  the lock is released before the publish
``norec-skipped-validation``       reads skip the seqlock clock re-check
``i12-off-by-one-quorum``  the timestamp-rule threshold is off by one
``mcs-barging-acquire``    acquire returns after enqueueing, skipping the spin
``bakery-off-by-one-ticket``       the bakery ticket is ``max`` not ``max+1``
``cas-spinning-loser``     a losing proposer retries the CAS forever
=========================  =================================================

The first seven are safety bugs (opacity, the Section 5.3 property
``S``, mutual exclusion, respectively) and must be killed by the
exhaustive backend; the last is a pure *liveness* bug — agreement and
validity still hold because the loser simply never responds — and only
the lasso-certified liveness backend can kill it.  That asymmetry is
the point: the kill matrix (:mod:`repro.mutate.matrix`) records which
backend catches which bug class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.algorithms.consensus import CasConsensus
from repro.algorithms.consensus.cas_consensus import UNDECIDED
from repro.algorithms.locks import GRANTED, BakeryLock, McsLock
from repro.algorithms.tm import (
    AgpTransactionalMemory,
    GlobalLockTransactionalMemory,
    I12TransactionalMemory,
    NorecTransactionalMemory,
)
from repro.core.liveness import WaitFreedom
from repro.objects.consensus import AgreementValidity
from repro.objects.counterexample_s import counterexample_safety
from repro.objects.mutex import MutualExclusionChecker
from repro.objects.opacity import OpacityChecker
from repro.objects.tm import ABORTED, COMMITTED
from repro.scenarios.scenario import Scenario
from repro.sim.kernel import Algorithm, Op
from repro.util.errors import SimulationError, unknown_choice

__all__ = [
    "Mutant",
    "MUTANTS",
    "get_mutant",
    "iter_mutants",
    "mutant_ids",
]


# ---------------------------------------------------------------------------
# The broken implementations (one overridden method each)
# ---------------------------------------------------------------------------


class _AgpDroppedCas(AgpTransactionalMemory):
    """AGP whose commit forgot the CAS: a blind, unvalidated write."""

    name = "agp-tm!dropped-cas"

    def _try_commit(self, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        memory["pc"] = "tryC-blind-write"
        # The bug: no compare against the snapshot version, so a stale
        # transaction resurrects values a concurrent commit replaced.
        yield Op("C", "write", ((memory["version"] + 1, memory["values"]),))
        memory["in_tx"] = False
        memory["version"] = None
        return COMMITTED


class _AgpSwallowedAbort(AgpTransactionalMemory):
    """AGP that runs the CAS but ignores its answer."""

    name = "agp-tm!swallowed-abort"

    def _try_commit(self, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        memory["pc"] = "tryC-cas"
        expected = (memory["version"], memory["oldval"])
        replacement = (memory["version"] + 1, memory["values"])
        yield Op("C", "compare_and_swap", (expected, replacement))
        memory["in_tx"] = False
        memory["version"] = None
        # The bug: the swap outcome is dropped on the floor, so a
        # transaction whose validation failed still reports success.
        return COMMITTED


class _GlobalLockReorderedRelease(GlobalLockTransactionalMemory):
    """Global-lock TM releasing the lock *before* publishing."""

    name = "global-lock-tm!reordered-release"

    def _try_commit(self, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        # The bug: the unlock and the publish swapped places, opening a
        # window where a new transaction loads the store, the delayed
        # publish then clobbers it with stale values.
        memory["pc"] = "unlock-early"
        yield Op("lock", "clear")
        memory["pc"] = "publish-late"
        yield Op("store", "write", (memory["values"],))
        memory["in_tx"] = False
        return COMMITTED


class _NorecSkippedValidation(NorecTransactionalMemory):
    """NOrec whose read skips the seqlock clock re-check."""

    name = "norec-tm!skipped-validation"

    def _read(self, variable: Any, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        for written, value in memory["wset"]:
            if written == variable:
                return value
        memory["pc"] = "read-cell-unvalidated"
        # The bug: the cell is returned without re-reading the clock, so
        # a reader overlapping a per-cell publish sees a torn snapshot.
        value = yield Op("store", "read", (self._index(variable),))
        return value


class _I12OffByOneQuorum(I12TransactionalMemory):
    """I(1,2) with the timestamp-rule threshold off by one."""

    name = "i12-tm!off-by-one-quorum"

    def _try_commit(self, memory: Dict[str, Any]) -> Algorithm:
        self._require_tx(memory)
        memory["pc"] = "tryC-scan"
        snapshot = yield Op("R", "scan")
        for component in snapshot:
            if component >= memory["timestamp"]:
                memory["count"] = memory["count"] + 1
        # The bug: ``>= 4`` instead of the paper's ``>= 3``, so a group
        # of exactly three concurrent transactions slips past the abort
        # rule of the Section 5.3 property S.
        if memory["count"] >= 4:
            memory["count"] = 0
            memory["in_tx"] = False
            return ABORTED
        memory["count"] = 0
        memory["pc"] = "tryC-cas"
        expected = (memory["version"], memory["oldval"])
        replacement = (memory["version"] + 1, memory["values"])
        swapped = yield Op("C", "compare_and_swap", (expected, replacement))
        memory["version"] = None
        memory["in_tx"] = False
        return COMMITTED if swapped else ABORTED


class _McsBargingAcquire(McsLock):
    """MCS lock granting right after the enqueue, never reaching the head."""

    name = "mcs-lock!barging-acquire"

    @staticmethod
    def _acquire(pid: int, memory: Dict[str, Any]) -> Algorithm:
        if memory.get("holding"):
            raise SimulationError(f"p{pid} acquires while holding the lock")
        memory["pc"] = "enqueue"
        while True:
            queue = yield Op("queue", "read")
            enrolled = yield Op(
                "queue", "compare_and_swap", (queue, queue + (pid,))
            )
            if enrolled:
                break
        # The bug: the spin-until-head loop is gone — enqueueing alone
        # "grants" the lock, so two enqueuers hold it together.
        memory["holding"] = True
        return GRANTED


class _BakeryOffByOneTicket(BakeryLock):
    """Bakery lock taking ticket ``max`` instead of ``max + 1``."""

    name = "bakery-lock!off-by-one-ticket"

    def _acquire(self, pid: int, memory: Dict[str, Any]) -> Algorithm:
        if memory.get("holding"):
            raise SimulationError(f"p{pid} acquires while holding the lock")
        memory["pc"] = "choosing"
        yield Op("choosing", "write", (pid, True))
        memory["max"] = 0
        for j in range(self.n_processes):
            memory["pc"] = ("scan-number", j)
            ticket = yield Op("number", "read", (j,))
            if ticket > memory["max"]:
                memory["max"] = ticket
        # The bug: dropping the ``+ 1`` hands out ticket 0, which every
        # wait loop treats as "not competing" — the holder is invisible.
        memory["ticket"] = memory["max"]
        memory["pc"] = "take-ticket"
        yield Op("number", "write", (pid, memory["ticket"]))
        memory["pc"] = "done-choosing"
        yield Op("choosing", "write", (pid, False))
        for j in range(self.n_processes):
            if j == pid:
                continue
            while True:
                memory["pc"] = ("wait-choosing", j)
                busy = yield Op("choosing", "read", (j,))
                if not busy:
                    break
            while True:
                memory["pc"] = ("wait-ticket", j)
                ticket = yield Op("number", "read", (j,))
                if ticket == 0 or (ticket, j) > (memory["ticket"], pid):
                    break
        memory["holding"] = True
        return GRANTED


class _CasSpinningLoser(CasConsensus):
    """CAS consensus whose loser retries the CAS instead of reading."""

    name = "cas-consensus!spinning-loser"

    @staticmethod
    def _propose(proposal: Any, memory: Dict[str, Any]) -> Algorithm:
        memory["pc"] = "cas"
        while True:
            won = yield Op(
                "decision", "compare_and_swap", (UNDECIDED, proposal)
            )
            if won:
                return proposal
            # The bug: instead of reading the decided value, the loser
            # retries a CAS that can never succeed again.  Agreement and
            # validity survive — the loser simply never responds — so
            # only the liveness backend (wait-freedom) can see it.


# ---------------------------------------------------------------------------
# Descriptors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Mutant:
    """One named, seeded bug plus everything needed to hunt it.

    ``scenario_factory`` and ``baseline_factory`` build *unregistered*
    scenarios (ids ``mutant:<id>`` / ``mutant-baseline:<id>``) sharing
    one plan and property; only the implementation differs.
    ``backends`` are the verify backends the matrix evaluates, and
    ``expected_killers`` the subset that must return a violation for
    the oracle-sensitivity score to stay at 1.0.
    """

    mutant_id: str
    kind: str
    target: str
    description: str
    scenario_factory: Callable[[], Scenario]
    baseline_factory: Callable[[], Scenario]
    backends: Tuple[str, ...]
    expected_killers: Tuple[str, ...]

    def __post_init__(self) -> None:
        unknown = set(self.expected_killers) - set(self.backends)
        if unknown:
            raise ValueError(
                f"mutant {self.mutant_id}: expected killers {sorted(unknown)} "
                f"not in evaluated backends {self.backends}"
            )


def _scenario_pair(
    mutant_id: str,
    mutated_factory: Callable[[], Any],
    pristine_factory: Callable[[], Any],
    plan: Dict[int, List[Tuple[str, Tuple[Any, ...]]]],
    safety_factory: Callable[[], Any],
    expect_violation: bool = True,
    liveness_factory: Optional[Callable[[], Any]] = None,
    expect_liveness_violation: bool = False,
) -> Tuple[Callable[[], Scenario], Callable[[], Scenario]]:
    """The (hunting, baseline) scenario factories of one mutant."""

    def hunting() -> Scenario:
        return Scenario(
            scenario_id=f"mutant:{mutant_id}",
            factory=mutated_factory,
            plan=plan,
            safety_factory=safety_factory,
            tags=("mutant",),
            expect_violation=expect_violation,
            liveness_factory=liveness_factory,
            expect_liveness_violation=expect_liveness_violation,
        )

    def baseline() -> Scenario:
        return Scenario(
            scenario_id=f"mutant-baseline:{mutant_id}",
            factory=pristine_factory,
            plan=plan,
            safety_factory=safety_factory,
            tags=("mutant-baseline",),
            expect_violation=False,
            liveness_factory=liveness_factory,
            expect_liveness_violation=False,
        )

    return hunting, baseline


def _make_mutants() -> Tuple[Mutant, ...]:
    mutants: List[Mutant] = []

    # -- agp-dropped-cas ---------------------------------------------------
    # p1 commits x0=2; p0's stale blind write resurrects x0=0; p1's
    # second transaction — real-time after its first — then reads the
    # resurrected 0, which no serialization can explain.
    plan = {
        0: [("start", ()), ("write", (1, 1)), ("tryC", ())],
        1: [
            ("start", ()),
            ("write", (0, 2)),
            ("tryC", ()),
            ("start", ()),
            ("read", (0,)),
            ("tryC", ()),
        ],
    }
    hunting, baseline = _scenario_pair(
        "agp-dropped-cas",
        lambda: _AgpDroppedCas(2, variables=(0, 1)),
        lambda: AgpTransactionalMemory(2, variables=(0, 1)),
        plan,
        OpacityChecker,
    )
    mutants.append(
        Mutant(
            mutant_id="agp-dropped-cas",
            kind="dropped-cas",
            target="agp-tm",
            description="commit publishes with a blind write instead of the "
            "validating CAS; stale transactions resurrect overwritten values",
            scenario_factory=hunting,
            baseline_factory=baseline,
            backends=("exhaustive", "fuzz"),
            expected_killers=("exhaustive", "fuzz"),
        )
    )

    # -- agp-swallowed-abort -----------------------------------------------
    # Two read-modify-write increments from the same snapshot: the CAS
    # loser's abort is swallowed, committing a classic lost update.
    plan = {
        pid: [
            ("start", ()),
            ("read", (0,)),
            ("write", (0, pid + 1)),
            ("tryC", ()),
        ]
        for pid in range(2)
    }
    hunting, baseline = _scenario_pair(
        "agp-swallowed-abort",
        lambda: _AgpSwallowedAbort(2, variables=(0,)),
        lambda: AgpTransactionalMemory(2, variables=(0,)),
        plan,
        OpacityChecker,
    )
    mutants.append(
        Mutant(
            mutant_id="agp-swallowed-abort",
            kind="swallowed-abort",
            target="agp-tm",
            description="a failed commit CAS still reports COMMITTED, so "
            "both of two conflicting increments claim to have won",
            scenario_factory=hunting,
            baseline_factory=baseline,
            backends=("exhaustive", "fuzz"),
            expected_killers=("exhaustive", "fuzz"),
        )
    )

    # -- global-lock-reordered-release -------------------------------------
    # p1's first transaction sneaks in through the early unlock, loads
    # the pre-commit store, and its delayed publish resurrects it; p1's
    # second transaction — real-time after p0's commit — reads stale 0.
    plan = {
        0: [("start", ()), ("write", (0, 1)), ("tryC", ())],
        1: [
            ("start", ()),
            ("read", (0,)),
            ("tryC", ()),
            ("start", ()),
            ("read", (0,)),
            ("tryC", ()),
        ],
    }
    hunting, baseline = _scenario_pair(
        "global-lock-reordered-release",
        lambda: _GlobalLockReorderedRelease(2, variables=(0,)),
        lambda: GlobalLockTransactionalMemory(2, variables=(0,)),
        plan,
        OpacityChecker,
    )
    mutants.append(
        Mutant(
            mutant_id="global-lock-reordered-release",
            kind="reordered-lock-release",
            target="global-lock-tm",
            description="tryC releases the global lock before publishing "
            "the write set; a racing transaction loads and then republishes "
            "stale values",
            scenario_factory=hunting,
            baseline_factory=baseline,
            backends=("exhaustive", "fuzz"),
            expected_killers=("exhaustive", "fuzz"),
        )
    )

    # -- norec-skipped-validation ------------------------------------------
    # The writer publishes cell 0 then cell 1; an unvalidated reader
    # interleaved between them returns the torn (old x0, new x1) pair.
    plan = {
        0: [
            ("start", ()),
            ("write", (0, 1)),
            ("write", (1, 1)),
            ("tryC", ()),
        ],
        1: [("start", ()), ("read", (0,)), ("read", (1,)), ("tryC", ())],
    }
    hunting, baseline = _scenario_pair(
        "norec-skipped-validation",
        lambda: _NorecSkippedValidation(2, variables=(0, 1)),
        lambda: NorecTransactionalMemory(2, variables=(0, 1)),
        plan,
        OpacityChecker,
    )
    mutants.append(
        Mutant(
            mutant_id="norec-skipped-validation",
            kind="skipped-validation",
            target="norec-tm",
            description="read returns the store cell without re-checking "
            "the seqlock clock, exposing torn snapshots during a per-cell "
            "publish",
            scenario_factory=hunting,
            baseline_factory=baseline,
            backends=("exhaustive", "fuzz"),
            expected_killers=("exhaustive", "fuzz"),
        )
    )

    # -- i12-off-by-one-quorum ---------------------------------------------
    # Three all-concurrent transactions trigger the timestamp rule of
    # the Section 5.3 property S; the pristine I(1,2) aborts all three
    # (count == 3), the mutant's ``>= 4`` lets the first commit through.
    plan = {pid: [("start", ()), ("tryC", ())] for pid in range(3)}
    hunting, baseline = _scenario_pair(
        "i12-off-by-one-quorum",
        lambda: _I12OffByOneQuorum(3, variables=(0,)),
        lambda: I12TransactionalMemory(3, variables=(0,)),
        plan,
        counterexample_safety,
    )
    mutants.append(
        Mutant(
            mutant_id="i12-off-by-one-quorum",
            kind="off-by-one-quorum",
            target="i12-tm",
            description="the timestamp-rule abort threshold reads >= 4 "
            "instead of >= 3, so a triple of concurrent transactions "
            "violates the paper's property S",
            scenario_factory=hunting,
            baseline_factory=baseline,
            backends=("exhaustive", "fuzz"),
            expected_killers=("exhaustive", "fuzz"),
        )
    )

    # -- mcs-barging-acquire -----------------------------------------------
    plan = {pid: [("acquire", ()), ("release", ())] for pid in range(2)}
    hunting, baseline = _scenario_pair(
        "mcs-barging-acquire",
        lambda: _McsBargingAcquire(2),
        lambda: McsLock(2),
        plan,
        MutualExclusionChecker,
    )
    mutants.append(
        Mutant(
            mutant_id="mcs-barging-acquire",
            kind="skipped-validation",
            target="mcs-lock",
            description="acquire returns GRANTED right after enqueueing, "
            "never spinning to the queue head — two enqueuers share the "
            "critical section",
            scenario_factory=hunting,
            baseline_factory=baseline,
            backends=("exhaustive", "fuzz"),
            expected_killers=("exhaustive", "fuzz"),
        )
    )

    # -- bakery-off-by-one-ticket ------------------------------------------
    hunting, baseline = _scenario_pair(
        "bakery-off-by-one-ticket",
        lambda: _BakeryOffByOneTicket(2),
        lambda: BakeryLock(2),
        plan,
        MutualExclusionChecker,
    )
    mutants.append(
        Mutant(
            mutant_id="bakery-off-by-one-ticket",
            kind="off-by-one-ticket",
            target="bakery-lock",
            description="the doorway takes ticket max instead of max+1; "
            "ticket 0 looks like 'not competing' to every wait loop, so "
            "the holder is overtaken",
            scenario_factory=hunting,
            baseline_factory=baseline,
            backends=("exhaustive", "fuzz"),
            expected_killers=("exhaustive", "fuzz"),
        )
    )

    # -- cas-spinning-loser ------------------------------------------------
    # Safety-invisible: the loser never responds, so agreement/validity
    # hold on every schedule and the safety backends must NOT kill this
    # mutant.  The liveness backend certifies the starvation with an
    # exact lasso (the spin leaves pool and memory untouched).
    plan = {0: [("propose", (0,))], 1: [("propose", (1,))]}
    hunting, baseline = _scenario_pair(
        "cas-spinning-loser",
        lambda: _CasSpinningLoser(2),
        lambda: CasConsensus(2),
        plan,
        AgreementValidity,
        expect_violation=False,
        liveness_factory=WaitFreedom,
        expect_liveness_violation=True,
    )
    mutants.append(
        Mutant(
            mutant_id="cas-spinning-loser",
            kind="spinning-loser",
            target="cas-consensus",
            description="the losing proposer retries its CAS forever "
            "instead of reading the decision: safety holds, wait-freedom "
            "does not — only the liveness backend can kill it",
            scenario_factory=hunting,
            baseline_factory=baseline,
            backends=("exhaustive", "fuzz", "liveness"),
            expected_killers=("liveness",),
        )
    )

    return tuple(mutants)


#: Every shipped mutant, in a fixed registration order.
MUTANTS: Tuple[Mutant, ...] = _make_mutants()

_BY_ID: Dict[str, Mutant] = {mutant.mutant_id: mutant for mutant in MUTANTS}


def get_mutant(mutant_id: str) -> Mutant:
    """Look up one mutant by id (UsageError with suggestions otherwise)."""
    try:
        return _BY_ID[mutant_id]
    except KeyError:
        raise unknown_choice("mutant", mutant_id, _BY_ID) from None


def iter_mutants() -> List[Mutant]:
    """All mutants sorted by id."""
    return [_BY_ID[key] for key in sorted(_BY_ID)]


def mutant_ids() -> List[str]:
    """The sorted mutant ids."""
    return sorted(_BY_ID)
