"""The kill matrix: which backend catches which seeded bug.

:func:`kill_matrix` runs every (mutant, backend) cell through the one
:func:`~repro.scenarios.verify.verify` facade — the mutated hunting
scenario *and* its pristine baseline — and folds the verdicts into a
:class:`KillMatrix`:

* a cell **kills** when the mutated implementation yields a violation;
* a cell is a **false kill** when the *baseline* (the unmutated zoo
  implementation under the identical plan and property) yields one —
  the oracle flagging correct code, the one unforgivable outcome;
* the **sensitivity** score is the fraction of *expected* kills
  achieved: every mutant declares which backends must catch it
  (`Mutant.expected_killers`), and CI gates on the score staying at
  its seed value of 1.0.

Counterexample shrinking is off by default — the matrix wants verdicts,
not minimal traces, and ddmin replays cost multiples of the search.

The JSON artifact (``KillMatrix.to_document``, schema
``repro-kill-matrix`` v1) is uploaded by the ``mutation-smoke`` CI job;
``render_markdown`` produces the human-readable table for docs and the
``mutate --md`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.mutate.mutants import MUTANTS, Mutant
from repro.scenarios.verify import verify

__all__ = ["KillMatrix", "MatrixCell", "kill_matrix"]

#: Schema identifier of the JSON artifact.
SCHEMA = "repro-kill-matrix"
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class MatrixCell:
    """One (mutant, backend) evaluation: mutated and baseline verdicts."""

    mutant_id: str
    backend: str
    outcome: str  #: verify() outcome of the mutated implementation
    killed: bool  #: the mutated implementation was caught violating
    expected_kill: bool  #: this backend is a declared expected killer
    baseline_outcome: str  #: verify() outcome of the pristine implementation
    false_kill: bool  #: the pristine implementation was flagged — oracle bug

    def to_document(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "outcome": self.outcome,
            "killed": self.killed,
            "expected_kill": self.expected_kill,
            "baseline_outcome": self.baseline_outcome,
            "false_kill": self.false_kill,
        }


@dataclass(frozen=True)
class KillMatrix:
    """Every cell plus the derived oracle-sensitivity verdicts."""

    seed: int
    iterations: Optional[int]
    mutants: Tuple[Mutant, ...]
    cells: Tuple[MatrixCell, ...]

    # -- derived views ------------------------------------------------------

    def cells_for(self, mutant_id: str) -> List[MatrixCell]:
        return [cell for cell in self.cells if cell.mutant_id == mutant_id]

    def killed_by(self, mutant_id: str) -> List[str]:
        return [
            cell.backend for cell in self.cells_for(mutant_id) if cell.killed
        ]

    @property
    def surviving_mutants(self) -> List[str]:
        """Mutant ids no backend killed — blind spots of the oracles."""
        return [
            mutant.mutant_id
            for mutant in self.mutants
            if not self.killed_by(mutant.mutant_id)
        ]

    @property
    def false_kills(self) -> List[MatrixCell]:
        """Cells whose pristine baseline was flagged as violating."""
        return [cell for cell in self.cells if cell.false_kill]

    @property
    def expected_cells(self) -> List[MatrixCell]:
        return [cell for cell in self.cells if cell.expected_kill]

    @property
    def sensitivity(self) -> float:
        """Achieved expected kills / declared expected kills (0..1)."""
        expected = self.expected_cells
        if not expected:
            return 1.0
        achieved = sum(1 for cell in expected if cell.killed)
        return achieved / len(expected)

    @property
    def ok(self) -> bool:
        """The CI gate: full sensitivity and not a single false kill."""
        return self.sensitivity == 1.0 and not self.false_kills

    # -- artifacts ----------------------------------------------------------

    def to_document(self) -> Dict[str, Any]:
        """The JSON artifact (schema ``repro-kill-matrix`` v1)."""
        mutant_docs = []
        for mutant in self.mutants:
            cells = self.cells_for(mutant.mutant_id)
            mutant_docs.append(
                {
                    "mutant": mutant.mutant_id,
                    "kind": mutant.kind,
                    "target": mutant.target,
                    "description": mutant.description,
                    "expected_killers": list(mutant.expected_killers),
                    "killed_by": self.killed_by(mutant.mutant_id),
                    "killed": bool(self.killed_by(mutant.mutant_id)),
                    "backends": {
                        cell.backend: cell.to_document() for cell in cells
                    },
                }
            )
        expected = self.expected_cells
        return {
            "schema": SCHEMA,
            "version": SCHEMA_VERSION,
            "seed": self.seed,
            "iterations": self.iterations,
            "mutants": mutant_docs,
            "summary": {
                "mutants": len(self.mutants),
                "killed": len(self.mutants) - len(self.surviving_mutants),
                "surviving": self.surviving_mutants,
                "false_kills": [
                    {"mutant": cell.mutant_id, "backend": cell.backend}
                    for cell in self.false_kills
                ],
                "expected_kills": len(expected),
                "expected_achieved": sum(
                    1 for cell in expected if cell.killed
                ),
                "sensitivity": self.sensitivity,
                "ok": self.ok,
            },
        }

    def render_markdown(self) -> str:
        """The kill matrix as a GitHub-flavored markdown table."""
        backends = ("exhaustive", "fuzz", "liveness")
        lines = [
            "| mutant | kind | " + " | ".join(backends) + " | killed by |",
            "|---|---|" + "---|" * (len(backends) + 1),
        ]
        by_backend = {
            (cell.mutant_id, cell.backend): cell for cell in self.cells
        }
        for mutant in self.mutants:
            row = [f"`{mutant.mutant_id}`", mutant.kind]
            for backend in backends:
                cell = by_backend.get((mutant.mutant_id, backend))
                if cell is None:
                    row.append("—")
                    continue
                mark = "killed" if cell.killed else "survived"
                if cell.expected_kill:
                    mark += " *"
                if cell.false_kill:
                    mark += " (FALSE KILL)"
                row.append(mark)
            row.append(", ".join(self.killed_by(mutant.mutant_id)) or "—")
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
        lines.append(
            f"Sensitivity: **{self.sensitivity:.2f}** "
            f"({len([c for c in self.expected_cells if c.killed])}"
            f"/{len(self.expected_cells)} expected kills; `*` marks "
            f"expected killers); false kills: "
            f"**{len(self.false_kills)}**."
        )
        return "\n".join(lines)


def _overrides(
    backend: str, seed: int, iterations: Optional[int]
) -> Dict[str, Any]:
    """Per-backend verify() overrides: no shrinking, pinned fuzz seed."""
    overrides: Dict[str, Any] = {"shrink": False}
    if backend == "fuzz":
        overrides["seed"] = seed
        if iterations is not None:
            overrides["iterations"] = iterations
    return overrides


def kill_matrix(
    mutants: Optional[Sequence[Mutant]] = None,
    seed: int = 0,
    iterations: Optional[int] = None,
    backends: Optional[Sequence[str]] = None,
) -> KillMatrix:
    """Evaluate mutants × backends into one :class:`KillMatrix`.

    ``seed``/``iterations`` pin the fuzz backend (the exhaustive and
    liveness backends are deterministic already), keeping the matrix
    reproducible run to run — the property the CI gate relies on.
    Baselines run under the same overrides, so a false kill can never
    hide behind a budget difference.

    ``backends`` restricts the evaluated columns (the sensitivity score
    then covers only the expected kills of those columns) — the
    ``mutation-smoke`` CI job runs the seconds-fast fuzz + liveness
    slice, leaving the exhaustive columns to the full battery.
    """
    chosen = tuple(MUTANTS if mutants is None else mutants)
    cells: List[MatrixCell] = []
    for mutant in chosen:
        evaluated = tuple(
            backend
            for backend in mutant.backends
            if backends is None or backend in backends
        )
        for backend in evaluated:
            overrides = _overrides(backend, seed, iterations)
            verdict = verify(
                mutant.scenario_factory(), backend=backend, **overrides
            )
            baseline = verify(
                mutant.baseline_factory(), backend=backend, **overrides
            )
            cells.append(
                MatrixCell(
                    mutant_id=mutant.mutant_id,
                    backend=backend,
                    outcome=verdict.outcome,
                    killed=verdict.violated,
                    expected_kill=backend in mutant.expected_killers,
                    baseline_outcome=baseline.outcome,
                    false_kill=baseline.violated,
                )
            )
    return KillMatrix(
        seed=seed,
        iterations=iterations,
        mutants=chosen,
        cells=tuple(cells),
    )
