"""Implementation-mutation layer: seeded bugs that score the oracles.

The inverse of the scenario catalog: instead of asking "does the
implementation satisfy the property?", this package plants known bugs
(:mod:`repro.mutate.mutants` — factory-wrapper subclasses, never source
patches) and asks "do the verification backends catch them?".  The
resulting kill matrix (:mod:`repro.mutate.matrix`) is the repository's
oracle-sensitivity score, gated in CI by the ``mutation-smoke`` job and
the ``mutation`` experiment.
"""

from repro.mutate.mutants import (
    MUTANTS,
    Mutant,
    get_mutant,
    iter_mutants,
    mutant_ids,
)
from repro.mutate.matrix import KillMatrix, MatrixCell, kill_matrix

__all__ = [
    "KillMatrix",
    "MUTANTS",
    "MatrixCell",
    "Mutant",
    "get_mutant",
    "iter_mutants",
    "kill_matrix",
    "mutant_ids",
]
