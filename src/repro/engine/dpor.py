"""Dynamic partial-order reduction: sleep sets over decision footprints.

The exhaustive engine deduplicates by exact configuration *and* history,
so it still enumerates every Mazurkiewicz representative — all
interleavings of independent decisions that differ in event order or in
an intermediate configuration.  This module prunes those: per applied
decision the kernel reports a :class:`~repro.sim.kernel.Footprint`
(acting process, visibility kind, pool cells read/written), an
*independence relation* over footprints says when two adjacent decisions
of different processes commute without changing any verdict, and
Flanagan–Godefroid style **sleep sets** — seeded, as in the source-set
formulation, from the already-explored siblings at each node — skip the
commuted re-explorations.

Independence relation
---------------------
Two decisions ``a`` (of process p) and ``b`` (of process q) are
*dependent* when any of:

* ``p == q`` — same process: program order is sacred;
* either is a crash — conservatively global;
* their pool footprints conflict: same object, overlapping keys (equal,
  or either is ``None`` = whole object), at least one a write;
* both are visible (emit a history event) and — under the safety
  relation — of *different* kinds, i.e. an invocation against a
  response.  Swapping an adjacent invocation/response pair of different
  processes changes the real-time precedence relation
  (response-before-invocation) that every safety checker judges.
  Adjacent same-kind events (invocation/invocation,
  response/response) of different processes leave per-process order and
  every response-before-invocation pair intact, so safety verdicts are
  invariant under the swap — the checkers in :mod:`repro.objects`
  consult exactly that partial order.  The liveness relation
  (``visible_commutes=False``) declares *all* visible pairs dependent,
  because liveness classification additionally reads event timing
  against step windows.

Soundness under stateful search
-------------------------------
Classic sleep sets assume a tree search; the engine deduplicates by
fingerprint, and a state first explored with sleep set ``Z1`` has only
its ``enabled − Z1`` futures covered.  When a later path reaches the
same state with sleep ``Z2 ⊄ Z1``-compatible (i.e. some decision slept
in ``Z1`` is awake in ``Z2``), treating it as a plain dedup hit would
lose coverage.  :class:`SleepSets` applies the standard state-caching
repair: remember the sleep set each expanded state was explored with,
and on such a revisit *re-expand* the state with the intersection
``Z1 ∩ Z2`` (never larger than either, hence sound; strictly smaller
than the stored set, hence terminating).  States that were never
expanded (leaves, depth-capped nodes) carry no stored sleep and dedup
exactly as before.

Obs counters (namespace ``dpor/``): ``dpor/sleep_blocked`` counts
enabled transitions skipped because they were asleep,
``dpor/pruned`` counts nodes whose *every* enabled transition was
asleep (entire subtrees cut), ``dpor/revisit_repairs`` counts
re-expansions forced by the state-caching repair.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.sim.kernel import Footprint

#: Reduction modes accepted throughout the engine and the verify facade.
#: ``dpor-parity`` runs the unreduced and the reduced search and asserts
#: identical *verdicts* (not identical history sets).
REDUCTIONS = ("none", "dpor", "dpor-parity")


class DporParityError(AssertionError):
    """The reduced and unreduced searches produced different verdicts."""


def check_reduction(reduction: str, allowed: Tuple[str, ...] = REDUCTIONS) -> str:
    """Validate a reduction mode name."""
    if reduction not in allowed:
        raise ValueError(
            f"reduction must be one of {allowed}, got {reduction!r}"
        )
    return reduction


def _cells_conflict(
    a: Tuple[Tuple[str, Any], ...], b: Tuple[Tuple[str, Any], ...]
) -> bool:
    for obj_a, key_a in a:
        for obj_b, key_b in b:
            if obj_a != obj_b:
                continue
            if key_a is None or key_b is None or key_a == key_b:
                return True
    return False


def conflicts(a: Footprint, b: Footprint, visible_commutes: bool = True) -> bool:
    """Whether two decisions are *dependent* (see module docstring)."""
    if a.pid == b.pid:
        return True
    if a.kind == "crash" or b.kind == "crash":
        return True
    if a.visible and b.visible:
        if not visible_commutes or a.kind != b.kind:
            return True
    if _cells_conflict(a.writes, b.writes):
        return True
    if _cells_conflict(a.writes, b.reads):
        return True
    if _cells_conflict(a.reads, b.writes):
        return True
    return False


def independent(a: Footprint, b: Footprint, visible_commutes: bool = True) -> bool:
    """Negation of :func:`conflicts`, for readable call sites."""
    return not conflicts(a, b, visible_commutes)


#: A sleep set: still-asleep decision labels mapped to the footprint
#: each had when it was put to sleep.  Footprints of a process's next
#: decision are functions of its local frame state, and any decision of
#: the same process is dependent (removing the entry), so a surviving
#: entry's cached footprint is still the footprint the decision would
#: have if taken now.
Sleep = Dict[Any, Footprint]


class SleepSets:
    """Sleep-set bookkeeping for one search, including the stateful
    dedup repair (see module docstring)."""

    def __init__(self, visible_commutes: bool = True):
        self.visible_commutes = visible_commutes
        #: Dedup key -> the sleep set the state was (last) expanded with.
        self._expanded: Dict[Hashable, Sleep] = {}

    # -- sleep propagation -------------------------------------------------

    def child_sleep(
        self,
        sleep: Sleep,
        explored_siblings: Iterable[Tuple[Any, Footprint]],
        executed: Footprint,
    ) -> Sleep:
        """The sleep set of the child reached by ``executed``.

        Entries inherited from the parent and the parent's
        already-explored earlier siblings survive exactly when they are
        independent of the executed decision — the classic sleep-set
        recurrence, with the sibling seeding standing in for explicit
        source sets."""
        child: Sleep = {}
        for label, footprint in sleep.items():
            if independent(footprint, executed, self.visible_commutes):
                child[label] = footprint
        for label, footprint in explored_siblings:
            if independent(footprint, executed, self.visible_commutes):
                child[label] = footprint
        return child

    # -- stateful dedup repair ---------------------------------------------

    def note_expansion(self, key: Hashable, sleep: Sleep) -> None:
        """Record that the state ``key`` is being expanded with ``sleep``."""
        self._expanded[key] = dict(sleep)

    def revisit_sleep(
        self, key: Hashable, sleep: Sleep, enabled: Optional[Iterable[Any]] = None
    ) -> Optional[Sleep]:
        """Decide what a revisit of an already-seen state must do.

        Returns ``None`` when the revisit is covered — the state was
        never expanded, or every label its stored sleep suppressed (and
        this path would explore) is suppressed here too — i.e. plain
        dedup is sound.  Otherwise returns the intersection sleep the
        state must be *re-expanded* with, and lowers the stored sleep to
        it so repairs strictly shrink and terminate.  ``enabled`` limits
        the coverage question to currently enabled labels; ``None``
        conservatively treats every stored label as enabled (used by the
        liveness search, which dedups before computing its options)."""
        stored = self._expanded.get(key)
        if stored is None:
            return None
        enabled_set = None if enabled is None else set(enabled)
        missing = [
            label
            for label in stored
            if label not in sleep
            and (enabled_set is None or label in enabled_set)
        ]
        if not missing:
            return None
        merged = {
            label: footprint
            for label, footprint in stored.items()
            if label in sleep
        }
        self._expanded[key] = dict(merged)
        return merged
