"""Batched execution of simulation plays (the battery fast path).

The grid experiments (:mod:`repro.analysis.experiments`) run *batteries*
— dozens of independent driver-vs-implementation plays whose results are
only combined at classification time.  Routing them through one batch
entry point buys two things: every battery automatically benefits from
the engine's process-pool parallelism (plays are embarrassingly
parallel), and the batteries stop hand-rolling their own run loops.

Like :mod:`repro.engine.parallel`, worker context travels by ``fork``
inheritance because play factories are arbitrary closures; without
``fork`` (or with ``processes <= 1``) the batch runs serially in-process
with identical results.
"""

from __future__ import annotations

import multiprocessing

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.drivers import Driver
from repro.util.params import env_int
from repro.sim.kernel import Implementation
from repro.sim.record import RunResult
from repro.sim.runtime import play


@dataclass(frozen=True)
class PlayTask:
    """One independent play: fresh implementation vs fresh driver.

    Factories rather than instances so every execution — local or in a
    forked worker — gets untouched state.
    """

    key: str
    label: str
    implementation_factory: Callable[[], Implementation]
    driver_factory: Callable[[], Driver]
    max_steps: int = 100_000

    def execute(self) -> RunResult:
        return play(
            self.implementation_factory(),
            self.driver_factory(),
            max_steps=self.max_steps,
        )


#: Fork-inherited task list (see module docstring).
_BATCH_TASKS: List[PlayTask] = []


def _run_indexed(index: int) -> RunResult:
    return _BATCH_TASKS[index].execute()


def default_parallelism() -> int:
    """Worker count from ``REPRO_ENGINE_PARALLEL`` (0 = serial).

    Negative values clamp to 0 (serial); a non-integer value raises
    :class:`~repro.util.errors.UsageError` rather than being silently
    ignored (the shared ``REPRO_*`` env grammar of
    :func:`repro.util.params.env_int`).
    """
    return env_int("REPRO_ENGINE_PARALLEL", default=0, minimum=0)


def run_play_batch(
    tasks: Sequence[PlayTask], processes: Optional[int] = None
) -> List[RunResult]:
    """Execute every task; results align with the input order.

    ``processes=None`` consults :func:`default_parallelism`, so setting
    ``REPRO_ENGINE_PARALLEL=4`` parallelises every battery in the
    repository without touching call sites.
    """
    if processes is None:
        processes = default_parallelism()
    tasks = list(tasks)
    use_pool = (
        processes > 1
        and len(tasks) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if not use_pool:
        return [task.execute() for task in tasks]
    _BATCH_TASKS.clear()
    _BATCH_TASKS.extend(tasks)
    with multiprocessing.get_context("fork").Pool(
        min(processes, len(tasks))
    ) as pool:
        return pool.map(_run_indexed, range(len(tasks)))
