"""Unified exploration of kernel configuration graphs.

:class:`KernelExplorer` is the engine behind every search that steps a
simulated implementation through all relevant schedules: exhaustive
history exploration (:mod:`repro.sim.explore`) and the valency-style
non-deciding-schedule search (:mod:`repro.adversaries.valency`) are thin
clients.  The client supplies two callbacks —

* ``successors(config)``: the legal ``(label, decision)`` pairs out of a
  configuration (e.g. *invoke the next planned operation of p0* /
  *step p1*), and
* ``fingerprint(config)``: the dedup key (exact configuration by
  default; the valency client substitutes its liveness abstraction) —

and the explorer walks the deduplicated configuration graph with a
:class:`~repro.engine.frontier.GraphSearch`, yielding one
:class:`ConfigVisit` per unique configuration.

Modes
-----
``snapshot`` (default)
    Each discovered configuration is captured as a
    :class:`~repro.engine.config.KernelSnapshot`; expanding a node
    restores the snapshot once per child — O(configuration size) per
    edge instead of the O(depth) full re-execution replay pays.
``replay``
    The seed behaviour, kept as a fallback behind the same interface: a
    node is identified with its decision path and every edge re-executes
    the run from the start.
``parity``
    Runs both modes in lockstep and raises :class:`EngineParityError` on
    the first divergence in fingerprint or schedule — the executable
    form of the claim that snapshot/restore is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import zip_longest
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine.config import ImplementationFactory, KernelConfig, KernelSnapshot
from repro.engine.dpor import SleepSets, check_reduction
from repro.engine.frontier import GraphSearch, SearchBudgetExceeded
from repro.obs.recorder import active as _obs_active
from repro.sim.drivers import Decision

#: Client callback: legal labelled decisions out of a configuration.
SuccessorFn = Callable[[KernelConfig], Sequence[Tuple[Any, Decision]]]
#: Client callback: dedup key of a configuration.
FingerprintFn = Callable[[KernelConfig], Hashable]
#: Client callback: drop a just-produced child configuration entirely.
PruneFn = Callable[[KernelConfig], bool]

MODES = ("snapshot", "replay", "parity")


class EngineParityError(AssertionError):
    """Snapshot-mode and replay-mode exploration diverged."""


@dataclass
class ConfigVisit:
    """One unique configuration, visited at discovery time.

    ``config`` is live only until the iterator advances (the engine
    recycles it); consumers must extract what they need immediately.
    """

    config: KernelConfig
    fingerprint: Hashable
    schedule: Tuple[Any, ...]
    depth: int
    choices: Tuple[Tuple[Any, Decision], ...]


class _Node:
    """Internal search node: a configuration's restorable identity.

    ``config`` transiently holds the live configuration between
    discovery and the client visit; it is dropped immediately after so
    frontier entries keep only plain-data snapshots (or, in replay mode,
    decision paths).
    """

    __slots__ = (
        "fingerprint", "schedule", "decisions", "snapshot", "choices", "config",
        "sleep",
    )

    def __init__(
        self,
        fingerprint: Hashable,
        schedule: Tuple[Any, ...],
        decisions: Tuple[Decision, ...],
        snapshot: Optional[KernelSnapshot],
        choices: Tuple[Tuple[Any, Decision], ...],
        config: KernelConfig,
    ):
        self.fingerprint = fingerprint
        self.schedule = schedule
        self.decisions = decisions
        self.snapshot = snapshot
        self.choices = choices
        self.config = config
        # Sleep set under DPOR (label -> Footprint); None when off.
        self.sleep = None


class KernelExplorer:
    """Deduplicated search over the configuration graph of one kernel.

    Parameters
    ----------
    factory:
        Fresh-implementation factory (one instance per restore/replay).
    successors:
        Legal labelled decisions out of a configuration; called once per
        unique configuration at discovery time.
    root_decisions:
        Decisions applied before the root configuration (e.g. the
        initial proposal invocations of the valency search).
    mode, strategy:
        See module docstring; ``strategy`` is any
        :class:`~repro.engine.frontier.GraphSearch` strategy.
    fingerprint:
        Dedup key; defaults to the exact configuration-and-history key
        :meth:`~repro.engine.config.KernelConfig.fingerprint`.
    prune:
        Children for which this returns true are dropped entirely — no
        visit, no edge (the valency search prunes fully decided
        configurations, which can never lie on a witness cycle).
    max_depth, max_configurations, on_budget:
        Passed to the underlying :class:`GraphSearch`; the budget counts
        unique configurations.
    record_edges:
        Expose the explored edge relation as :attr:`edges` after the
        run (fingerprint → {label: fingerprint}), including edges that
        close cycles into already-visited configurations.
    """

    def __init__(
        self,
        factory: ImplementationFactory,
        successors: SuccessorFn,
        root_decisions: Sequence[Decision] = (),
        mode: str = "snapshot",
        strategy: str = "dfs",
        fingerprint: Optional[FingerprintFn] = None,
        prune: Optional[PruneFn] = None,
        max_depth: Optional[int] = None,
        max_configurations: Optional[int] = None,
        on_budget: str = "raise",
        record_edges: bool = False,
        reduction: str = "none",
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        # Parity between the reductions lives above the engine (the
        # verify facade runs two searches); the explorer itself only
        # knows how to search with the reduction on or off.
        check_reduction(reduction, ("none", "dpor"))
        if reduction == "dpor" and strategy == "iddfs":
            # The sleep-set store is per search pass; iterative
            # deepening restarts passes and would reuse stale entries.
            raise ValueError("reduction='dpor' supports bfs/dfs, not iddfs")
        self.reduction = reduction
        self.factory = factory
        self.successors = successors
        self.root_decisions = tuple(root_decisions)
        self.mode = mode
        self.strategy = strategy
        self.fingerprint = fingerprint or (lambda config: config.fingerprint())
        self.prune = prune
        self.max_depth = max_depth
        self.max_configurations = max_configurations
        self.on_budget = on_budget
        self.record_edges = record_edges
        self.search: Optional[GraphSearch] = None
        # One shared instance: implementations are stateless across runs
        # (their per-run state lives in pools and memories), so every
        # restore/replay can reuse it instead of paying factory() again.
        self._implementation = factory()
        # Snapshot mode restores into this one scratch configuration per
        # explored edge — zero runtime/pool allocation per restore.  A
        # ConfigVisit's config is therefore only valid until the search
        # advances, which synchronous consumers never notice.
        self._scratch: Optional[KernelConfig] = None
        # Exact fingerprint of the configuration currently sitting in the
        # scratch.  When a node is expanded right after being visited (the
        # common case under DFS) the scratch already *is* that
        # configuration, and the first child needs no restore at all.
        self._scratch_fingerprint: Optional[Hashable] = None

    # -- public API --------------------------------------------------------

    def run(self) -> Iterator[ConfigVisit]:
        """Lazily yield one visit per unique configuration."""
        if self.mode == "parity":
            return self._run_parity()
        return self._run_single(self.mode)

    @property
    def edges(self) -> Dict[Hashable, Dict[Any, Hashable]]:
        """Explored edge relation (after/while consuming :meth:`run`)."""
        if self.search is None:
            raise RuntimeError("run() has not been started")
        return self.search.edges

    # -- internals ---------------------------------------------------------

    def _make_node(
        self,
        config: KernelConfig,
        schedule: Tuple[Any, ...],
        decisions: Tuple[Decision, ...],
        mode: str,
        fingerprint: Optional[Hashable] = None,
    ) -> _Node:
        if fingerprint is None:
            fingerprint = self.fingerprint(config)
        choices = tuple(self.successors(config))
        # A snapshot is only taken when the node can actually be
        # expanded later; leaves and depth-capped nodes never need one.
        expandable = bool(choices) and (
            self.max_depth is None or len(schedule) < self.max_depth
        )
        if mode == "snapshot" and expandable:
            rec = _obs_active()
            if rec is not None:
                rec.count("engine/snapshot_captures")
        return _Node(
            fingerprint=fingerprint,
            schedule=schedule,
            decisions=decisions,
            snapshot=config.capture() if mode == "snapshot" and expandable else None,
            choices=choices,
            config=config,
        )

    def _child_config(self, node: _Node, decision: Decision, mode: str) -> KernelConfig:
        rec = _obs_active()
        if mode == "snapshot":
            if self._scratch is None:
                self._scratch = KernelConfig(self._implementation)
                self._scratch.runtime.record_footprints = self.reduction == "dpor"
            config = self._scratch
            if self._scratch_fingerprint != node.fingerprint:
                config.restore_from(node.snapshot)
                if rec is not None:
                    rec.count("engine/snapshot_restores")
            elif rec is not None:
                rec.count("engine/scratch_reuses")
            self._scratch_fingerprint = None  # stale while mutating
            config.apply(decision)
            return config
        if rec is not None:
            rec.count("engine/replays")
            rec.count(
                "kernel/replayed_decisions",
                len(self.root_decisions) + len(node.decisions) + 1,
            )
        config = KernelConfig(self._implementation)
        config.runtime.record_footprints = self.reduction == "dpor"
        return config.apply_all(
            self.root_decisions + node.decisions + (decision,)
        )

    def _expandable(self, node: _Node) -> bool:
        return bool(node.choices) and (
            self.max_depth is None or len(node.schedule) < self.max_depth
        )

    def _run_single(self, mode: str) -> Iterator[ConfigVisit]:
        reduce = self.reduction == "dpor"
        sleeps = SleepSets() if reduce else None
        root_config = KernelConfig(self._implementation).apply_all(self.root_decisions)
        if self.prune is not None and self.prune(root_config):
            return
        root = self._make_node(root_config, (), (), mode)
        if reduce:
            root.sleep = {}
            if self._expandable(root):
                sleeps.note_expansion(root.fingerprint, root.sleep)

        def expand(node: _Node) -> Iterator[Tuple[Any, _Node]]:
            rec = _obs_active() if reduce else None
            explored: List[Tuple[Any, Any]] = []  # (label, Footprint)
            blocked = 0
            for label, decision in node.choices:
                if reduce and label in node.sleep:
                    # An equivalent interleaving taking this decision
                    # first was already explored from a sibling.
                    blocked += 1
                    if rec is not None:
                        rec.count("dpor/sleep_blocked")
                    continue
                config = self._child_config(node, decision, mode)
                if self.prune is not None and self.prune(config):
                    continue
                child_sleep = None
                if reduce:
                    executed = config.runtime.last_footprint
                    child_sleep = sleeps.child_sleep(node.sleep, explored, executed)
                    explored.append((label, executed))
                fingerprint = self.fingerprint(config)
                if config is self._scratch:
                    self._scratch_fingerprint = fingerprint
                if fingerprint in search.parents:
                    if reduce:
                        self._repair_revisit(
                            search, sleeps, config, fingerprint,
                            node.schedule + (label,),
                            node.decisions + (decision,),
                            child_sleep, mode, rec,
                        )
                    # Already visited: the search only records the edge,
                    # so skip the successor scan and snapshot capture.
                    yield label, _Node(fingerprint, (), (), None, (), None)
                    continue
                child = self._make_node(
                    config,
                    node.schedule + (label,),
                    node.decisions + (decision,),
                    mode,
                    fingerprint=fingerprint,
                )
                if reduce:
                    child.sleep = child_sleep
                    if self._expandable(child):
                        sleeps.note_expansion(fingerprint, child_sleep)
                yield label, child
            if reduce and blocked and blocked == len(node.choices):
                if rec is not None:
                    rec.count("dpor/pruned")

        search = GraphSearch(
            strategy=self.strategy,
            key=lambda node: node.fingerprint,  # revisit nodes are re-pushed, not re-keyed
            max_nodes=self.max_configurations,
            max_depth=self.max_depth,
            on_budget=self.on_budget,
            record_edges=self.record_edges,
        )
        self.search = search
        for visit in search.run([root], expand):
            node: _Node = visit.node
            config, node.config = node.config, None
            yield ConfigVisit(
                config=config,
                fingerprint=node.fingerprint,
                schedule=node.schedule,
                depth=visit.depth,
                choices=node.choices,
            )

    def _repair_revisit(
        self, search, sleeps, config, fingerprint, schedule, decisions,
        child_sleep, mode, rec,
    ) -> None:
        """State-caching repair: re-expand a visited state when this
        path arrives with decisions awake that its first expansion had
        asleep (see :mod:`repro.engine.dpor`).  ``config`` is live (the
        child just produced), so the enabled set and a fresh snapshot
        are at hand."""
        choices = tuple(self.successors(config))
        merged = sleeps.revisit_sleep(
            fingerprint, child_sleep, (label for label, _ in choices)
        )
        if merged is None:
            return
        if rec is not None:
            rec.count("dpor/revisit_repairs")
        revisit = _Node(
            fingerprint=fingerprint,
            schedule=schedule,
            decisions=decisions,
            snapshot=config.capture() if mode == "snapshot" else None,
            choices=choices,
            config=None,
        )
        revisit.sleep = merged
        search.push_revisit(revisit, fingerprint)

    def _run_parity(self) -> Iterator[ConfigVisit]:
        snapshot_side = self._clone(mode="snapshot")
        replay_side = self._clone(mode="replay")
        for snap, rep in zip_longest(snapshot_side.run(), replay_side.run()):
            if snap is None or rep is None:
                raise EngineParityError(
                    "snapshot and replay exploration visited different "
                    "numbers of configurations"
                )
            if snap.fingerprint != rep.fingerprint:
                raise EngineParityError(
                    f"fingerprint divergence at schedule {snap.schedule!r}: "
                    f"snapshot != replay"
                )
            if snap.schedule != rep.schedule:
                raise EngineParityError(
                    f"schedule divergence: {snap.schedule!r} != {rep.schedule!r}"
                )
            self.search = snapshot_side.search
            yield snap

    def _clone(self, mode: str) -> "KernelExplorer":
        return KernelExplorer(
            self.factory,
            self.successors,
            root_decisions=self.root_decisions,
            mode=mode,
            strategy=self.strategy,
            fingerprint=self.fingerprint,
            prune=self.prune,
            max_depth=self.max_depth,
            max_configurations=self.max_configurations,
            on_budget=self.on_budget,
            record_edges=self.record_edges,
            reduction=self.reduction,
        )
