"""Snapshot/restore of kernel configurations (the engine's state store).

The kernel runs algorithms as Python generators, which cannot be copied
or pickled — the reason the seed's exploration layers identified every
configuration with the *schedule* reaching it and re-executed the whole
run per DAG edge (O(depth) per node).  This module removes that cost.

A configuration is restorable from three ingredients, all plain data:

* the base-object pool state (``ObjectPool.capture``);
* each process's memory **as of its in-flight invocation**, plus the log
  of primitive results its generator has consumed so far (recorded by
  the runtime under ``record_replay_log``);
* the external event list and per-process statistics.

Restoring rebuilds each in-flight generator by creating a fresh one and
*fast-forwarding* it through the recorded results — re-running only the
local computation of the one in-flight operation (bounded by the
operation's primitive count), never touching the pool and never
re-executing the rest of the schedule.  Soundness is exactly the
determinism contract of :mod:`repro.sim.kernel`: an algorithm's
behaviour is a function of ``(operation, args, memory, results so
far)``, and primitive results are hashable (hence value-like) by the
fingerprint contract.

Snapshots are copy-on-write in the practical sense: the immutable parts
(events, invocations, result logs, invoke-time memories) are shared by
reference between a snapshot and every configuration restored from it;
only the genuinely mutable parts (pool state, live memory dicts, stats)
are copied per restore.
"""

from __future__ import annotations


from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.events import Invocation
from repro.core.history import History
from repro.obs.recorder import active as _obs_active
from repro.sim.drivers import Decision, ScriptedDriver
from repro.sim.kernel import Implementation, ProcessFrame
from repro.sim.record import ProcessStats
from repro.sim.runtime import Runtime
from repro.util.errors import SimulationError
from repro.util.plaincopy import plain_copy

#: Factory producing a fresh implementation instance per restore/replay.
ImplementationFactory = Callable[[], Implementation]


@dataclass(frozen=True)
class ProcessSnapshot:
    """Restorable state of one simulated process.

    ``memory`` is the live memory for idle processes, and the
    *invoke-time* memory for processes with an operation in flight (the
    fast-forward replays the operation's mutations on top).  Both are
    stored as already-copied dicts that are never mutated afterwards, so
    snapshots may share them.
    """

    pid: int
    crashed: bool
    memory: Dict[str, Any]
    #: ``None`` when idle, else ``(invocation, primitive results so far)``.
    frame: Optional[Tuple[Invocation, Tuple[Any, ...]]]
    stats: Tuple[int, int, int, int, int, Tuple[int, ...], bool]
    #: The process's fingerprint at capture time; restoring seeds the
    #: configuration's incremental-fingerprint cache with it.
    fingerprint: Optional[Hashable] = None


@dataclass(frozen=True)
class KernelSnapshot:
    """A restorable global configuration of one kernel run."""

    step_count: int
    events: Tuple[object, ...]
    pool_state: Dict[str, Any]
    processes: Tuple[ProcessSnapshot, ...]
    #: Per-object pool fingerprints at capture time (cache seed).
    pool_fingerprints: Optional[Dict[str, Hashable]] = None


def _capture_stats(stats: ProcessStats) -> Tuple:
    return (
        stats.steps,
        stats.last_step,
        stats.invocations,
        stats.responses,
        stats.good_responses,
        tuple(stats.good_response_steps),
        stats.crashed,
    )


def _restore_stats(stats: ProcessStats, captured: Tuple) -> None:
    (
        stats.steps,
        stats.last_step,
        stats.invocations,
        stats.responses,
        stats.good_responses,
        good_steps,
        stats.crashed,
    ) = captured
    stats.good_response_steps = list(good_steps)


def _fast_forward_frame(
    implementation: Implementation,
    pid: int,
    invocation: Invocation,
    memory: Dict[str, Any],
    results: Tuple[Any, ...],
    memory_at_invoke: Dict[str, Any],
) -> ProcessFrame:
    """Rebuild an in-flight frame by replaying recorded primitive results.

    ``memory`` must already hold the invoke-time state (the generator
    re-applies the operation's mutations while being fed), and stays the
    process's live memory afterwards.
    """
    generator = implementation.algorithm(
        pid, invocation.operation, invocation.args, memory
    )
    frame = ProcessFrame(invocation=invocation, generator=generator)
    frame.result_log = list(results)
    frame.memory_at_invoke = memory_at_invoke
    if not results:
        return frame
    frame.started = True
    try:
        op = next(generator)
        for result in results[:-1]:
            op = generator.send(result)
    except StopIteration as stop:  # pragma: no cover - contract violation
        raise SimulationError(
            f"fast-forward of {invocation} terminated early: the algorithm "
            f"is not deterministic in its recorded results ({stop.value!r})"
        ) from None
    frame.pending_op = op
    frame.last_result = results[-1]
    frame.primitives_issued = len(results)
    return frame


class KernelConfig:
    """A live, steppable kernel configuration.

    Thin wrapper around a :class:`~repro.sim.runtime.Runtime` in
    replay-log-recording mode, exposing exactly what exploration needs:
    apply one decision, capture a snapshot, fingerprint, and read the
    externally visible state.  Configurations are cheap to create from a
    snapshot and are mutated in place by :meth:`apply` — the engine
    restores one per explored edge.
    """

    def __init__(self, implementation: Implementation):
        self.implementation = implementation
        self.runtime = Runtime(
            implementation,
            ScriptedDriver([], name="engine-config"),
            detect_lasso=False,
            record_replay_log=True,
        )
        # Incremental caches, all keyed by the same invariant: an entry
        # for process pid is valid unless a decision touched pid since it
        # was computed.  Restores seed them from the snapshot; apply()
        # invalidates exactly one process (and the events tuple).  This
        # is what makes a child snapshot share everything with its
        # parent except the one process and object the step touched.
        n = implementation.n_processes
        self._process_fps: List[Optional[Hashable]] = [None] * n
        self._memory_snaps: List[Optional[Dict[str, Any]]] = [None] * n
        self._stats_snaps: List[Optional[Tuple]] = [None] * n
        self._events_tuple: Optional[Tuple[object, ...]] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def initial(cls, factory: ImplementationFactory) -> "KernelConfig":
        """The configuration before any decision."""
        return cls(factory())

    @classmethod
    def from_snapshot(
        cls, factory: ImplementationFactory, snapshot: KernelSnapshot
    ) -> "KernelConfig":
        """Restore a live configuration from a snapshot."""
        config = cls(factory())
        config.restore_from(snapshot)
        return config

    def restore_from(self, snapshot: KernelSnapshot) -> None:
        """Overwrite this configuration with a snapshot's state.

        Every piece of per-run state is replaced, so the same
        ``KernelConfig`` may be restored over and over — the engine
        keeps one scratch configuration and re-restores it per explored
        edge, paying zero allocation for runtimes and pools.
        Implementations are stateless across runs (see
        :class:`~repro.sim.kernel.Implementation`), which is also why
        one implementation instance serves every restore.
        """
        runtime = self.runtime
        runtime.pool.restore(snapshot.pool_state, snapshot.pool_fingerprints)
        runtime.step_count = snapshot.step_count
        runtime.events = list(snapshot.events)
        runtime.last_response.clear()
        # A restore is a restart: fingerprints the lasso detector saw
        # before the rewind belong to a different run and would fabricate
        # bogus cross-run lassos (engine configurations keep detection
        # off, so this is insurance for detection-enabled embeddings).
        runtime.reset_lasso()
        # Same restart rule for footprint state: the last recorded
        # footprint describes a decision of the pre-rewind run; the DPOR
        # layer must only ever see footprints of decisions applied to
        # *this* restored configuration.
        runtime.last_footprint = None
        self._events_tuple = snapshot.events
        for process_snapshot in snapshot.processes:
            pid = process_snapshot.pid
            self._process_fps[pid] = process_snapshot.fingerprint
            self._memory_snaps[pid] = process_snapshot.memory
            self._stats_snaps[pid] = process_snapshot.stats
            state = runtime.processes[process_snapshot.pid]
            state.crashed = process_snapshot.crashed
            state.memory = plain_copy(process_snapshot.memory)
            _restore_stats(
                runtime.stats[process_snapshot.pid], process_snapshot.stats
            )
            if process_snapshot.frame is not None:
                invocation, results = process_snapshot.frame
                state.frame = _fast_forward_frame(
                    self.implementation,
                    process_snapshot.pid,
                    invocation,
                    state.memory,
                    results,
                    memory_at_invoke=process_snapshot.memory,
                )
            else:
                state.frame = None

    @classmethod
    def replay(
        cls, factory: ImplementationFactory, decisions: Sequence[Decision]
    ) -> "KernelConfig":
        """Rebuild a configuration by re-executing a whole schedule.

        The engine's replay fallback: same interface, O(schedule) cost.
        """
        config = cls.initial(factory)
        for decision in decisions:
            config.apply(decision)
        return config

    def apply_all(self, decisions: Sequence[Decision]) -> "KernelConfig":
        """Apply a decision sequence; returns self for chaining."""
        for decision in decisions:
            self.apply(decision)
        return self

    # -- stepping and capture ----------------------------------------------

    def apply(self, decision: Decision) -> None:
        """Apply one scheduler decision to this configuration."""
        rec = _obs_active()
        if rec is not None:
            rec.count("kernel/decisions")
        self.runtime.apply_decision(decision)
        pid = decision.pid
        self._process_fps[pid] = None
        self._memory_snaps[pid] = None
        self._stats_snaps[pid] = None
        self._events_tuple = None

    def capture(self) -> KernelSnapshot:
        """Snapshot the current configuration."""
        runtime = self.runtime
        processes = []
        for state in runtime.processes:
            pid = state.pid
            if state.frame is None:
                frame = None
                # For an idle, untouched-since-restore process the cache
                # holds exactly the live memory copy; recompute (and
                # re-cache) only after a decision touched the process.
                memory = self._memory_snaps[pid]
                if memory is None:
                    memory = plain_copy(state.memory)
                    self._memory_snaps[pid] = memory
            else:
                if state.frame.result_log is None:  # pragma: no cover - guard
                    raise SimulationError(
                        "cannot snapshot a frame without a replay log; "
                        "the configuration was not built by KernelConfig"
                    )
                frame = (state.frame.invocation, tuple(state.frame.result_log))
                memory = state.frame.memory_at_invoke or {}
            stats = self._stats_snaps[pid]
            if stats is None:
                stats = _capture_stats(runtime.stats[pid])
                self._stats_snaps[pid] = stats
            processes.append(
                ProcessSnapshot(
                    pid=pid,
                    crashed=state.crashed,
                    memory=memory,
                    frame=frame,
                    stats=stats,
                    fingerprint=self._process_fingerprint(pid),
                )
            )
        return KernelSnapshot(
            step_count=runtime.step_count,
            events=self._events(),
            pool_state=runtime.pool.capture(),
            processes=tuple(processes),
            pool_fingerprints=runtime.pool.fingerprint_parts(),
        )

    # -- views -------------------------------------------------------------

    def fingerprint(self) -> Hashable:
        """Exact configuration-and-history dedup key.

        The same key whether the configuration was restored from a
        snapshot or rebuilt by replay — the parity the engine's
        ``parity`` mode asserts.  See
        :meth:`repro.sim.explore.explore_histories` for why the event
        sequence is included.
        """
        runtime = self.runtime
        return (
            tuple(
                (state.pid, runtime.stats[state.pid].invocations)
                for state in runtime.processes
            ),
            runtime.pool.snapshot_state(),
            tuple(
                self._process_fingerprint(pid)
                for pid in range(self.n_processes)
            ),
            self._events(),
        )

    def kernel_fingerprint(self) -> Hashable:
        """The configuration fingerprint *without* the event history.

        :meth:`fingerprint` includes the event sequence because safety
        verdicts depend on real-time order — but along any infinite run
        the history grows monotonically, so a repeated-configuration
        (lasso) detector must key on the forward-determining state only:
        pool state plus per-process frames/memories.  This is the
        incremental-cached equivalent of
        :func:`repro.sim.runtime.kernel_state_fingerprint` and must
        compute the same value — certificate replay compares against
        that shared definition.
        """
        runtime = self.runtime
        return (
            runtime.pool.snapshot_state(),
            tuple(
                self._process_fingerprint(pid)
                for pid in range(self.n_processes)
            ),
        )

    def _events(self) -> Tuple[object, ...]:
        events = self._events_tuple
        if events is None:
            events = tuple(self.runtime.events)
            self._events_tuple = events
        return events

    def _process_fingerprint(self, pid: int) -> Hashable:
        fp = self._process_fps[pid]
        if fp is None:
            # Cache miss: the only place exploration actually pays the
            # O(memory) hash — the hit rate is what the incremental
            # caches buy, so it is the number worth watching.
            rec = _obs_active()
            if rec is not None:
                rec.count("kernel/fingerprint_misses")
            fp = self.runtime.processes[pid].fingerprint()
            self._process_fps[pid] = fp
        return fp

    def history(self) -> History:
        return History(self.runtime.events, validate=False)

    @property
    def view(self):
        """The runtime's read-only view.

        Lets schedulers and crash plans (which consult a
        :class:`~repro.sim.runtime.RuntimeView`) participate in
        engine-driven decision loops such as the schedule fuzzer.
        """
        return self.runtime.view

    @property
    def n_processes(self) -> int:
        return self.implementation.n_processes

    def is_pending(self, pid: int) -> bool:
        return self.runtime.processes[pid].pending

    def is_crashed(self, pid: int) -> bool:
        return self.runtime.processes[pid].crashed

    def invocations_of(self, pid: int) -> int:
        return self.runtime.stats[pid].invocations

    def responses_of(self, pid: int) -> int:
        return self.runtime.stats[pid].responses

    def deciders(self) -> Tuple[int, ...]:
        """Processes that have completed at least one operation."""
        return tuple(
            pid
            for pid in range(self.n_processes)
            if self.runtime.stats[pid].responses > 0
        )
