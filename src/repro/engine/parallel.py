"""Process-pool parallel frontier exploration with shared dedup.

The exhaustive benchmarks explore configuration graphs whose per-node
cost is pure Python execution, so a process pool — not threads — is the
only way to use more than one core.  This module provides a
level-synchronous breadth-first frontier: the parent owns the frontier,
ships each depth level's undiscovered configurations to a
``multiprocessing`` pool, workers expand them by replay, and a
:class:`DedupTable` shared through a ``multiprocessing.Manager`` lets a
worker drop a configuration some other worker already produced *in the
same level* before shipping its (comparatively large) payload back.
The parent keeps the authoritative fingerprint → node map; the shared
table is a fast-path filter, so its content never affects which
configurations are explored, only how much data crosses process
boundaries.

Worker context travels by ``fork`` inheritance: implementation
factories are arbitrary callables (tests pass lambdas), which cannot be
pickled, but a forked child inherits the parent's module globals.  On
platforms without ``fork`` the engine falls back to serial exploration
— same results, one core.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.engine.config import ImplementationFactory, KernelConfig
from repro.engine.explorer import FingerprintFn, PruneFn, SuccessorFn
from repro.engine.frontier import SearchBudgetExceeded
from repro.sim.drivers import Decision


_MARKER_COUNTER = itertools.count()


def _call_marker() -> str:
    """A value unique to one ``add_if_new`` call, across processes.

    The pid disambiguates forked workers (which inherit the counter's
    current value); the counter disambiguates calls within a process.
    """
    return f"{os.getpid()}:{next(_MARKER_COUNTER)}"


def fingerprint_digest(fingerprint: Hashable) -> str:
    """A compact, cross-process-stable digest of a fingerprint.

    Fingerprints are canonical frozen structures whose ``repr`` is
    deterministic, so hashing the repr gives every process the same
    digest without pickling the (potentially large) fingerprint itself.
    """
    return hashlib.sha256(repr(fingerprint).encode()).hexdigest()


class DedupTable:
    """First-writer-wins membership table, optionally cross-process.

    ``add_if_new(key)`` returns ``True`` exactly once per key across
    all participating processes.  The ``managed`` backend uses a
    ``Manager().dict()`` whose proxied ``setdefault`` is a single remote
    operation executed serially by the manager process — the atomic
    test-and-set the parallel frontier relies on.
    """

    def __init__(self, backend: str = "local", manager=None):
        if backend == "local":
            self._table: Any = {}
        elif backend == "managed":
            self._manager = manager or multiprocessing.Manager()
            self._table = self._manager.dict()
        else:
            raise ValueError(f"unknown DedupTable backend {backend!r}")
        self.backend = backend

    def add_if_new(self, key: Hashable) -> bool:
        """Insert ``key``; ``True`` iff this call was the first to."""
        if self.backend == "local":
            if key in self._table:
                return False
            self._table[key] = True
            return True
        marker = _call_marker()
        return self._table.setdefault(key, marker) == marker

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._table

    def __getstate__(self):
        # Ship only the dict proxy across process boundaries: the
        # Manager object itself is not picklable, and a worker's copy
        # must talk to the *same* managed dict anyway.
        state = self.__dict__.copy()
        state.pop("_manager", None)
        return state


# ---------------------------------------------------------------------------
# Worker plumbing (fork-inherited context)
# ---------------------------------------------------------------------------

#: Set by the parent immediately before forking the pool; workers read it.
_WORKER_CONTEXT: Dict[str, Any] = {}


@dataclass(frozen=True)
class _Expansion:
    """One worker-produced expansion of a frontier schedule."""

    schedule: Tuple[Any, ...]
    fingerprint: Hashable
    digest: str
    choices: Tuple[Tuple[Any, Decision], ...]
    events: Tuple[object, ...]
    duplicate: bool  # another worker claimed this fingerprint first


def _expand_schedule(item: Tuple[Tuple[Any, ...], Tuple[Decision, ...]]) -> _Expansion:
    """Replay one schedule in a worker and report the configuration."""
    schedule, decisions = item
    context = _WORKER_CONTEXT
    config = KernelConfig.replay(
        context["factory"], tuple(context["root_decisions"]) + tuple(decisions)
    )
    if context["prune"] is not None and context["prune"](config):
        return _Expansion(schedule, None, "", (), (), duplicate=True)
    fingerprint = context["fingerprint"](config)
    digest = fingerprint_digest(fingerprint)
    shared: Optional[DedupTable] = context["shared_table"]
    if shared is not None and not shared.add_if_new(digest):
        return _Expansion(schedule, None, digest, (), (), duplicate=True)
    return _Expansion(
        schedule=schedule,
        fingerprint=fingerprint,
        digest=digest,
        choices=tuple(context["successors"](config)),
        events=tuple(config.runtime.events),
        duplicate=False,
    )


@dataclass
class ParallelVisit:
    """One unique configuration discovered by the parallel frontier."""

    fingerprint: Hashable
    schedule: Tuple[Any, ...]
    depth: int
    choices: Tuple[Tuple[Any, Decision], ...]
    events: Tuple[object, ...]


def parallel_explore(
    factory: ImplementationFactory,
    successors: SuccessorFn,
    root_decisions: Sequence[Decision] = (),
    fingerprint: Optional[FingerprintFn] = None,
    prune: Optional[PruneFn] = None,
    max_depth: Optional[int] = None,
    max_configurations: Optional[int] = None,
    processes: int = 2,
) -> Iterator[ParallelVisit]:
    """Level-synchronous parallel BFS over a kernel configuration graph.

    Yields one :class:`ParallelVisit` per unique configuration (by the
    parent's authoritative dedup), level by level.  Falls back to a
    single process when ``fork`` is unavailable or ``processes <= 1``.
    """
    fingerprint = fingerprint or (lambda config: config.fingerprint())
    use_pool = processes > 1 and "fork" in multiprocessing.get_all_start_methods()

    root = KernelConfig.replay(factory, root_decisions)
    if prune is not None and prune(root):
        return
    seen: Dict[Hashable, Tuple[Any, ...]] = {}
    root_fp = fingerprint(root)
    seen[root_fp] = ()
    root_choices = tuple(successors(root))
    yield ParallelVisit(root_fp, (), 0, root_choices, tuple(root.runtime.events))

    #: (schedule labels, decision path, choices) per frontier node.
    level: List[Tuple[Tuple[Any, ...], Tuple[Decision, ...], Tuple]] = [
        ((), (), root_choices)
    ]
    depth = 0

    manager = multiprocessing.Manager() if use_pool else None
    shared_table = DedupTable("managed", manager=manager) if use_pool else None
    if shared_table is not None:
        shared_table.add_if_new(fingerprint_digest(root_fp))

    context = {
        "factory": factory,
        "root_decisions": tuple(root_decisions),
        "successors": successors,
        "fingerprint": fingerprint,
        "prune": prune,
        "shared_table": shared_table,
    }

    pool = None
    if use_pool:
        # The context must be in place before the fork so workers inherit
        # it; manager proxies (the shared table) survive pickling anyway.
        _WORKER_CONTEXT.clear()
        _WORKER_CONTEXT.update(context)
        pool = multiprocessing.get_context("fork").Pool(processes)
    try:
        while level:
            if max_depth is not None and depth >= max_depth:
                break
            tasks = [
                (schedule + (label,), decisions + (decision,))
                for schedule, decisions, choices in level
                for label, decision in choices
            ]
            if pool is not None:
                expansions = pool.map(_expand_schedule, tasks, chunksize=8)
            else:
                _WORKER_CONTEXT.clear()
                _WORKER_CONTEXT.update(context)
                expansions = [_expand_schedule(task) for task in tasks]
            next_level = []
            for (schedule, decisions), expansion in zip(tasks, expansions):
                if expansion.duplicate or expansion.fingerprint in seen:
                    continue
                if (
                    max_configurations is not None
                    and len(seen) >= max_configurations
                ):
                    raise SearchBudgetExceeded(
                        f"search exceeded {max_configurations} unique nodes"
                    )
                seen[expansion.fingerprint] = schedule
                yield ParallelVisit(
                    expansion.fingerprint,
                    schedule,
                    depth + 1,
                    expansion.choices,
                    expansion.events,
                )
                next_level.append((schedule, decisions, expansion.choices))
            level = next_level
            depth += 1
    finally:
        if pool is not None:
            pool.close()
            pool.join()
        if manager is not None:
            manager.shutdown()
