"""The unified exploration engine.

One subsystem for every exhaustive search the repository performs:

* :mod:`repro.engine.frontier` — frontier strategies (BFS / DFS /
  iterative deepening) and the generic deduplicated
  :class:`~repro.engine.frontier.GraphSearch` they drive;
* :mod:`repro.engine.config` — snapshot/restore of kernel
  configurations, replacing per-node O(depth) replay with incremental
  restore (replay remains available behind the same interface);
* :mod:`repro.engine.explorer` — :class:`KernelExplorer`, the
  configuration-graph search used by history exploration and the
  valency search, with a parity mode asserting snapshot ≡ replay;
* :mod:`repro.engine.parallel` — process-pool frontier expansion with a
  shared fingerprint-dedup table;
* :mod:`repro.engine.batch` — batched execution of independent plays
  for the experiment batteries.

See ``docs/architecture.md`` for the determinism/fingerprint contract
all of this rests on.
"""

from repro.engine.batch import PlayTask, default_parallelism, run_play_batch
from repro.engine.config import (
    ImplementationFactory,
    KernelConfig,
    KernelSnapshot,
    ProcessSnapshot,
)
from repro.engine.explorer import (
    ConfigVisit,
    EngineParityError,
    KernelExplorer,
)
from repro.engine.frontier import (
    FIFOFrontier,
    Frontier,
    GraphSearch,
    IterativeDeepeningFrontier,
    LIFOFrontier,
    SearchBudgetExceeded,
    Visit,
    make_frontier,
)
from repro.engine.parallel import (
    DedupTable,
    ParallelVisit,
    fingerprint_digest,
    parallel_explore,
)

__all__ = [
    "ConfigVisit",
    "DedupTable",
    "EngineParityError",
    "FIFOFrontier",
    "Frontier",
    "GraphSearch",
    "ImplementationFactory",
    "IterativeDeepeningFrontier",
    "KernelConfig",
    "KernelExplorer",
    "KernelSnapshot",
    "LIFOFrontier",
    "ParallelVisit",
    "PlayTask",
    "ProcessSnapshot",
    "SearchBudgetExceeded",
    "Visit",
    "default_parallelism",
    "fingerprint_digest",
    "make_frontier",
    "parallel_explore",
    "run_play_batch",
]
