"""Frontier strategies and the generic graph search they drive.

Every exhaustive search in the repository — history exploration over
kernel configurations (:mod:`repro.sim.explore`), reachability and
cycle enumeration over I/O automata (:mod:`repro.automata.explorer`),
and the valency-style schedule search (:mod:`repro.adversaries.valency`)
— is an instance of the same loop: pop a node from a frontier, dedup it
by key, expand its labelled successors, push the new ones.  This module
factors that loop out once.

:class:`GraphSearch` is deliberately small: clients supply *roots* and
an ``expand(node) -> iterable[(label, child)]`` callback, and get back a
lazy iterator of :class:`Visit` records plus, on the search object,
``parents`` (key → (parent key, label)) and — when ``record_edges`` is
on — ``edges`` (key → {label: child key}), including edges that close
back into already-visited nodes, which is what cycle detection needs.

The frontier decides the order: :class:`FIFOFrontier` gives breadth
first (and therefore shortest paths in ``parents``),
:class:`LIFOFrontier` gives depth first, and
:class:`IterativeDeepeningFrontier` re-runs depth-first passes with a
growing bound (clients that want IDDFS use ``strategy="iddfs"`` on
:class:`GraphSearch`, which manages the restarts).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.obs.recorder import active as _obs_active

Node = TypeVar("Node")
Label = Any

#: Successor callback: labelled out-edges of one node.
Expand = Callable[[Node], Iterable[Tuple[Label, Node]]]


class SearchBudgetExceeded(RuntimeError):
    """The search would visit more unique nodes than its budget allows."""


@dataclass(frozen=True)
class Visit:
    """One newly visited (deduplicated) node."""

    node: Any
    key: Hashable
    depth: int
    parent_key: Optional[Hashable]
    label: Optional[Label]


class Frontier(Generic[Node]):
    """Pending-node container; the strategy lives in pop order."""

    def __init__(self) -> None:
        self._entries: deque = deque()

    def push(self, entry: Any) -> None:
        self._entries.append(entry)

    def pop(self) -> Any:
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)


class FIFOFrontier(Frontier):
    """Breadth-first order: pop the oldest entry."""

    def pop(self) -> Any:
        return self._entries.popleft()


class LIFOFrontier(Frontier):
    """Depth-first order: pop the newest entry."""

    def pop(self) -> Any:
        return self._entries.pop()


class IterativeDeepeningFrontier(LIFOFrontier):
    """Depth-first frontier for one pass of an iterative-deepening run.

    The pass bound is carried here so :class:`GraphSearch` can ask
    whether a node at a given depth may still be expanded in the current
    pass.
    """

    def __init__(self, bound: int) -> None:
        super().__init__()
        self.bound = bound


def make_frontier(strategy: str, depth_bound: Optional[int] = None) -> Frontier:
    """Frontier for a named strategy (``bfs``, ``dfs``, ``iddfs``)."""
    if strategy == "bfs":
        return FIFOFrontier()
    if strategy == "dfs":
        return LIFOFrontier()
    if strategy == "iddfs":
        return IterativeDeepeningFrontier(bound=depth_bound or 0)
    raise ValueError(f"unknown search strategy {strategy!r}")


class GraphSearch:
    """Deduplicated frontier search over an implicitly defined graph.

    Parameters
    ----------
    strategy:
        ``"bfs"``, ``"dfs"`` or ``"iddfs"``.
    key:
        Node → hashable dedup key; defaults to the node itself.
    max_nodes:
        Unique-node budget.  ``on_budget`` selects what hitting it does:
        ``"raise"`` (default) raises :class:`SearchBudgetExceeded`,
        ``"stop"`` ends the search quietly with the frontier dropped.
    max_depth:
        Nodes at this depth are visited but not expanded.
    record_edges:
        Also record every discovered edge — including edges into
        already-visited nodes — in :attr:`edges`.
    """

    def __init__(
        self,
        strategy: str = "bfs",
        key: Optional[Callable[[Any], Hashable]] = None,
        max_nodes: Optional[int] = None,
        max_depth: Optional[int] = None,
        on_budget: str = "raise",
        record_edges: bool = False,
    ):
        if on_budget not in ("raise", "stop"):
            raise ValueError(f"on_budget must be 'raise' or 'stop', got {on_budget!r}")
        self.strategy = strategy
        self.key = key or (lambda node: node)
        self.max_nodes = max_nodes
        self.max_depth = max_depth
        self.on_budget = on_budget
        self.record_edges = record_edges
        #: key -> (parent key, edge label); roots map to (None, root label).
        self.parents: Dict[Hashable, Tuple[Optional[Hashable], Optional[Label]]] = {}
        #: key -> {label: child key}; only when ``record_edges``.
        self.edges: Dict[Hashable, Dict[Label, Hashable]] = {}
        #: key -> depth at which the node was visited.
        self.depths: Dict[Hashable, int] = {}
        # The live frontier of the current pass, kept so expansion
        # callbacks can re-queue a node mid-search (see push_revisit).
        self._frontier: Optional[Frontier] = None

    # -- public API --------------------------------------------------------

    def run(
        self, roots: Iterable[Any], expand: Expand, root_labels: bool = False
    ) -> Iterator[Visit]:
        """Lazily yield one :class:`Visit` per unique node.

        ``roots`` is an iterable of nodes, or of ``(node, label)`` pairs
        when ``root_labels`` is set (the label is stored as the root's
        parent edge — useful when the roots are themselves successors of
        a virtual pre-root, as in cycle search).
        """
        roots = list(roots)
        if self.strategy == "iddfs":
            return self._run_iddfs(roots, expand, root_labels)
        return self._run_single_pass(
            roots, expand, root_labels, make_frontier(self.strategy)
        )

    def push_revisit(self, node: Any, key: Hashable, depth: Optional[int] = None) -> None:
        """Re-queue an already-visited key for another expansion pass.

        The partial-order reduction's state-caching repair
        (:mod:`repro.engine.dpor`): a state first expanded under a sleep
        set covers only its non-slept futures, so a later path arriving
        with an incompatible (smaller effective) sleep set must expand
        it again.  The re-queued node is popped and expanded like any
        frontier entry but yields **no** new :class:`Visit` (the key was
        already visited, counted, and reported) and leaves ``parents``
        untouched; only the not-yet-seen children it produces surface as
        visits.  ``depth`` defaults to the key's first-visit depth, so
        the re-expansion inherits the depth budget its subtree was
        originally measured under.  Only valid while :meth:`run` is
        consuming a single-pass strategy (``bfs``/``dfs``)."""
        if self._frontier is None:
            raise RuntimeError("push_revisit requires a running search")
        self._frontier.push((node, key, self.depths[key] if depth is None else depth))

    def path_labels(self, key: Hashable) -> Tuple[Label, ...]:
        """Edge labels along the discovered path from a root to ``key``
        (including the root's own label when roots were labelled)."""
        labels: List[Label] = []
        cursor: Optional[Hashable] = key
        while cursor is not None:
            parent, label = self.parents[cursor]
            if label is not None:
                labels.append(label)
            cursor = parent
        labels.reverse()
        return tuple(labels)

    def path_keys(self, key: Hashable) -> Tuple[Hashable, ...]:
        """Node keys along the discovered path from a root to ``key``."""
        keys: List[Hashable] = [key]
        cursor: Optional[Hashable] = key
        while True:
            parent, _label = self.parents[cursor]
            if parent is None:
                break
            keys.append(parent)
            cursor = parent
        keys.reverse()
        return tuple(keys)

    # -- internals ---------------------------------------------------------

    def _reset_state(self) -> None:
        self.parents.clear()
        self.edges.clear()
        self.depths.clear()

    def _run_single_pass(
        self,
        roots: List[Any],
        expand: Expand,
        root_labels: bool,
        frontier: Frontier,
        depth_bound: Optional[int] = None,
        allow_shallower_revisit: bool = False,
    ) -> Iterator[Visit]:
        self._reset_state()
        self._frontier = frontier
        # Fetched once per pass: the disabled-metrics cost inside the
        # loop is a single `is not None` check per pop/push/dedup.
        rec = _obs_active()
        bound = self.max_depth if depth_bound is None else depth_bound
        for entry in roots:
            node, label = entry if root_labels else (entry, None)
            key = self.key(node)
            if key in self.parents:
                continue
            self.parents[key] = (None, label)
            self.depths[key] = 0
            frontier.push((node, key, 0))
        # Roots count against the budget like any other visit.
        visited = 0
        pending_roots = list(frontier._entries)
        frontier._entries.clear()
        for node, key, depth in pending_roots:
            visited = self._check_budget(visited)
            if visited is None:
                return
            yield Visit(node, key, depth, None, self.parents[key][1])
            frontier.push((node, key, depth))
        while frontier:
            node, key, depth = frontier.pop()
            if rec is not None:
                rec.count("engine/frontier_pops")
            if bound is not None and depth >= bound:
                continue
            for label, child in expand(node):
                child_key = self.key(child)
                if self.record_edges:
                    self.edges.setdefault(key, {})[label] = child_key
                if child_key in self.parents:
                    # A depth-limited DFS pass may first reach a node via
                    # a long path; re-expanding it when a shorter path
                    # appears keeps iterative deepening complete.
                    if not (
                        allow_shallower_revisit
                        and depth + 1 < self.depths[child_key]
                    ):
                        if rec is not None:
                            rec.count("engine/dedup_hits")
                        continue
                else:
                    visited = self._check_budget(visited)
                    if visited is None:
                        return
                self.parents[child_key] = (key, label)
                self.depths[child_key] = depth + 1
                if rec is not None:
                    rec.count("engine/frontier_pushes")
                yield Visit(child, child_key, depth + 1, key, label)
                frontier.push((child, child_key, depth + 1))

    def _check_budget(self, visited: int) -> Optional[int]:
        """Count one visit against the budget; ``None`` means stop."""
        if self.max_nodes is not None and visited >= self.max_nodes:
            if self.on_budget == "raise":
                raise SearchBudgetExceeded(
                    f"search exceeded {self.max_nodes} unique nodes"
                )
            return None
        return visited + 1

    def _run_iddfs(
        self, roots: List[Any], expand: Expand, root_labels: bool
    ) -> Iterator[Visit]:
        """Depth-first passes with bound 1, 2, … up to ``max_depth``.

        Each pass re-searches from scratch; a node is re-yielded only if
        the pass finds it at a strictly shallower depth than any earlier
        pass did, so consumers see each key at its minimal depth exactly
        once overall — BFS semantics at DFS frontier size.
        """
        if self.max_depth is None:
            raise ValueError("iddfs requires max_depth")
        best: Dict[Hashable, int] = {}
        for bound in range(1, self.max_depth + 1):
            frontier = IterativeDeepeningFrontier(bound)
            new_this_pass = 0
            for visit in self._run_single_pass(
                roots,
                expand,
                root_labels,
                frontier,
                depth_bound=bound,
                allow_shallower_revisit=True,
            ):
                if visit.key in best and best[visit.key] <= visit.depth:
                    continue
                best[visit.key] = visit.depth
                new_this_pass += 1
                yield visit
            if new_this_pass == 0 and bound > 1:
                return  # the graph was exhausted by the previous pass
