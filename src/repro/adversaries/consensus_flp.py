"""Consensus adversaries (Section 4.1's corollary and Theorem 5.2).

Three artifacts:

* :func:`f1_adversary_set` / :func:`f2_adversary_set` — the paper's
  explicit six-history adversary sets w.r.t. wait-freedom and
  agreement & validity for register-based consensus.  ``F1`` contains
  the histories in which two processes propose different values with
  ``p_a`` invoking first and at least one of the two not deciding;
  ``F2`` is the process-swapped twin.  Their disjointness (every
  ``F1`` history begins with an event of ``p_a``, every ``F2`` history
  with one of ``p_b``) gives ``Gmax = ∅`` and Corollary 4.5.

* :class:`LockstepConsensusAdversary` — the concrete strategy behind
  the impossibility cited from Chor–Israeli–Li [5]: make both processes
  propose different values and advance them in strict alternation.
  Against the shipped register-only consensus this drives the run into
  a provable lasso in which neither process decides, witnessing that
  ``(1,2)``-freedom (and everything stronger) excludes agreement &
  validity (Theorem 5.2's negative half).  The adversary state is a
  two-value machine, so runs are exactly fingerprintable.

* :func:`histories_match_f1` — the predicate form of ``F1`` that
  recognises *prefixes*: used to validate that concrete plays populate
  the paper's adversary set.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple, TYPE_CHECKING

from repro.core.adversary import FiniteAdversarySet
from repro.core.events import Invocation, Response, is_invocation
from repro.core.history import History, history_of
from repro.sim.drivers import InvokeDecision, StepDecision, StopDecision
from repro.adversaries.base import AdversaryDriver

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.runtime import RuntimeView


def f1_adversary_set(
    first: int = 0, second: int = 1, v: Any = 0, v_prime: Any = 1, name: str = "F1"
) -> FiniteAdversarySet:
    """The paper's ``F1``: six histories, ``p_first`` invokes first.

    Verbatim from Section 4.1 (with the paper's ``p1, p2`` rendered as
    ``p_first, p_second`` and decisions as ``propose`` responses)::

        propose_1(v) . propose_2(v')
        propose_1(v) . v_1 . propose_2(v')
        propose_1(v) . propose_2(v') . v_1
        propose_1(v) . propose_2(v') . v'_1
        propose_1(v) . propose_2(v') . v_2
        propose_1(v) . propose_2(v') . v'_2
    """
    inv_first = Invocation(first, "propose", (v,))
    inv_second = Invocation(second, "propose", (v_prime,))

    def decide(pid: int, value: Any) -> Response:
        return Response(pid, "propose", value)

    histories = (
        history_of(inv_first, inv_second),
        history_of(inv_first, decide(first, v), inv_second),
        history_of(inv_first, inv_second, decide(first, v)),
        history_of(inv_first, inv_second, decide(first, v_prime)),
        history_of(inv_first, inv_second, decide(second, v)),
        history_of(inv_first, inv_second, decide(second, v_prime)),
    )
    return FiniteAdversarySet(histories, name=name)


def f2_adversary_set(v: Any = 0, v_prime: Any = 1) -> FiniteAdversarySet:
    """The process-swapped twin ``F2`` (``p2`` invokes first)."""
    return f1_adversary_set(first=1, second=0, v=v, v_prime=v_prime, name="F2")


def histories_match_f1(history: History, first: int = 0, second: int = 1) -> bool:
    """True if ``history`` extends the ``F1`` shape.

    The shape: the first two invocations are proposals by ``first``
    then ``second`` with different argument values, and at most one of
    the two processes has decided.  Concrete adversary plays are
    validated against this predicate (a play that stops inside ``F1``
    has a prefix literally in the six-history set).
    """
    invocations = [e for e in history if is_invocation(e)]
    if len(invocations) < 2:
        return False
    head, nxt = invocations[0], invocations[1]
    if (head.process, nxt.process) != (first, second):
        return False
    if head.operation != "propose" or nxt.operation != "propose":
        return False
    if head.args == nxt.args:
        return False
    deciders = {e.process for e in history.responses()}
    return len(deciders & {first, second}) <= 1


class LockstepConsensusAdversary(AdversaryDriver):
    """Propose different values, then alternate the two processes.

    Phases: invoke ``propose(v)`` on ``first``; invoke ``propose(v')``
    on ``second``; then strict alternation of steps, forever (the run
    ends by lasso or budget).  If either process ever decides, the
    strategy keeps playing — the liveness verdict on the resulting
    summary is what decides whether the implementation escaped.
    """

    def __init__(self, first: int = 0, second: int = 1, v: Any = 0, v_prime: Any = 1):
        self.first = first
        self.second = second
        self.v = v
        self.v_prime = v_prime
        self.name = f"lockstep-consensus(p{first} first)"
        self._phase = 0  # 0: invoke first, 1: invoke second, 2+: alternate
        self._turn = 0

    def decide(self, view: "RuntimeView"):
        if self._phase == 0:
            self._phase = 1
            return InvokeDecision(self.first, "propose", (self.v,))
        if self._phase == 1:
            self._phase = 2
            return InvokeDecision(self.second, "propose", (self.v_prime,))
        order = (self.first, self.second)
        for offset in range(2):
            pid = order[(self._turn + offset) % 2]
            if view.is_pending(pid):
                self._turn = (self._turn + offset + 1) % 2
                return StepDecision(pid)
        # Both processes decided: the implementation escaped the
        # adversary (expected for CAS/TAS-based consensus).
        self.escaped = True
        return StopDecision(reason="both processes decided", fair=True)

    def machine_state(self) -> Optional[Hashable]:
        return (self._phase, self._turn)

    def restore_machine_state(self, state: Hashable) -> None:
        self._phase, self._turn = state

    def reset(self) -> None:
        super().reset()
        self._phase = 0
        self._turn = 0
