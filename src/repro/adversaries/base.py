"""Adversary drivers: strategies that play against implementations.

An adversary (Section 4) "decides on a sequence of steps produced by a
scheduler and on invocations sent to implementation I" — in simulator
terms, it is a :class:`~repro.sim.drivers.Driver` with a goal: force a
fair run whose history stays inside the safety property while the
execution violates the target liveness property.

The adversaries shipped here are explicit finite state machines rather
than coroutines, for one load-bearing reason: their *entire* strategy
state is a small tuple, so :meth:`~repro.sim.drivers.Driver.fingerprint`
can expose it and runs can be certified by the lasso detector whenever
the implementation side cooperates (constant or shift-normalisable
state).  Horizon verdicts remain the fallback when stored response
values grow without bound (e.g. the ``v'+1`` writes of the TM
strategy).

This module provides the shared small-step helpers: invoke-then-await
bookkeeping for driving one process's operation to completion, and
round-robin awaiting for concurrent batches.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.sim.drivers import (
    Decision,
    Driver,
    InvokeDecision,
    StepDecision,
    StopDecision,
)
from repro.util.errors import AdversaryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.runtime import RuntimeView


class AdversaryDriver(Driver):
    """Base class for adversary strategies.

    Subclasses implement :meth:`decide` using the helpers below and
    expose their machine state via :meth:`machine_state` (folded into
    the driver fingerprint).
    """

    #: Set by subclasses when the implementation escaped the strategy
    #: (e.g. the target process committed): the play is then *not* a
    #: defeat, which the exclusion reports surface explicitly.
    escaped: bool = False

    @abstractmethod
    def machine_state(self) -> Optional[Hashable]:
        """The full strategy state, or ``None`` to disable lassos."""

    def restore_machine_state(self, state: Hashable) -> None:
        """Inverse of :meth:`machine_state` (branch restore).

        Subclasses that participate in the branching liveness search
        implement this; the default refuses so a missing implementation
        fails loudly instead of silently resuming a stale strategy.
        """
        raise NotImplementedError(
            f"adversary {self.name!r} does not support state restore"
        )

    def fingerprint(self) -> Optional[Hashable]:
        state = self.machine_state()
        if state is None:
            return None
        return (type(self).__name__, state)

    def reset(self) -> None:
        self.escaped = False

    # -- capture/restore (Driver contract) ----------------------------------

    def capture_state(self) -> Hashable:
        """Machine state plus the :attr:`escaped` flag, restorable."""
        return (self.machine_state(), self.escaped)

    def restore_state(self, state: Hashable) -> None:
        machine_state, escaped = state
        self.restore_machine_state(machine_state)
        self.escaped = escaped

    # -- small-step helpers -------------------------------------------------

    @staticmethod
    def await_one(view: "RuntimeView", pid: int) -> Optional[Any]:
        """If ``pid`` is mid-operation, return ``None`` (caller should
        emit a step); once the response arrived, return its value."""
        if view.is_pending(pid):
            return None
        response = view.last_response(pid)
        if response is None:
            raise AdversaryError(
                f"await_one(p{pid}) called before any invocation completed"
            )
        return response.value
