"""Valency-style schedule search: reconstructing [5] mechanically.

The Chor–Israeli–Li impossibility (cited for Theorem 5.2 and Corollary
4.5) proves that for *any* register-based consensus implementation and
two processes proposing different values, some schedule makes at least
one of them run forever without deciding.  For a concrete deterministic
implementation that argument becomes a graph search: configurations of
(implementation state × process frames) form a finite graph once the
implementation offers a liveness abstraction (or has genuinely finite
state), and a non-deciding infinite schedule is exactly a cycle in the
sub-graph of configurations where the adversary's target has not
decided.

:func:`find_nondeciding_schedule` delegates the graph construction to
the unified exploration engine (:class:`repro.engine.KernelExplorer`):
a BFS over configurations reachable by stepping only group members,
deduplicated on the implementation's liveness abstraction, with fully
decided configurations pruned (they can never lie on a witness cycle).
In the default ``snapshot`` mode each edge restores an incremental
configuration snapshot; ``mode="replay"`` reproduces the seed's
quadratic re-execution, and ``mode="parity"`` runs both and fails on
any divergence.  Whatever the mode, a found witness is independently
*verified by replay*: the schedule is re-executed from scratch and the
fingerprint must repeat with no new decisions.

For implementations the impossibility does *not* apply to (CAS- or
TAS-based consensus), the search exhausts the reachable graph and
returns ``None`` — the experiments use that as the positive control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.engine.config import KernelConfig
from repro.engine.explorer import KernelExplorer
from repro.sim.drivers import InvokeDecision, ScriptedDriver, StepDecision
from repro.sim.kernel import Implementation
from repro.sim.runtime import Runtime
from repro.util.errors import AdversaryError, SimulationError


@dataclass(frozen=True)
class ScheduleWitness:
    """A non-deciding infinite schedule ``stem · cycle^ω``.

    ``stem`` and ``cycle`` are pid sequences applied after both
    proposals have been invoked; ``deciders`` are the processes that
    decided during the stem (at most one, never the whole group).
    """

    stem: Tuple[int, ...]
    cycle: Tuple[int, ...]
    deciders: Tuple[int, ...]

    def unrolled(self, repetitions: int = 2) -> Tuple[int, ...]:
        """The finite prefix ``stem · cycle^repetitions``."""
        return self.stem + self.cycle * repetitions


def _proposal_decisions(proposals: Sequence[Any]) -> List[InvokeDecision]:
    return [
        InvokeDecision(pid, "propose", (value,))
        for pid, value in enumerate(proposals)
        if value is not None
    ]


def _runtime_abstraction(implementation: Implementation, runtime: Runtime) -> Tuple:
    """(abstraction-or-exact-state, pending operations) of a runtime —
    the mode-independent part of the valency dedup key, shared between
    the engine-driven search and the independent replay verifier."""
    abstraction = implementation.liveness_abstraction(
        runtime.pool, tuple(state.memory for state in runtime.processes)
    )
    if abstraction is None:
        abstraction = (
            runtime.pool.snapshot_state(),
            tuple(state.fingerprint() for state in runtime.processes),
        )
    pending = tuple(
        state.frame.invocation.operation if state.frame is not None else None
        for state in runtime.processes
    )
    return abstraction, pending


def _abstraction_fingerprint(config: KernelConfig) -> Hashable:
    """The valency dedup key: liveness abstraction (or exact state),
    pending operations, and who has decided."""
    abstraction, pending = _runtime_abstraction(config.implementation, config.runtime)
    return (abstraction, pending, config.deciders())


def _replay(
    implementation_factory: Callable[[], Implementation],
    proposals: Sequence[Any],
    schedule: Sequence[int],
) -> Tuple[Optional[Hashable], Tuple[int, ...], bool]:
    """Run proposals then ``schedule``; return (fingerprint, deciders,
    all_decided).

    Witness verification deliberately bypasses the engine's snapshot
    machinery: re-executing from scratch is an independent code path, so
    a verified witness certifies the search result regardless of mode.
    """
    implementation = implementation_factory()
    decisions: List[object] = list(_proposal_decisions(proposals))
    decisions.extend(StepDecision(pid) for pid in schedule)
    driver = ScriptedDriver(decisions, name="valency-replay")
    runtime = Runtime(implementation, driver, max_steps=len(decisions) + 1,
                      detect_lasso=False)
    try:
        result = runtime.run()
    except SimulationError:
        # The schedule stepped a process with no pending operation (it
        # already decided): such an extension is not a step of the real
        # system — callers must skip it rather than treat it as a no-op
        # (a no-op self-loop would fabricate cycles).
        return None, (), False
    deciders = tuple(
        pid
        for pid in range(implementation.n_processes)
        if result.stats[pid].responses > 0
    )
    all_decided = all(
        result.stats[pid].responses > 0
        for pid, value in enumerate(proposals)
        if value is not None
    )
    abstraction, pending = _runtime_abstraction(implementation, runtime)
    fingerprint = (abstraction, pending, deciders)
    return fingerprint, deciders, all_decided


def find_nondeciding_schedule(
    implementation_factory: Callable[[], Implementation],
    proposals: Sequence[Any] = (0, 1),
    group: Sequence[int] = (0, 1),
    max_configs: int = 5_000,
    mode: str = "snapshot",
) -> Optional[ScheduleWitness]:
    """Search for an infinite schedule on which the group never fully
    decides.

    BFS over configurations reached by scheduling only ``group``
    members; an edge into an already-visited fingerprint closes a
    cycle, and any cycle among not-all-decided configurations is a
    witness.  Returns ``None`` when the reachable graph is exhausted
    without finding one (wait-free implementations).  Soundness rests
    on the fingerprint being a complete configuration (the same
    bisimulation contract the lasso detector uses): then the successor
    fingerprints of a node are independent of which schedule reached it.
    """
    group = tuple(group)
    proposers = [pid for pid, value in enumerate(proposals) if value is not None]

    def successors(config: KernelConfig):
        return [
            (pid, StepDecision(pid)) for pid in group if config.is_pending(pid)
        ]

    def all_decided(config: KernelConfig) -> bool:
        return all(config.responses_of(pid) > 0 for pid in proposers)

    # Phase 1: build the not-all-decided configuration graph.
    explorer = KernelExplorer(
        implementation_factory,
        successors,
        root_decisions=_proposal_decisions(proposals),
        mode=mode,
        strategy="bfs",
        fingerprint=_abstraction_fingerprint,
        prune=all_decided,
        max_configurations=max_configs,
        on_budget="stop",
        record_edges=True,
    )
    schedules: Dict[Hashable, Tuple[int, ...]] = {}
    deciders_at: Dict[Hashable, Tuple[int, ...]] = {}
    for visit in explorer.run():
        schedules[visit.fingerprint] = visit.schedule
        deciders_at[visit.fingerprint] = visit.config.deciders()
    if not schedules:
        return None  # the root itself was fully decided
    edges = explorer.edges

    # Phase 2: find any cycle in the explored graph (iterative DFS with
    # colour marking; the pid labels along the cycle form the schedule).
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[Hashable, int] = {node: WHITE for node in schedules}
    parent_edge: Dict[Hashable, Tuple[Hashable, int]] = {}

    def extract_cycle(back_from: Hashable, back_to: Hashable, pid: int) -> ScheduleWitness:
        labels = [pid]
        node = back_from
        while node != back_to:
            previous, label = parent_edge[node]
            labels.append(label)
            node = previous
        labels.reverse()
        witness = ScheduleWitness(
            stem=schedules[back_to],
            cycle=tuple(labels),
            deciders=deciders_at.get(back_to, ()),
        )
        _verify_witness(implementation_factory, proposals, witness)
        return witness

    for start in schedules:
        if colour[start] != WHITE:
            continue
        stack: List[Tuple[Hashable, Optional[object]]] = [(start, None)]
        while stack:
            node, iterator = stack[-1]
            if iterator is None:
                colour[node] = GREY
                iterator = iter(sorted(edges.get(node, {}).items()))
                stack[-1] = (node, iterator)
            advanced = False
            for pid, successor in iterator:  # type: ignore[union-attr]
                if successor not in colour:
                    continue  # beyond the explored frontier
                if colour[successor] == GREY:
                    return extract_cycle(node, successor, pid)
                if colour[successor] == WHITE:
                    parent_edge[successor] = (node, pid)
                    stack.append((successor, None))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def _verify_witness(
    implementation_factory: Callable[[], Implementation],
    proposals: Sequence[Any],
    witness: ScheduleWitness,
) -> None:
    """Re-run ``stem·cycle`` and ``stem·cycle·cycle`` and confirm the
    fingerprint repeats with no additional decisions."""
    fp_once, deciders_once, done_once = _replay(
        implementation_factory, proposals, witness.stem + witness.cycle
    )
    fp_twice, deciders_twice, done_twice = _replay(
        implementation_factory, proposals, witness.stem + witness.cycle * 2
    )
    if fp_once is None or fp_twice is None:
        raise AdversaryError("witness schedule is not executable")
    if done_once or done_twice:
        raise AdversaryError("witness schedule decides; search is inconsistent")
    if fp_once != fp_twice:
        raise AdversaryError(
            "witness cycle does not repeat the configuration fingerprint"
        )
    if deciders_once != deciders_twice:
        raise AdversaryError("witness cycle produces new decisions")
