"""The three-step TM adversary of Section 4.1 (from [4]).

The strategy starves process ``victim`` while keeping the history
opaque, defeating local progress — and with it every biprogressing
liveness property, in particular ``(2,2)``-freedom (Theorem 5.3's
negative half) — against *any* opaque TM:

1. **Step 1** — ``victim`` starts a transaction and reads ``x``
   (retrying whole-step on abort), obtaining ``v'``.
2. **Step 2** — ``helper`` starts, reads ``x`` (``v''``), writes
   ``v' + 1``, and commits (retrying whole-step on abort).
3. **Step 3** — ``victim`` writes ``v'' + 1`` and tries to commit; on
   abort the adversary returns to Step 1.  If the commit *succeeds*
   the adversary stops and records that the implementation escaped
   (possible only for implementations that are not opaque, or not
   defeated by this strategy — the paper's theorem says opaque ones
   always abort here, which the experiments confirm empirically).

The paper builds two intensional adversary sets from this strategy:
``F1`` (as above) and the process-swapped ``F2``.  Every ``F1`` history
begins with ``start_victim`` and every ``F2`` history with
``start_helper``, so the sets are disjoint and Corollary 4.6 follows.
:func:`play_adversary_set` materialises the finite fragments (one
history per registered implementation) used by the ``cor46``
experiment.

Fingerprinting: the machine state includes the stored read values,
which grow by one per cycle against a committing TM — so such runs end
at the horizon (documented in EXPERIMENTS.md).  Against the trivial
always-abort TM the stored values never change and runs end in a
proved lasso.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple, TYPE_CHECKING

from repro.objects.tm import ABORTED, COMMITTED
from repro.sim.drivers import InvokeDecision, StepDecision, StopDecision
from repro.util.errors import AdversaryError
from repro.util.freeze import freeze
from repro.util.plaincopy import plain_copy
from repro.adversaries.base import AdversaryDriver

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.runtime import RuntimeView

#: (pc, pid-role, operation, args-builder) rows of the strategy table.
#: Transitions are encoded in :meth:`TMLocalProgressAdversary._advance`.
_PCS = (
    "1-start",
    "1-read",
    "2-start",
    "2-read",
    "2-write",
    "2-tryC",
    "3-write",
    "3-tryC",
)


class TMLocalProgressAdversary(AdversaryDriver):
    """Explicit state machine for the three-step strategy."""

    def __init__(self, victim: int = 0, helper: int = 1, variable: Any = 0):
        self.victim = victim
        self.helper = helper
        self.variable = variable
        self.name = f"tm-local-progress(victim=p{victim})"
        self._pc = "1-start"
        self._awaiting: Optional[int] = None
        self._v_prime: Any = None  # victim's Step-1 read
        self._v_second: Any = None  # helper's Step-2 read
        self._stopped = False

    # -- decision loop ---------------------------------------------------------

    def decide(self, view: "RuntimeView"):
        if self._stopped:
            return StopDecision(reason="adversary finished", fair=False)
        if self._awaiting is not None:
            pid = self._awaiting
            if view.is_pending(pid):
                return StepDecision(pid)
            response = view.last_response(pid)
            if response is None:
                raise AdversaryError("awaited process has no response")
            self._awaiting = None
            self._advance(response.value)
            if self._stopped:
                return StopDecision(reason="victim committed", fair=False)
        pid, operation, args = self._current_invocation()
        self._awaiting = pid
        return InvokeDecision(pid, operation, args)

    def _current_invocation(self) -> Tuple[int, str, Tuple[Any, ...]]:
        x = self.variable
        pc = self._pc
        if pc == "1-start":
            return (self.victim, "start", ())
        if pc == "1-read":
            return (self.victim, "read", (x,))
        if pc == "2-start":
            return (self.helper, "start", ())
        if pc == "2-read":
            return (self.helper, "read", (x,))
        if pc == "2-write":
            return (self.helper, "write", (x, _plus_one(self._v_prime)))
        if pc == "2-tryC":
            return (self.helper, "tryC", ())
        if pc == "3-write":
            return (self.victim, "write", (x, _plus_one(self._v_second)))
        if pc == "3-tryC":
            return (self.victim, "tryC", ())
        raise AdversaryError(f"unknown pc {pc!r}")  # pragma: no cover

    def _advance(self, value: Any) -> None:
        """Strategy transition on the response just received."""
        pc = self._pc
        if value is ABORTED:
            if pc in ("1-start", "1-read"):
                self._pc = "1-start"  # repeat Step 1
            elif pc in ("2-start", "2-read", "2-write", "2-tryC"):
                self._pc = "2-start"  # repeat Step 2
            else:  # Step 3 aborted: back to Step 1
                self._pc = "1-start"
            return
        if pc == "1-start":
            self._pc = "1-read"
        elif pc == "1-read":
            self._v_prime = value
            self._pc = "2-start"
        elif pc == "2-start":
            self._pc = "2-read"
        elif pc == "2-read":
            self._v_second = value
            self._pc = "2-write"
        elif pc == "2-write":
            self._pc = "2-tryC"
        elif pc == "2-tryC":
            if value is not COMMITTED:
                raise AdversaryError(f"tryC returned {value!r}")
            self._pc = "3-write"
        elif pc == "3-write":
            self._pc = "3-tryC"
        elif pc == "3-tryC":
            if value is not COMMITTED:
                raise AdversaryError(f"tryC returned {value!r}")
            # The victim committed: the strategy's game is over and the
            # implementation escaped (cannot happen for opaque TMs, per
            # the impossibility of [4]).
            self.escaped = True
            self._stopped = True

    # -- fingerprints / reset ------------------------------------------------------

    def machine_state(self) -> Optional[Hashable]:
        return (
            self._pc,
            self._awaiting,
            freeze(self._v_prime),
            freeze(self._v_second),
            self._stopped,
        )

    def capture_state(self) -> Hashable:
        # Deliberately NOT machine_state(): that freeze()s the stored
        # read values for hashing, and restoring frozen encodings would
        # corrupt the strategy's later writes for non-scalar values.
        # Capture the raw values (copied — they may be mutable).
        return (
            self._pc,
            self._awaiting,
            plain_copy(self._v_prime),
            plain_copy(self._v_second),
            self._stopped,
            self.escaped,
        )

    def restore_state(self, state: Hashable) -> None:
        (self._pc, self._awaiting, v_prime, v_second,
         self._stopped, self.escaped) = state
        self._v_prime = plain_copy(v_prime)
        self._v_second = plain_copy(v_second)

    def reset(self) -> None:
        super().reset()
        self._pc = "1-start"
        self._awaiting = None
        self._v_prime = None
        self._v_second = None
        self._stopped = False


def _plus_one(value: Any) -> Any:
    """The paper's ``v + 1`` on read values (integers in our runs)."""
    if value is None:
        raise AdversaryError("strategy wrote before reading")
    return value + 1
