"""The Section 5.3 three-process adversary against property ``S``.

The strategy exhibiting that ``(1,3)``-freedom excludes the
counterexample property ``S`` (opacity + timestamp abort rule):

1. **Step 1** — processes ``p_0, p_1, p_2`` concurrently invoke
   ``start()`` and each waits for its response;
2. **Step 2** — the processes that were not aborted in Step 1
   concurrently invoke ``tryC()`` and wait; if *every* process received
   an abort the adversary returns to Step 1, otherwise it stops.

Against any implementation ensuring ``S``, Step 2 can never produce a
commit: the three current transactions are the ``t``-th of their
processes, pairwise concurrent, and each ``tryC`` is invoked after the
other two ``start`` responses — the timestamp rule forces all three to
abort.  The loop therefore runs forever and no process ever commits,
violating ``(1,3)``-freedom (three steppers, three correct, zero
progressors).

Concurrency realisation: invocations are issued back-to-back (no steps
in between) and the awaiting is round-robin, so all group members'
transactions overlap — which is all "concurrent" means in the
interleaving model.

Against ``I(1,2)`` the run is certified by a proved lasso: the
adversary state is a small machine and ``I(1,2)``'s timestamp-shift
abstraction repeats each cycle.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.objects.tm import ABORTED, COMMITTED, OK
from repro.sim.drivers import InvokeDecision, StepDecision, StopDecision
from repro.util.errors import AdversaryError
from repro.adversaries.base import AdversaryDriver

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.runtime import RuntimeView


class CounterexampleAdversary(AdversaryDriver):
    """Concurrent start / concurrent tryC, repeated forever."""

    def __init__(self, group: Sequence[int] = (0, 1, 2)):
        if len(group) < 3:
            raise ValueError("the Section 5.3 strategy needs at least 3 processes")
        self.group = tuple(group)
        self.name = f"counterexample-s({','.join('p%d' % p for p in self.group)})"
        self._phase = "start-invoke"
        self._cursor = 0  # next group member to invoke in the current batch
        self._turn = 0  # round-robin pointer for awaiting
        self._ok: Tuple[int, ...] = ()  # members whose start returned OK
        self._stopped = False

    # -- decision loop ---------------------------------------------------------

    def decide(self, view: "RuntimeView"):
        if self._stopped:
            return StopDecision(reason="adversary finished", fair=False)
        if self._phase == "start-invoke":
            if self._cursor < len(self.group):
                pid = self.group[self._cursor]
                self._cursor += 1
                return InvokeDecision(pid, "start", ())
            self._phase = "start-await"
            self._cursor = 0
        if self._phase == "start-await":
            pending = [p for p in self.group if view.is_pending(p)]
            if pending:
                return self._round_robin_step(pending)
            self._ok = tuple(
                p
                for p in self.group
                if view.last_response(p) is not None
                and view.last_response(p).value is OK
            )
            if not self._ok:
                # Everyone aborted at start: repeat Step 1.
                self._phase = "start-invoke"
                return self.decide(view)
            self._phase = "tryc-invoke"
        if self._phase == "tryc-invoke":
            if self._cursor < len(self._ok):
                pid = self._ok[self._cursor]
                self._cursor += 1
                return InvokeDecision(pid, "tryC", ())
            self._phase = "tryc-await"
            self._cursor = 0
        if self._phase == "tryc-await":
            pending = [p for p in self._ok if view.is_pending(p)]
            if pending:
                return self._round_robin_step(pending)
            outcomes = [view.last_response(p).value for p in self._ok]
            if any(value is COMMITTED for value in outcomes):
                self.escaped = True
                self._stopped = True
                return StopDecision(reason="a transaction committed", fair=False)
            if any(value is not ABORTED for value in outcomes):
                raise AdversaryError(f"unexpected tryC outcomes {outcomes!r}")
            # All aborted: back to Step 1.
            self._phase = "start-invoke"
            self._ok = ()
            return self.decide(view)
        raise AdversaryError(f"unknown phase {self._phase!r}")  # pragma: no cover

    def _round_robin_step(self, pending: List[int]) -> StepDecision:
        for offset in range(len(self.group)):
            index = (self._turn + offset) % len(self.group)
            pid = self.group[index]
            if pid in pending:
                self._turn = (index + 1) % len(self.group)
                return StepDecision(pid)
        raise AdversaryError("no pending process to step")  # pragma: no cover

    # -- fingerprints / reset ------------------------------------------------------

    def machine_state(self) -> Optional[Hashable]:
        return (self._phase, self._cursor, self._turn, self._ok, self._stopped)

    def reset(self) -> None:
        super().reset()
        self._phase = "start-invoke"
        self._cursor = 0
        self._turn = 0
        self._ok = ()
        self._stopped = False
