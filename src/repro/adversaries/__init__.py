"""Adversary strategies from the paper, as simulator drivers."""

from repro.adversaries.base import AdversaryDriver
from repro.adversaries.consensus_flp import (
    LockstepConsensusAdversary,
    f1_adversary_set,
    f2_adversary_set,
    histories_match_f1,
)
from repro.adversaries.tm_local_progress import TMLocalProgressAdversary
from repro.adversaries.counterexample import CounterexampleAdversary
from repro.adversaries.valency import ScheduleWitness, find_nondeciding_schedule

__all__ = [
    "AdversaryDriver",
    "LockstepConsensusAdversary",
    "f1_adversary_set",
    "f2_adversary_set",
    "histories_match_f1",
    "TMLocalProgressAdversary",
    "CounterexampleAdversary",
    "ScheduleWitness",
    "find_nondeciding_schedule",
]
