"""The content-addressed verdict cache (SQLite WAL, campaign idioms).

One file maps cache keys (:func:`repro.service.keys.cache_key`) to full
verdict documents, plus a content-addressed artifact table holding the
replayable counterexample/lasso sub-documents by their own SHA-256 —
``GET /v1/artifacts/{hash}`` serves straight from it, and two verdicts
that shrank to the same witness share one artifact row.

Byte-identity contract: :meth:`VerdictCache.get` returns exactly the
document :meth:`VerdictCache.put` stored (the canonical JSON text is
the stored representation), so a cached re-verify serialises
byte-identically to the cold run that populated it — the property the
``serve-smoke`` CI job and ``bench_service`` gate assert.

Same durability idioms as :mod:`repro.campaign.store`: WAL journaling,
``synchronous=NORMAL``, a busy timeout, one transaction per mutation —
any number of readers and writers (the serve executor's worker
processes all write here) can share the file.

Obs counters (PR 7 recorder, no-op when no recorder is active):
``cache/hit``, ``cache/miss``, ``cache/store``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time

from typing import Any, Dict, List, Optional

from repro.obs.recorder import active as _obs_active
from repro.service.keys import code_version
from repro.util.errors import UsageError, unknown_choice
from repro.util.hashing import canonical_fingerprint, canonical_json

#: Bump on any incompatible schema or key-contract change.
CACHE_SCHEMA_VERSION = 1

#: ``verify()`` cache modes: disabled entirely, read-only (hits served,
#: misses computed but not stored), or read-write (the service default).
CACHE_MODES = ("off", "read", "readwrite")

#: Default cache path; ``REPRO_CACHE_DB`` overrides it process-wide
#: (the campaign worker pool inherits it through the environment).
DEFAULT_CACHE_DB = "verdicts.db"
CACHE_DB_ENV = "REPRO_CACHE_DB"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS verdicts (
    key        TEXT PRIMARY KEY,
    scenario   TEXT NOT NULL,
    backend    TEXT NOT NULL,
    code       TEXT NOT NULL,
    document   TEXT NOT NULL,
    created_at REAL NOT NULL,
    hits       INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS verdicts_code ON verdicts(code);
CREATE INDEX IF NOT EXISTS verdicts_scenario ON verdicts(scenario, backend);
CREATE TABLE IF NOT EXISTS artifacts (
    hash     TEXT PRIMARY KEY,
    kind     TEXT NOT NULL,
    document TEXT NOT NULL
);
"""


def check_cache_mode(mode: str) -> str:
    """Validate a cache mode (:class:`UsageError` on anything else)."""
    if mode not in CACHE_MODES:
        raise unknown_choice("cache mode", mode, CACHE_MODES)
    return mode


def default_cache_path(path: Optional[str] = None) -> str:
    """Resolve the cache path: explicit argument, then the
    ``REPRO_CACHE_DB`` environment variable, then ``verdicts.db``."""
    if path:
        return path
    return os.environ.get(CACHE_DB_ENV, "").strip() or DEFAULT_CACHE_DB


def artifact_hash(document: Dict[str, Any]) -> str:
    """The content address of one replayable artifact document."""
    return canonical_fingerprint(document)


class VerdictCache:
    """One verdict cache file (see module docstring)."""

    def __init__(self, path: str, create: bool = True):
        if not create and not os.path.exists(path):
            raise UsageError(f"no verdict cache at {path!r}")
        self.path = path
        self._conn = sqlite3.connect(path, timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            with self._conn:
                self._conn.executescript(_SCHEMA)
                self._conn.execute(
                    "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(CACHE_SCHEMA_VERSION)),
                )
            version = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise UsageError(
                f"{path!r} is not a verdict cache: {exc}"
            ) from None
        if version is None or version["value"] != str(CACHE_SCHEMA_VERSION):
            found = None if version is None else version["value"]
            self._conn.close()
            raise UsageError(
                f"{path!r} is not a verdict cache (schema version "
                f"{found!r}, expected {CACHE_SCHEMA_VERSION!r})"
            )

    @classmethod
    def open(cls, path: Optional[str] = None) -> "VerdictCache":
        """Open (creating if absent) the cache at ``path`` — resolved
        through :func:`default_cache_path`."""
        return cls(default_cache_path(path), create=True)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "VerdictCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the read path ------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored verdict document for ``key``, or ``None``.

        Counts ``cache/hit`` / ``cache/miss`` on the active recorder
        and bumps the row's ``hits`` column (observability only; the
        returned document is exactly the stored one).
        """
        row = self._conn.execute(
            "SELECT document FROM verdicts WHERE key = ?", (key,)
        ).fetchone()
        recorder = _obs_active()
        if row is None:
            if recorder is not None:
                recorder.count("cache/miss")
            return None
        if recorder is not None:
            recorder.count("cache/hit")
        with self._conn:
            self._conn.execute(
                "UPDATE verdicts SET hits = hits + 1 WHERE key = ?", (key,)
            )
        return json.loads(row["document"])

    def artifact(self, hash_: str) -> Optional[Dict[str, Any]]:
        """The artifact document stored under ``hash_``, or ``None``."""
        row = self._conn.execute(
            "SELECT document FROM artifacts WHERE hash = ?", (hash_,)
        ).fetchone()
        return None if row is None else json.loads(row["document"])

    def artifact_hashes(self, key: str) -> List[str]:
        """Content addresses of the artifacts embedded in the verdict
        stored under ``key`` (empty when no violation was witnessed)."""
        document = self._conn.execute(
            "SELECT document FROM verdicts WHERE key = ?", (key,)
        ).fetchone()
        if document is None:
            return []
        loaded = json.loads(document["document"])
        return [
            artifact_hash(loaded[field])
            for field in ("counterexample", "lasso")
            if field in loaded
        ]

    # -- the write path -----------------------------------------------------

    def put(
        self,
        key: str,
        document: Dict[str, Any],
        code: Optional[str] = None,
    ) -> None:
        """Store one verdict document under ``key`` (idempotent:
        re-storing a key replaces the row — verdicts are deterministic
        functions of their key, so the document can only be equal).

        The embedded counterexample/lasso sub-documents are also
        indexed content-addressed in the artifact table.  Counts
        ``cache/store``.
        """
        artifacts = [
            (artifact_hash(document[field]), field, canonical_json(document[field]))
            for field in ("counterexample", "lasso")
            if field in document
        ]
        with self._conn:
            self._conn.execute(
                "INSERT INTO verdicts "
                "(key, scenario, backend, code, document, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(key) DO UPDATE SET document = excluded.document",
                (
                    key,
                    str(document.get("scenario", "?")),
                    str(document.get("backend", "?")),
                    code if code is not None else code_version(),
                    canonical_json(document),
                    time.time(),
                ),
            )
            self._conn.executemany(
                "INSERT OR IGNORE INTO artifacts (hash, kind, document) "
                "VALUES (?, ?, ?)",
                artifacts,
            )
        recorder = _obs_active()
        if recorder is not None:
            recorder.count("cache/store")

    # -- maintenance --------------------------------------------------------

    def gc(self, keep_code: Optional[str] = None) -> int:
        """Evict verdicts whose code-version component differs from
        ``keep_code`` (default: the current :func:`code_version`), then
        drop artifacts no surviving verdict references.  Returns the
        number of verdict rows evicted."""
        keep = keep_code if keep_code is not None else code_version()
        with self._conn:
            evicted = self._conn.execute(
                "DELETE FROM verdicts WHERE code != ?", (keep,)
            ).rowcount
            referenced = set()
            for row in self._conn.execute("SELECT document FROM verdicts"):
                loaded = json.loads(row["document"])
                for field in ("counterexample", "lasso"):
                    if field in loaded:
                        referenced.add(artifact_hash(loaded[field]))
            for row in self._conn.execute("SELECT hash FROM artifacts"):
                if row["hash"] not in referenced:
                    self._conn.execute(
                        "DELETE FROM artifacts WHERE hash = ?", (row["hash"],)
                    )
        return evicted

    def stats(self) -> Dict[str, Any]:
        """Cache-wide counts: verdicts, artifacts, hits served, and a
        per-code-version breakdown (stale entries are visible here
        before ``gc`` evicts them)."""
        verdicts = self._conn.execute(
            "SELECT COUNT(*) AS n, COALESCE(SUM(hits), 0) AS hits "
            "FROM verdicts"
        ).fetchone()
        artifacts = self._conn.execute(
            "SELECT COUNT(*) AS n FROM artifacts"
        ).fetchone()
        by_code = {
            row["code"]: row["n"]
            for row in self._conn.execute(
                "SELECT code, COUNT(*) AS n FROM verdicts "
                "GROUP BY code ORDER BY code"
            )
        }
        return {
            "path": self.path,
            "verdicts": verdicts["n"],
            "artifacts": artifacts["n"],
            "hits": verdicts["hits"],
            "by_code": by_code,
            "current_code": code_version(),
        }
