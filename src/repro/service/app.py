"""The verification service application: routes, jobs, executor.

Transport-free by design — :class:`ServiceApp` maps ``(method, path,
body)`` to ``(status, document)`` and owns the request lifecycle; the
HTTP framing lives in :mod:`repro.service.server`, and tests can drive
the app directly.

The submit/poll/fetch shape::

    POST /v1/verify        {"scenario": id, "backend": b?, "overrides": {...}?}
      -> 200 {"status": "done", "cached": true, "key": k, "verdict": {...}}
         (cache hit: answered inline, no job created)
      -> 202 {"status": "pending", "id": rid, "key": k}
         (cold: submitted to the process-pool executor)
    GET  /v1/verify/{id}   -> {"status": "pending"|"done"|"failed", ...}
    GET  /v1/verdicts/{key}   -> the stored verdict document | 404
    GET  /v1/artifacts/{hash} -> the stored artifact document | 404
    GET  /v1/metrics       -> a repro-metrics v1 document
    GET  /v1/healthz       -> {"ok": true, ...}

Cold-path fan-out: misses run ``verify(scenario, backend=resolved,
cache="readwrite", cache_path=db)`` on a bounded
:class:`~concurrent.futures.ProcessPoolExecutor` — the engine's own
process-level parallel machinery stays available inside each worker,
and the worker's ``readwrite`` cache mode is what populates the store
(WAL journaling makes concurrent worker writes safe).  Identical
in-flight requests deduplicate onto one job id; once a job lands in
the cache, later identical submits answer inline.

Backend resolution happens at submit time (``"auto"`` resolves against
the scenario's tags, and auto-only overrides are dropped exactly as
``verify()`` drops them), so the request's cache key always equals the
key the worker stores under.
"""

from __future__ import annotations

import asyncio
import itertools
import secrets

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.obs.metrics import metrics_document
from repro.obs.recorder import Recorder, install as _obs_install
from repro.scenarios import get_scenario, resolve_backend
from repro.scenarios.verify import (
    BACKENDS,
    EXHAUSTIVE_ONLY_OVERRIDES,
    FUZZ_ONLY_OVERRIDES,
)
from repro.service.cache import VerdictCache, default_cache_path
from repro.service.keys import cache_key, code_version
from repro.util.errors import UsageError

#: Completed jobs retained for polling; the verdicts themselves live in
#: the cache by content address, so eviction loses nothing durable.
MAX_RETAINED_JOBS = 4096


def execute_verify(
    scenario_id: str,
    backend: str,
    overrides: Dict[str, Any],
    cache_path: str,
) -> Tuple[Dict[str, Any], bool]:
    """One cold verify in an executor worker process (picklable,
    module-level).  Returns ``(verdict document, was it a cache hit)``
    — ``readwrite`` mode both answers racing duplicates and populates
    the cache for every later identical request."""
    from repro.scenarios import verify

    verdict = verify(
        scenario_id,
        backend=backend,
        cache="readwrite",
        cache_path=cache_path,
        **overrides,
    )
    return verdict.to_document(), verdict.cached


@dataclass
class VerifyJob:
    """One submitted cold verification."""

    request_id: str
    key: str
    scenario: str
    backend: str
    status: str = "pending"  # pending -> done | failed
    cached: bool = False
    verdict: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    future: Any = field(default=None, repr=False)

    def to_document(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "id": self.request_id,
            "status": self.status,
            "key": self.key,
            "scenario": self.scenario,
            "backend": self.backend,
        }
        if self.status == "done":
            document["cached"] = self.cached
            document["verdict"] = self.verdict
        if self.error is not None:
            document["error"] = self.error
        return document


class ServiceApp:
    """The long-running verification service (one per server process).

    Owns the verdict cache connection (inline hit path), the bounded
    process-pool executor (cold path), the in-memory job table, and a
    :class:`Recorder` serving ``GET /v1/metrics``.  Single-threaded by
    contract: every ``handle()`` call runs on the event loop.
    """

    def __init__(self, cache_path: Optional[str] = None, workers: int = 2):
        self.cache_path = default_cache_path(cache_path)
        self.workers = max(1, int(workers))
        self.recorder = Recorder(label="repro-serve")
        self.jobs: Dict[str, VerifyJob] = {}
        self._inflight: Dict[str, str] = {}  # cache key -> request id
        self._order = itertools.count(1)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._cache: Optional[VerdictCache] = None
        self._previous_recorder: Any = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Open the cache and install the service recorder (so the
        cache layer's ``cache/hit``/``cache/miss`` counters land in the
        ``/v1/metrics`` document)."""
        self._cache = VerdictCache.open(self.cache_path)
        self._previous_recorder = _obs_install(self.recorder)

    def close(self) -> None:
        _obs_install(self._previous_recorder)
        if self._executor is not None:
            # wait=True so the forked workers (which inherit the
            # listening socket) are reaped before the port is reused.
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        if self._cache is not None:
            self._cache.close()
            self._cache = None

    @property
    def cache(self) -> VerdictCache:
        if self._cache is None:
            raise UsageError("service app not started (call start())")
        return self._cache

    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    # -- routing ------------------------------------------------------------

    async def handle(
        self, method: str, path: str, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        """Dispatch one request; returns ``(HTTP status, JSON doc)``."""
        self.recorder.count("service/requests")
        with self.recorder.span("service/request"):
            try:
                return await self._route(method, path, body)
            except UsageError as exc:
                self.recorder.count("service/bad_requests")
                return 400, {"error": str(exc)}

    async def _route(
        self, method: str, path: str, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        path = path.rstrip("/") or "/"
        if method == "POST" and path == "/v1/verify":
            return await self._submit(body)
        if method == "GET" and path.startswith("/v1/verify/"):
            return self._poll(path[len("/v1/verify/"):])
        if method == "GET" and path.startswith("/v1/verdicts/"):
            return self._verdict(path[len("/v1/verdicts/"):])
        if method == "GET" and path.startswith("/v1/artifacts/"):
            return self._artifact(path[len("/v1/artifacts/"):])
        if method == "GET" and path == "/v1/metrics":
            return self._metrics()
        if method == "GET" and path == "/v1/healthz":
            return 200, {
                "ok": True,
                "service": "repro-serve",
                "code": code_version(),
                "cache_db": self.cache_path,
                "workers": self.workers,
            }
        self.recorder.count("service/not_found")
        return 404, {"error": f"no route {method} {path}"}

    # -- the submit/poll protocol -------------------------------------------

    async def _submit(
        self, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        if not isinstance(body, dict):
            raise UsageError("POST /v1/verify expects a JSON object body")
        scenario_id = body.get("scenario")
        if not isinstance(scenario_id, str) or not scenario_id:
            raise UsageError('body must name a "scenario" (string id)')
        backend = body.get("backend", "auto")
        overrides = body.get("overrides", {})
        if not isinstance(overrides, dict):
            raise UsageError('"overrides" must be a JSON object')
        scenario = get_scenario(scenario_id)  # UsageError -> 400
        resolved = resolve_backend(scenario, backend)
        if resolved not in BACKENDS:
            raise UsageError(
                f"unknown backend {backend!r} (one of {BACKENDS + ('auto',)})"
            )
        if backend == "auto":
            dropped = (
                FUZZ_ONLY_OVERRIDES
                if resolved == "exhaustive"
                else EXHAUSTIVE_ONLY_OVERRIDES
            )
            overrides = {
                key: value
                for key, value in overrides.items()
                if key not in dropped
            }
        key = cache_key(scenario, resolved, overrides)
        document = self.cache.get(key)  # counts cache/hit | cache/miss
        if document is not None:
            self.recorder.count("service/inline_hits")
            return 200, {
                "status": "done",
                "cached": True,
                "key": key,
                "scenario": scenario.scenario_id,
                "backend": resolved,
                "verdict": document,
            }
        pending = self._inflight.get(key)
        if pending is not None and self.jobs[pending].status == "pending":
            self.recorder.count("service/deduplicated")
            reply = self.jobs[pending].to_document()
            reply["deduplicated"] = True
            return 202, reply
        request_id = f"req-{next(self._order):06d}-{secrets.token_hex(4)}"
        job = VerifyJob(
            request_id=request_id,
            key=key,
            scenario=scenario.scenario_id,
            backend=resolved,
        )
        loop = asyncio.get_running_loop()
        job.future = loop.run_in_executor(
            self.executor(),
            execute_verify,
            scenario.scenario_id,
            resolved,
            overrides,
            self.cache_path,
        )
        job.future.add_done_callback(lambda fut: self._finish(job, fut))
        self.jobs[request_id] = job
        self._inflight[key] = request_id
        self._evict_finished()
        self.recorder.count("service/submitted")
        self.recorder.gauge("service/jobs", len(self.jobs))
        return 202, job.to_document()

    def _finish(self, job: VerifyJob, future) -> None:
        self._inflight.pop(job.key, None)
        try:
            job.verdict, job.cached = future.result()
            job.status = "done"
            self.recorder.count("service/completed")
        except Exception as exc:  # job errors are data, not crashes
            job.status = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            self.recorder.count("service/failed")

    def _poll(self, request_id: str) -> Tuple[int, Dict[str, Any]]:
        job = self.jobs.get(request_id)
        if job is None:
            self.recorder.count("service/not_found")
            return 404, {"error": f"no verify request {request_id!r}"}
        return 200, job.to_document()

    def _evict_finished(self) -> None:
        if len(self.jobs) < MAX_RETAINED_JOBS:
            return
        for request_id in list(self.jobs):
            if len(self.jobs) < MAX_RETAINED_JOBS:
                break
            if self.jobs[request_id].status != "pending":
                del self.jobs[request_id]

    # -- content-addressed fetches ------------------------------------------

    def _verdict(self, key: str) -> Tuple[int, Dict[str, Any]]:
        document = self.cache.get(key)
        if document is None:
            self.recorder.count("service/not_found")
            return 404, {"error": f"no cached verdict under key {key!r}"}
        return 200, document

    def _artifact(self, hash_: str) -> Tuple[int, Dict[str, Any]]:
        document = self.cache.artifact(hash_)
        if document is None:
            self.recorder.count("service/not_found")
            return 404, {"error": f"no artifact under hash {hash_!r}"}
        return 200, document

    def _metrics(self) -> Tuple[int, Dict[str, Any]]:
        return 200, metrics_document(self.recorder, label="repro-serve")
