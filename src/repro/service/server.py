"""Minimal stdlib HTTP/1.1 framing over asyncio streams.

No third-party web framework: the container bakes in only the Python
toolchain, and the service needs exactly one content type
(``application/json``), two methods, and keep-alive — a few dozen
lines over :func:`asyncio.start_server`.  The application logic lives
in :mod:`repro.service.app`; this module only parses requests, frames
responses, and owns process lifecycle (``python -m repro serve``).

Responses are serialized with ``sort_keys=True``, so two cache hits on
the same key produce byte-identical bodies — the property the
``serve-smoke`` CI job asserts over the wire.
"""

from __future__ import annotations

import asyncio
import json
import signal

from typing import Optional, Tuple

from repro.service.app import ServiceApp

#: Request-line + headers must fit in this many bytes (we serve JSON
#: APIs, not uploads); the body is bounded separately.
MAX_HEADER_BYTES = 32_768
MAX_BODY_BYTES = 8_000_000

#: Idle keep-alive connections are dropped after this many seconds.
IDLE_TIMEOUT = 60.0


class _BadRequest(Exception):
    """Malformed HTTP framing (maps to a 400 and connection close)."""


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, dict, Optional[dict]]]:
    """Parse one request; ``None`` on a cleanly closed connection."""
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=IDLE_TIMEOUT
        )
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    except asyncio.TimeoutError:
        return None
    except asyncio.LimitOverrunError:
        raise _BadRequest("headers too large")
    if len(head) > MAX_HEADER_BYTES:
        raise _BadRequest("headers too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _BadRequest(f"malformed request line {lines[0]!r}")
    method, path = parts[0].upper(), parts[1]
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body: Optional[dict] = None
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _BadRequest(f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise _BadRequest(f"unacceptable Content-Length {length}")
    if length:
        raw = await reader.readexactly(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"request body is not JSON: {exc}") from None
    return method, path, headers, body


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
}


def _encode_response(
    status: int, document: dict, keep_alive: bool
) -> bytes:
    payload = (
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + payload


async def handle_connection(
    app: ServiceApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve requests on one connection until close/EOF/idle."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except _BadRequest as exc:
                writer.write(
                    _encode_response(400, {"error": str(exc)}, False)
                )
                await writer.drain()
                break
            if request is None:
                break
            method, path, headers, body = request
            try:
                status, document = await app.handle(method, path, body)
            except Exception as exc:  # never kill the server on one request
                app.recorder.count("service/internal_errors")
                status, document = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
            keep_alive = headers.get("connection", "keep-alive") != "close"
            writer.write(_encode_response(status, document, keep_alive))
            await writer.drain()
            if not keep_alive:
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # peer already gone
            pass


async def start_service(
    app: ServiceApp, host: str = "127.0.0.1", port: int = 8765
) -> asyncio.base_events.Server:
    """Start the app's asyncio server (``port=0`` picks an ephemeral
    port — the in-process tests use it); the caller owns the loop."""
    app.start()
    return await asyncio.start_server(
        lambda reader, writer: handle_connection(app, reader, writer),
        host=host,
        port=port,
        limit=MAX_HEADER_BYTES,
    )


async def _serve_forever(
    host: str, port: int, cache_path: Optional[str], workers: int
) -> None:
    app = ServiceApp(cache_path=cache_path, workers=workers)
    server = await start_service(app, host=host, port=port)
    bound = server.sockets[0].getsockname()
    print(
        f"repro-serve listening on http://{bound[0]}:{bound[1]} "
        f"(cache: {app.cache_path}, workers: {app.workers})",
        flush=True,
    )
    # SIGTERM/SIGINT must unwind through the finally below: the
    # executor's forked workers inherit the listening socket, so dying
    # without shutting them down leaves orphans holding the port.
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # non-Unix loops
            pass
    try:
        async with server:
            await stop.wait()
        print("repro-serve: shutting down", flush=True)
    finally:
        app.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    cache_path: Optional[str] = None,
    workers: int = 2,
) -> int:
    """Blocking entry point for ``python -m repro serve``."""
    try:
        asyncio.run(_serve_forever(host, port, cache_path, workers))
    except KeyboardInterrupt:
        print("repro-serve: interrupted, shutting down", flush=True)
    return 0
