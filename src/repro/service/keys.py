"""The verdict-cache key contract: one hash per (what, how, which code).

A ``verify()`` call is memoizable because every input that can change
its verdict document is either declarative (the scenario's plan, crash
model, bounds, expectations), an explicit override, or the code itself.
The cache key is therefore the SHA-256
(:func:`repro.util.hashing.canonical_fingerprint`) of::

    {
      "schema": "repro-verdict-key", "version": 1,
      "scenario": <scenario fingerprint>,   # see scenario_fingerprint()
      "backend": "exhaustive",              # the *resolved* backend
      "overrides": {...},                   # normalized() values, sorted keys
      "code": "1.0.0"                       # code_version()
    }

Design notes:

* The **scenario fingerprint** hashes the scenario's declarative
  content — id, plan (in the replay-trace encoding), crash model,
  bounds, expectations, tags — not its factories.  Implementation code
  is not introspectable into a stable hash; changes to it are covered
  by the coarser *code-version* component instead.
* **Overrides** pass through :func:`repro.util.hashing.normalized`:
  ``--set seed=1`` and ``seed=1.0`` hash identically, and insertion
  order never matters (canonical JSON sorts keys).
* ``backend`` is the backend verify *resolved* (never ``"auto"``): an
  auto call and an explicit call that run the same search share a
  cache line.
* The **code version** is the package version
  (:data:`repro.__version__`) plus an optional ``REPRO_CACHE_EPOCH``
  suffix — bump the env var to invalidate every cached verdict without
  releasing, e.g. after changing an algorithm under test.  ``cache gc``
  evicts entries whose code component no longer matches.
"""

from __future__ import annotations

import os

from typing import Any, Dict, Mapping, Optional

from repro.util.hashing import canonical_fingerprint, normalized

CACHE_KEY_SCHEMA = "repro-verdict-key"
CACHE_KEY_VERSION = 1

#: Environment override appended to the code-version component; bumping
#: it invalidates every cached verdict without a package release.
CACHE_EPOCH_ENV = "REPRO_CACHE_EPOCH"


def code_version() -> str:
    """The cache key's code-version component.

    ``<package version>`` or ``<package version>+epoch:<REPRO_CACHE_EPOCH>``
    when the env override is set (any non-empty string; it is an opaque
    invalidation token, not a number).
    """
    from repro import __version__

    epoch = os.environ.get(CACHE_EPOCH_ENV, "").strip()
    return f"{__version__}+epoch:{epoch}" if epoch else __version__


def _plain(value: Any) -> Any:
    """Tuples to lists, recursively (the replay-trace plan encoding)."""
    if isinstance(value, (tuple, list)):
        return [_plain(part) for part in value]
    return value


def scenario_payload(scenario: Any) -> Dict[str, Any]:
    """The declarative content of a scenario that the key hashes.

    Everything that changes the verified search space without touching
    code: the plan (in the same ``{pid: [[op, args], ...]}`` shape the
    replay-trace artifact uses), the crash model, the default bounds,
    the declared expectations, and the tags (``auto`` resolution reads
    them).  Factories are deliberately absent — see the module
    docstring.
    """
    bounds = scenario.bounds
    return {
        "id": scenario.scenario_id,
        "plan": {
            str(pid): [[op, _plain(args)] for op, args in ops]
            for pid, ops in sorted(scenario.plan.items())
        },
        "crash": scenario.crash,
        "bounds": {
            "max_depth": bounds.max_depth,
            "iterations": bounds.iterations,
            "max_configurations": bounds.max_configurations,
            "horizon": bounds.horizon,
        },
        "expect_violation": scenario.expect_violation,
        "expect_liveness_violation": scenario.expect_liveness_violation,
        "tags": sorted(scenario.tags),
    }


def scenario_fingerprint(scenario: Any) -> str:
    """SHA-256 of the canonical JSON of :func:`scenario_payload`."""
    return canonical_fingerprint(scenario_payload(scenario))


def normalize_overrides(overrides: Mapping[str, Any]) -> Dict[str, Any]:
    """Override canonicalisation for hashing: integral floats collapse
    to ints, tuples to lists, keys to strings (order is irrelevant —
    the canonical encoding sorts).  ``verify()`` still *executes* with
    the caller's raw values; only the cache identity is normalised."""
    return {str(key): normalized(value) for key, value in overrides.items()}


def cache_key(
    scenario: Any,
    backend: str,
    overrides: Mapping[str, Any],
    code: Optional[str] = None,
) -> str:
    """The content address of one verify call (the cache's primary key).

    ``backend`` must be the resolved backend (``verify()`` resolves
    ``"auto"`` before keying).  ``code=None`` uses :func:`code_version`.
    """
    return canonical_fingerprint(
        {
            "schema": CACHE_KEY_SCHEMA,
            "version": CACHE_KEY_VERSION,
            "scenario": scenario_fingerprint(scenario),
            "backend": backend,
            "overrides": normalize_overrides(overrides),
            "code": code if code is not None else code_version(),
        }
    )
