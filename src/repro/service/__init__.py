"""Verification as a service: verdict cache + asyncio HTTP service.

Two layers (docs/architecture.md, "Service layer"):

* a **content-addressed verdict cache** (:mod:`repro.service.cache`,
  :mod:`repro.service.keys`): one SQLite WAL file mapping
  ``SHA-256(scenario fingerprint × backend × normalized overrides ×
  code version)`` to full verdict documents plus replayable
  counterexample/lasso artifacts by hash.  ``verify(cache="read" |
  "readwrite")`` consults it; the CLI (``verify --cache``) and the
  campaign worker pool (``campaign run --cache``) share the same file;
* an **asyncio HTTP service** (:mod:`repro.service.app`,
  :mod:`repro.service.server`), ``python -m repro serve``: submit a
  verify request (``POST /v1/verify`` — cache hits answer inline),
  poll it (``GET /v1/verify/{id}``), fetch verdicts and artifacts by
  content address (``GET /v1/verdicts/{key}``,
  ``GET /v1/artifacts/{hash}``), read server metrics
  (``GET /v1/metrics``, a ``repro-metrics`` v1 document).  Cold
  verdicts fan out to a bounded process-pool executor whose workers
  run ``verify(cache="readwrite")``.

This ``__init__`` deliberately exports only the cache layer:
:mod:`repro.scenarios.verify` imports it lazily on the cache path, and
pulling :mod:`repro.service.app` here would close an import cycle
(app → scenarios → verify → service).  Import the HTTP layer
explicitly (``from repro.service.server import serve``).
"""

from repro.service.cache import (
    CACHE_MODES,
    DEFAULT_CACHE_DB,
    VerdictCache,
    artifact_hash,
    check_cache_mode,
    default_cache_path,
)
from repro.service.keys import (
    CACHE_KEY_SCHEMA,
    CACHE_KEY_VERSION,
    cache_key,
    code_version,
    normalize_overrides,
    scenario_fingerprint,
)

__all__ = [
    "CACHE_KEY_SCHEMA",
    "CACHE_KEY_VERSION",
    "CACHE_MODES",
    "DEFAULT_CACHE_DB",
    "VerdictCache",
    "artifact_hash",
    "cache_key",
    "check_cache_mode",
    "code_version",
    "default_cache_path",
    "normalize_overrides",
    "scenario_fingerprint",
]
