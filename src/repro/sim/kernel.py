"""Simulation kernel primitives: steps, implementations, process frames.

Algorithms are written as Python *generator coroutines*: the algorithm
for one operation yields :class:`Op` requests (one atomic primitive on a
named base object per yield) and finally ``return``s the operation's
response value.  The runtime advances exactly one process per scheduler
decision, so the interleaving of primitive applications — the only thing
concurrency can affect in the asynchronous shared-memory model — is
totally controlled by the driver.

One *step* of a process is: resume the generator with the result of its
previously issued primitive, run local computation until the next
primitive request, and apply that primitive atomically.  This matches the
model's step granularity (local computation is free; shared-memory
primitives are the atomic unit).

Determinism/lasso contract
--------------------------
The lasso detector certifies an infinite execution by fingerprinting the
global configuration.  A process frame is fingerprinted as
``(operation, args, primitives_issued, last_result, memory)``; for the
fingerprint to determine future behaviour, algorithms that opt into
exact lasso detection must keep all mutable operation-local state in the
``memory`` mapping (rather than in generator-local variables that
survive across yields).  All algorithms shipped in
:mod:`repro.algorithms` follow this contract.

The same contract is what lets the exploration engine snapshot and
restore configurations (:mod:`repro.engine.config` rebuilds a generator
by fast-forwarding a fresh one through its recorded primitive results);
``docs/architecture.md`` states the full determinism/fingerprint
contract in one place.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Hashable, Optional, Tuple

from repro.base_objects.base import ObjectPool
from repro.core.events import Invocation
from repro.core.object_type import ObjectType
from repro.obs.recorder import active as _obs_active
from repro.util.errors import SimulationError
from repro.util.freeze import freeze

#: Type alias for algorithm coroutines.
Algorithm = Generator["Op", Any, Any]


@dataclass(frozen=True)
class Op:
    """One atomic primitive request: ``pool[obj].method(*args)``."""

    obj: str
    method: str
    args: Tuple[Any, ...] = ()

    def __str__(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.obj}.{self.method}({rendered})"


@dataclass(frozen=True)
class Footprint:
    """What one applied scheduler decision touched.

    The dynamic half of the partial-order reduction
    (:mod:`repro.engine.dpor`): the runtime records, per decision, the
    acting process, the decision's *kind* (``invoke`` and ``response``
    emit a visible history event; a non-completing ``step`` applies
    exactly one pool primitive and emits nothing; ``crash`` is treated
    as globally dependent), and the pool cells the decision read or
    wrote as ``(object name, key)`` pairs — keys come from each base
    object's :meth:`~repro.base_objects.base.BaseObject.footprint`
    declaration, where ``None`` means the whole object.

    A completing step has an *empty* pool footprint by construction:
    :func:`run_step` sees the generator's ``StopIteration`` before any
    new primitive is applied.
    """

    pid: int
    kind: str  # "invoke" | "step" | "response" | "crash"
    reads: Tuple[Tuple[str, Any], ...] = ()
    writes: Tuple[Tuple[str, Any], ...] = ()

    @property
    def visible(self) -> bool:
        """Whether the decision emitted a history event."""
        return self.kind != "step"


class Implementation(ABC):
    """An implementation ``I = {I_1, ..., I_n}`` of a shared object type.

    Subclasses provide the base objects and the per-process algorithm.
    One instance describes the *code*; each run gets a fresh
    :class:`~repro.base_objects.base.ObjectPool` and fresh per-process
    memories, so an implementation instance may be reused across runs.
    """

    #: Human-readable name used in reports and registries.
    name: str = "implementation"

    def __init__(self, object_type: ObjectType, n_processes: int):
        if n_processes < 1:
            raise ValueError("n_processes must be at least 1")
        self.object_type = object_type
        self.n_processes = n_processes

    @abstractmethod
    def create_pool(self) -> ObjectPool:
        """Fresh base objects for one run."""

    @abstractmethod
    def algorithm(
        self,
        pid: int,
        operation: str,
        args: Tuple[Any, ...],
        memory: Dict[str, Any],
    ) -> Algorithm:
        """The algorithm ``I_pid`` run for one invocation.

        ``memory`` is the process's persistent local memory: it survives
        across operations of the same process within a run (Algorithm 1
        keeps ``timestamp`` there) and is included in fingerprints.
        """

    def initial_memory(self, pid: int) -> Dict[str, Any]:
        """Initial persistent local memory of process ``pid``."""
        return {}

    def liveness_abstraction(
        self, pool: ObjectPool, memories: Tuple[Dict[str, Any], ...]
    ) -> Optional[Hashable]:
        """Optional quotient fingerprint for lasso detection.

        Implementations whose state grows monotonically (round counters,
        timestamps) can override this to return an abstraction under
        which the repeating behaviour *is* a repetition of state.  The
        overriding class is responsible for the abstraction being a
        bisimulation quotient of the real state w.r.t. the adversary in
        play; each shipped override documents its argument.  Returning
        ``None`` (the default) makes the detector use the exact state.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} n={self.n_processes}>"


@dataclass
class ProcessFrame:
    """Execution state of one in-flight operation of one process.

    When the owning runtime records replay logs (the exploration
    engine's snapshot mode), ``result_log`` accumulates every primitive
    result fed to the generator and ``memory_at_invoke`` holds a copy of
    the process memory as it was *before* the invocation.  Together with
    the determinism contract above they let :mod:`repro.engine.config`
    rebuild an equivalent generator by fast-forwarding a fresh one
    through the recorded results — the only part of a configuration that
    cannot be copied directly.
    """

    invocation: Invocation
    generator: Algorithm
    started: bool = False
    primitives_issued: int = 0
    last_result: Any = None
    pending_op: Optional[Op] = None
    result_log: Optional[list] = None
    memory_at_invoke: Optional[Dict[str, Any]] = None

    def fingerprint(self) -> Hashable:
        """Frame part of the global configuration fingerprint."""
        return (
            self.invocation.operation,
            freeze(self.invocation.args),
            self.primitives_issued,
            freeze(self.last_result),
            freeze(self.pending_op.args) if self.pending_op else None,
            (self.pending_op.obj, self.pending_op.method) if self.pending_op else None,
        )


@dataclass
class ProcessState:
    """Runtime state of one simulated process."""

    pid: int
    memory: Dict[str, Any] = field(default_factory=dict)
    frame: Optional[ProcessFrame] = None
    crashed: bool = False
    steps: int = 0
    last_step: int = -1
    good_response_steps: list = field(default_factory=list)
    response_count: int = 0
    invocation_count: int = 0

    @property
    def idle(self) -> bool:
        """True when the process has no pending operation (and may be
        invoked, by input-enabledness)."""
        return self.frame is None and not self.crashed

    @property
    def pending(self) -> bool:
        """True when an operation is in flight."""
        return self.frame is not None and not self.crashed

    def fingerprint(self) -> Hashable:
        """Process part of the global configuration fingerprint."""
        # This is the O(memory) hash the engine's incremental caches
        # exist to avoid; counting it here (not at cached call sites)
        # measures the real hashing work.  `run_step` itself stays
        # uninstrumented — at ~400ns/step even a guard check would be
        # measurable, so step totals are flushed in aggregate from
        # `step_count` deltas by the drivers.
        rec = _obs_active()
        if rec is not None:
            rec.count("kernel/state_hashes")
        return (
            self.pid,
            self.crashed,
            freeze(self.memory),
            self.frame.fingerprint() if self.frame else None,
        )


def run_step(frame: ProcessFrame, pool: ObjectPool) -> Tuple[bool, Any]:
    """Advance one frame by one step.

    Returns ``(finished, response_value_or_None)``.  If the generator
    yields another :class:`Op`, the primitive is applied atomically and
    its result buffered for the next step; if it returns, the operation
    is complete.
    """
    try:
        if not frame.started:
            frame.started = True
            op = next(frame.generator)
        else:
            op = frame.generator.send(frame.last_result)
    except StopIteration as stop:
        return True, stop.value
    if not isinstance(op, Op):
        raise SimulationError(
            f"algorithm for {frame.invocation} yielded {op!r}; expected Op"
        )
    frame.pending_op = op
    frame.last_result = pool.apply(op.obj, op.method, op.args)
    frame.primitives_issued += 1
    if frame.result_log is not None:
        frame.result_log.append(frame.last_result)
    return False, None
