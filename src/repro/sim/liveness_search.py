"""Branching liveness exploration: classify every maximal run.

Safety backends judge *histories*; the liveness backend judges *runs* —
who keeps stepping, who keeps getting good responses.  This module
drives a schedule policy (an adversary strategy, or unrestricted
scheduler choice over an invocation plan) through the snapshot engine's
:class:`~repro.engine.config.KernelConfig`, branching exhaustively over
every choice the policy offers, and classifies each maximal run:

* **lasso** — the per-path :class:`~repro.sim.lasso.LassoDetector`
  found a repeated configuration: the run is ``stem · cycle^ω``, a
  genuine infinite execution, and the derived
  :class:`~repro.core.properties.ExecutionSummary` is exact
  (``Certainty.PROVED``).
* **finite** — the policy stopped fairly with nothing in flight: a
  complete finite execution, also exact.
* **horizon** — the step horizon truncated the run: the summary is
  approximate (``Certainty.HORIZON``).

Engine budget overruns raise
:class:`~repro.engine.frontier.SearchBudgetExceeded`, which the
``verify`` facade folds into its ``budget-exhausted`` outcome.

Branch bookkeeping
------------------
A lasso is a repetition *along one run*, so the detector state forks at
every branch point (``LassoDetector.snapshot``/``restore``) — a repeat
across sibling branches is a DAG merge, never a cycle.  Branching
policies additionally deduplicate merged configurations: the dedup key
extends the lasso fingerprint with the per-process
invocation/response/good-response counters, so a *genuine* cycle (whose
revisit always differs in those counters — a cycle that changed nothing
would be empty) is never mistaken for a merge, while schedules that
commute to the same liveness-relevant state collapse to one
representative.  Horizon classifications of merged schedules can differ
only in step *timing* (the suffix-window approximation), which carries
``Certainty.HORIZON`` precisely because it is approximate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.core.events import Response
from repro.core.history import History
from repro.engine.config import KernelConfig
from repro.engine.dpor import Sleep, SleepSets, check_reduction
from repro.engine.frontier import SearchBudgetExceeded
from repro.sim.drivers import (
    Decision,
    Driver,
    InvokeDecision,
    StepDecision,
    StopDecision,
)
from repro.obs.recorder import active as _obs_active
from repro.sim.lasso import LassoDetector
from repro.sim.record import ProcessStats, RunResult
from repro.sim.runtime import abstract_state_fingerprint

#: How a maximal run ended (mirrors ``RunResult``'s stop semantics).
RUN_KINDS = ("lasso", "finite", "horizon")


@dataclass
class LivenessRun:
    """One classified maximal run of the search."""

    #: The exact decision sequence that produced the run (the stem+cycle
    #: split for lasso runs is ``decisions[:cycle_start]`` /
    #: ``decisions[cycle_start:cycle_end]``).
    decisions: Tuple[Decision, ...]
    result: RunResult
    kind: str  # one of RUN_KINDS
    #: Whether the policy reported the implementation escaped its
    #: strategy (adversary policies only).
    escaped: bool = False


class SchedulePolicy(ABC):
    """What the liveness search consults each step.

    A policy owns the *choice structure* of the explored runs: given the
    runtime view it returns either the legal next decisions (the search
    branches over all of them) or a :class:`StopDecision` ending the
    run.  Policies must be deterministic functions of their captured
    state plus the view — the search re-derives ``options`` after every
    branch restore.
    """

    name: str = "policy"
    #: Branching policies opt into configuration dedup (merged schedules
    #: collapse to one representative); adversary strategies are
    #: fan-out-1 and every step of every path is classified.
    branching: bool = False

    @abstractmethod
    def options(self, view) -> Union[StopDecision, List[Decision]]:
        """Legal next decisions, or a stop ending the run."""

    def fingerprint(self, view) -> Optional[Hashable]:
        """Policy part of the lasso/dedup fingerprint (``None`` disables
        both for runs under this policy)."""
        return None

    def capture(self) -> Any:
        """Restorable policy state (branch bookkeeping)."""
        return None

    def restore(self, state: Any) -> None:
        """Restore a :meth:`capture` result."""

    def reset(self) -> None:
        """Return to the initial state (fresh search)."""

    @property
    def escaped(self) -> bool:
        """Whether the implementation escaped the strategy."""
        return False


class AdversaryPolicy(SchedulePolicy):
    """Wrap an adversary :class:`~repro.sim.drivers.Driver` as a policy.

    Adversary strategies decide both schedule and inputs, so their
    fan-out is one — the search walks a single deterministic trajectory
    per strategy, certified by the lasso detector whenever driver and
    implementation state cooperate.
    """

    def __init__(self, driver: Driver):
        self.driver = driver
        self.name = getattr(driver, "name", "adversary")

    def options(self, view) -> Union[StopDecision, List[Decision]]:
        decision = self.driver.decide(view)
        if isinstance(decision, StopDecision):
            return decision
        return [decision]

    def fingerprint(self, view) -> Optional[Hashable]:
        return self.driver.fingerprint()

    def capture(self) -> Any:
        return self.driver.capture_state()

    def restore(self, state: Any) -> None:
        self.driver.restore_state(state)

    def reset(self) -> None:
        self.driver.reset()

    @property
    def escaped(self) -> bool:
        return bool(getattr(self.driver, "escaped", False))


class PlanPolicy(SchedulePolicy):
    """Branch over *every* scheduler choice of an invocation plan.

    The liveness counterpart of
    :func:`repro.sim.explore.plan_successors`: a pending process may
    step, an idle uncrashed process with planned invocations left may
    invoke its next one, and the search explores all of it.  The run
    stops — fairly iff nothing is in flight — when nobody has a move,
    exactly like a :class:`~repro.sim.drivers.ComposedDriver` would.
    """

    branching = True

    def __init__(self, plan: Dict[int, List[Tuple[str, Tuple[Any, ...]]]]):
        self.plan = {pid: list(ops) for pid, ops in plan.items()}
        self._pids = sorted(self.plan)
        self.name = "plan-schedules"

    def options(self, view) -> Union[StopDecision, List[Decision]]:
        out: List[Decision] = []
        for pid in self._pids:
            if view.is_crashed(pid):
                continue
            if view.is_pending(pid):
                out.append(StepDecision(pid))
            else:
                cursor = view.invocation_count(pid)
                if cursor < len(self.plan[pid]):
                    operation, args = self.plan[pid][cursor]
                    out.append(InvokeDecision(pid, operation, tuple(args)))
        if not out:
            fair = not any(
                view.is_pending(pid) for pid in range(view.n_processes)
            )
            return StopDecision(reason="plan exhausted", fair=fair)
        return out

    def fingerprint(self, view) -> Optional[Hashable]:
        # The workload cursors are *not* part of the kernel fingerprint
        # (they live in runtime statistics), yet they determine which
        # invocations remain — so they belong to the policy's share of
        # the lasso/dedup key, exactly as a ComposedDriver folds its
        # workload fingerprint into the runtime's.
        return ("plan",) + tuple(
            view.invocation_count(pid) for pid in self._pids
        )


def _decision_label(decision: Decision) -> Hashable:
    """Sleep-set identity of a decision.

    Two options at a node get the same label only when they are the same
    decision; a surviving sleep entry must match the decision a later
    path would take, so invocations carry their operation and arguments
    (a process's *next* step, by contrast, is determined by its pid)."""
    if isinstance(decision, InvokeDecision):
        return ("invoke", decision.pid, decision.operation, decision.args)
    if isinstance(decision, StepDecision):
        return ("step", decision.pid)
    return (type(decision).__name__, getattr(decision, "pid", None))


def _copy_stats(
    runtime,
) -> Dict[int, ProcessStats]:
    """Detach per-process statistics from a runtime that will be
    restored (and therefore mutated in place) after the run is
    yielded."""
    out: Dict[int, ProcessStats] = {}
    for pid, stats in runtime.stats.items():
        out[pid] = ProcessStats(
            pid=pid,
            steps=stats.steps,
            last_step=stats.last_step,
            invocations=stats.invocations,
            responses=stats.responses,
            good_responses=stats.good_responses,
            good_response_steps=list(stats.good_response_steps),
            crashed=stats.crashed,
            pending_at_end=runtime.processes[pid].pending,
        )
    return out


def _rebuild_last_response(runtime) -> None:
    """Recompute the per-process last responses from the event list.

    Snapshots do not carry the ``last_response`` map (the engine's
    safety searches never read it), but adversary strategies consult it
    through the view — so every restore re-derives it.
    """
    runtime.last_response.clear()
    for event in runtime.events:
        if isinstance(event, Response):
            runtime.last_response[event.process] = event


class LivenessSearch:
    """Exhaustive, budgeted exploration of a policy's maximal runs.

    Parameters
    ----------
    factory:
        Fresh-implementation factory (the object under test).
    policy:
        The :class:`SchedulePolicy` supplying choices (and, for
        adversaries, inputs).
    max_depth:
        Step horizon: runs still alive here are classified ``horizon``.
    max_configurations:
        Budget on explored configurations across all branches; raises
        :class:`~repro.engine.frontier.SearchBudgetExceeded`.
    lasso_stride:
        Fingerprint every n-th step (see
        :class:`~repro.sim.lasso.LassoDetector`; a stride never misses
        a lasso, it only lengthens the reported cycle).
    reduction:
        ``"dpor"`` prunes runs that commute with an already-explored
        run via sleep sets over kernel footprints
        (:mod:`repro.engine.dpor`).  The liveness relation is stricter
        than the safety one — *every* pair of visible decisions is
        dependent (``visible_commutes=False``), because liveness
        classification reads event timing against step windows, not
        just the response-before-invocation order — so only invisible
        internal steps commute.  Fan-out-1 policies (adversaries) are
        unaffected.
    """

    def __init__(
        self,
        factory,
        policy: SchedulePolicy,
        max_depth: int = 2_000,
        max_configurations: int = 200_000,
        lasso_stride: int = 1,
        reduction: str = "none",
    ):
        check_reduction(reduction, ("none", "dpor"))
        self.factory = factory
        self.policy = policy
        self.max_depth = max_depth
        self.max_configurations = max_configurations
        self.reduction = reduction
        self._detector = LassoDetector(check_every=lasso_stride)
        self._implementation = factory()
        self._config = KernelConfig(self._implementation)
        if reduction == "dpor":
            self._config.runtime.record_footprints = True
        #: The initial configuration; every `runs()` call restarts here.
        self._root = self._config.capture()
        #: Configurations explored / branch merges pruned by the most
        #: recent :meth:`runs` call (read after exhausting the
        #: iterator; surfaced in the verify backend's stats).
        self.configurations = 0
        self.merges = 0

    # -- fingerprints --------------------------------------------------------

    def _exact_fingerprint(self, policy_fp: Optional[Hashable]) -> Optional[Hashable]:
        if policy_fp is None:
            return None
        return (policy_fp, self._config.kernel_fingerprint())

    def _abstract_fingerprint(
        self, policy_fp: Optional[Hashable]
    ) -> Optional[Hashable]:
        if policy_fp is None:
            return None
        abstraction = abstract_state_fingerprint(self._config.runtime)
        if abstraction is None:
            return None
        return (policy_fp, abstraction)

    def _dedup_key(
        self, exact: Optional[Hashable]
    ) -> Optional[Hashable]:
        """Merge key: the lasso fingerprint *plus* the monotone run
        counters.  A true cycle revisit always differs in the counters
        (an empty cycle is no cycle), so dedup can never swallow a lasso
        before the detector sees it."""
        if exact is None:
            return None
        runtime = self._config.runtime
        counters = tuple(
            (
                runtime.stats[pid].invocations,
                runtime.stats[pid].responses,
                runtime.stats[pid].good_responses,
            )
            for pid in range(self._implementation.n_processes)
        )
        return (exact, counters)

    # -- run assembly --------------------------------------------------------

    def _finish(
        self,
        decisions: List[Decision],
        stop_reason: str,
        fairness_complete: bool,
        lasso,
        kind: str,
    ) -> LivenessRun:
        runtime = self._config.runtime
        result = RunResult(
            history=History(list(runtime.events), validate=False),
            n_processes=self._implementation.n_processes,
            total_steps=runtime.step_count,
            stop_reason=stop_reason,
            fairness_complete=fairness_complete,
            stats=_copy_stats(runtime),
            lasso=lasso,
            driver_name=self.policy.name,
            implementation_name=self._implementation.name,
        )
        rec = _obs_active()
        if rec is not None:
            rec.count("liveness/runs")
            rec.count(f"liveness/{kind}_runs")
        return LivenessRun(
            decisions=tuple(decisions),
            result=result,
            kind=kind,
            escaped=self.policy.escaped,
        )

    # -- the search ----------------------------------------------------------

    def runs(self) -> Iterator[LivenessRun]:
        """Yield one classified :class:`LivenessRun` per maximal run.

        Re-entrant: every call restarts from the initial configuration
        with a reset policy and a reset lasso detector — forgetting the
        detector reset here is exactly the stale-fingerprint leak the
        regression tests guard against.
        """
        config = self._config
        policy = self.policy
        detector = self._detector
        rec = _obs_active()
        policy.reset()
        detector.reset()
        seen: set = set()
        self.configurations = 0
        self.merges = 0
        reduce = self.reduction == "dpor"
        # All visible pairs are dependent under the liveness relation:
        # classification reads step timing, not just real-time order.
        sleeps = SleepSets(visible_commutes=False) if reduce else None
        # Stack entries: (snapshot, policy state, decision prefix,
        # detector state, pending decision, sleep set at the branch
        # point, sibling footprints).  ``siblings`` is a list *shared*
        # by all options of one branch point; LIFO pop order equals
        # options order, so when option[i] pops, the list holds exactly
        # the footprints of the already-executed options[:i].
        stack: List[
            Tuple[Any, Any, Tuple[Decision, ...], Any, Optional[Decision],
                  Sleep, Optional[List[Tuple[Hashable, Any]]]]
        ] = [
            (self._root, policy.capture(), (), detector.snapshot(), None,
             {}, None)
        ]
        while stack:
            snapshot, state, prefix, detector_state, pending, sleep, siblings = (
                stack.pop()
            )
            config.restore_from(snapshot)
            _rebuild_last_response(config.runtime)
            policy.restore(state)
            detector.restore(detector_state)
            decisions = list(prefix)
            while True:
                from_branch = None
                if pending is not None:
                    decision, pending = pending, None
                    from_branch = siblings
                else:
                    if config.runtime.step_count >= self.max_depth:
                        yield self._finish(
                            decisions, "max-steps", False, None, "horizon"
                        )
                        break
                    options = policy.options(config.view)
                    if isinstance(options, StopDecision):
                        fairness = options.fair and not any(
                            s.pending for s in config.runtime.processes
                        )
                        yield self._finish(
                            decisions,
                            f"driver-stop: {options.reason}",
                            fairness,
                            None,
                            "finite" if fairness else "horizon",
                        )
                        break
                    if reduce and sleep:
                        awake = []
                        for option in options:
                            if _decision_label(option) in sleep:
                                if rec is not None:
                                    rec.count("dpor/sleep_blocked")
                            else:
                                awake.append(option)
                        if not awake:
                            # Every continuation commutes with an
                            # already-explored run: cut the subtree.
                            if rec is not None:
                                rec.count("dpor/pruned")
                            break
                        options = awake
                    if len(options) > 1:
                        if rec is not None:
                            rec.count("liveness/branch_points")
                        branch_snapshot = config.capture()
                        branch_state = policy.capture()
                        branch_detector = detector.snapshot()
                        branch_siblings: Optional[List] = [] if reduce else None
                        for option in reversed(options):
                            stack.append(
                                (
                                    branch_snapshot,
                                    branch_state,
                                    tuple(decisions),
                                    branch_detector,
                                    option,
                                    sleep,
                                    branch_siblings,
                                )
                            )
                        break
                    decision = options[0]
                config.apply(decision)
                if reduce:
                    executed = config.runtime.last_footprint
                    if from_branch is not None:
                        # Branch option: sleep inherits the branch
                        # point's surviving entries plus the earlier
                        # siblings this decision commutes with, then
                        # records its own footprint for later siblings.
                        sleep = sleeps.child_sleep(sleep, from_branch, executed)
                        from_branch.append(
                            (_decision_label(decision), executed)
                        )
                    elif sleep:
                        sleep = sleeps.child_sleep(sleep, (), executed)
                decisions.append(decision)
                self.configurations += 1
                if rec is not None:
                    rec.count("liveness/configurations")
                if self.configurations > self.max_configurations:
                    raise SearchBudgetExceeded(
                        f"liveness search exceeded "
                        f"{self.max_configurations} configurations"
                    )
                policy_fp = policy.fingerprint(config.view)
                exact = self._exact_fingerprint(policy_fp)
                certificate = detector.observe(
                    config.runtime.step_count,
                    exact,
                    self._abstract_fingerprint(policy_fp),
                )
                if certificate is not None:
                    yield self._finish(
                        decisions, "lasso", False, certificate, "lasso"
                    )
                    break
                if policy.branching:
                    key = self._dedup_key(exact)
                    if key is not None:
                        if key in seen:
                            if reduce:
                                # Stateful-dedup repair (see
                                # repro.engine.dpor): merging is sound
                                # only when this path's sleep covers
                                # everything the first visit slept.
                                merged = sleeps.revisit_sleep(key, sleep)
                                if merged is not None:
                                    if rec is not None:
                                        rec.count("dpor/revisit_repairs")
                                    sleep = merged
                                    continue
                            self.merges += 1
                            if rec is not None:
                                rec.count("liveness/merges")
                            break  # merged into an explored schedule
                        seen.add(key)
                        if reduce:
                            sleeps.note_expansion(key, sleep)
