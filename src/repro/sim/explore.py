"""Exhaustive interleaving exploration: model-checking small workloads.

Random schedules sample the interleaving space; for small workloads the
space can be *exhausted*.  :func:`explore_histories` enumerates every
schedule of a fixed invocation plan (each process's operation sequence)
up to a depth bound, deduplicating configurations by fingerprint so the
exponential tree collapses to the reachable configuration DAG, and
yields the history of every maximal run.  :func:`check_all_histories`
wraps it into a verdict: a safety property holds on *every* reachable
interleaving, or here is the counterexample schedule.

The search itself is the unified exploration engine
(:class:`repro.engine.KernelExplorer`); this module only translates the
invocation plan into the engine's callbacks.  The default ``snapshot``
mode expands each DAG edge by restoring an incremental snapshot of the
kernel configuration — O(configuration) per node.  The seed's
replay-based expansion (re-execute the run from scratch per edge,
O(depth) per node) remains available as ``mode="replay"``, and
``mode="parity"`` runs both in lockstep and fails loudly on the first
divergence.  ``processes > 1`` switches to the engine's process-pool
frontier with a shared fingerprint-dedup table.

The fingerprint is the same exact-configuration fingerprint the lasso
detector uses — sound dedup under the determinism contract of
:mod:`repro.sim.kernel`.

Used by the test suite to verify, e.g., that *every* interleaving of
two AGP transactions is opaque and that every interleaving of two
CAS-consensus proposals decides consistently — exhaustive guarantees no
battery of random seeds can give.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.core.events import Invocation, Response
from repro.core.history import History
from repro.core.properties import SafetyProperty, Verdict
from repro.engine.config import KernelConfig
from repro.engine.dpor import DporParityError, check_reduction
from repro.engine.explorer import ConfigVisit, KernelExplorer
from repro.engine.frontier import SearchBudgetExceeded
from repro.engine.parallel import parallel_explore
from repro.obs.recorder import active as _obs_active
from repro.sim.drivers import Decision, InvokeDecision, StepDecision
from repro.sim.kernel import Implementation

#: One process's planned invocations: a list of (operation, args).
InvocationPlan = Dict[int, List[Tuple[str, Tuple[Any, ...]]]]

#: A schedule is a list of decisions: ("invoke", pid) or ("step", pid).
Choice = Tuple[str, int]


@dataclass
class ExploredRun:
    """One maximal run of the exploration."""

    schedule: Tuple[Choice, ...]
    history: History
    complete: bool  # all planned invocations issued and completed


@dataclass
class ExplorationReport:
    """Outcome of checking a safety property over all interleavings."""

    property_name: str
    runs_checked: int
    counterexample: Optional[ExploredRun] = None
    #: Set only by ``reduction="dpor-parity"``: how many runs the
    #: unreduced search checked (the reduced count is ``runs_checked``).
    runs_checked_unreduced: Optional[int] = None

    @property
    def holds(self) -> bool:
        return self.counterexample is None


def plan_successors(plan: InvocationPlan) -> Callable[[KernelConfig], List]:
    """Engine callback: legal labelled decisions under the plan.

    A pending process may step; an idle, uncrashed process with planned
    invocations left may invoke its next one.  The cursor is the
    process's invocation count — the runtime already tracks it.

    Public because the schedule fuzzer (:mod:`repro.fuzz`) walks the
    same labelled decision space the exhaustive engine enumerates — one
    successor relation, two search disciplines.
    """

    def successors(config: KernelConfig) -> List[Tuple[Choice, Decision]]:
        out: List[Tuple[Choice, Decision]] = []
        for pid in sorted(plan):
            if config.is_crashed(pid):
                continue
            if config.is_pending(pid):
                out.append((("step", pid), StepDecision(pid)))
            else:
                cursor = config.invocations_of(pid)
                if cursor < len(plan[pid]):
                    operation, args = plan[pid][cursor]
                    out.append(
                        (("invoke", pid), InvokeDecision(pid, operation, args))
                    )
        return out

    return successors


def _plan_complete(config_pending: Callable[[int], bool], invocations_of, plan) -> bool:
    return all(
        invocations_of(pid) >= len(plan[pid]) and not config_pending(pid)
        for pid in plan
    )


def explore_histories(
    implementation_factory: Callable[[], Implementation],
    plan: InvocationPlan,
    max_depth: int = 64,
    max_configurations: int = 100_000,
    mode: str = "snapshot",
    processes: int = 0,
    reduction: str = "none",
) -> Iterator[ExploredRun]:
    """Yield one run per maximal schedule (modulo configuration dedup).

    Deduplication merges schedules that reach the same configuration,
    so each *configuration* is expanded once; the histories yielded are
    those of representatives of maximal runs.  Since safety properties
    are prefix-closed and history membership depends only on the events
    (determined by the configuration path), checking the yielded
    histories covers every reachable interleaving's history up to the
    dedup equivalence.

    The dedup key is the configuration *and* the history: two
    interleavings can commute to the same configuration while their
    histories differ in real-time order (e.g. response-before-invocation
    vs invocation-before-response), and safety verdicts depend on that
    order.  Including the event sequence keeps dedup sound — equal
    history means equal safety obligations, equal configuration means
    equal futures — while still collapsing the dominant explosion
    source: permutations of internal steps that emit no events.

    ``reduction="dpor"`` additionally prunes interleavings that are
    equivalent up to commutation of independent decisions — including
    event-order permutations the history-carrying dedup key cannot merge
    — via sleep sets over kernel-reported footprints
    (:mod:`repro.engine.dpor`).  The runs yielded are then Mazurkiewicz
    *representatives*: every safety verdict is preserved, but the set of
    histories is a (much smaller) subset of the unreduced one.
    """
    check_reduction(reduction, ("none", "dpor"))
    successors = plan_successors(plan)
    try:
        if processes > 1:
            if reduction != "none":
                raise ValueError(
                    "reduction='dpor' is not supported with processes > 1; "
                    "the parallel frontier keeps no sleep-set state"
                )
            if mode != "snapshot":
                # The pool workers expand by replay internally; honouring
                # an explicit replay/parity request would silently mean
                # something else, so refuse instead.
                raise ValueError(
                    f"mode={mode!r} is not supported with processes > 1; "
                    "the parallel frontier chooses its own expansion"
                )
            yield from _explore_parallel(
                implementation_factory,
                plan,
                successors,
                max_depth,
                max_configurations,
                processes,
            )
            return
        explorer = KernelExplorer(
            implementation_factory,
            successors,
            mode=mode,
            strategy="dfs",
            max_depth=max_depth,
            max_configurations=max_configurations,
            reduction=reduction,
        )
        for visit in explorer.run():
            run = _visit_to_run(visit.schedule, visit.choices, visit.depth,
                                max_depth, visit.config, plan)
            if run is not None:
                yield run
    except SearchBudgetExceeded:
        # Re-raise with the exploration-level budget in the message; the
        # type (a RuntimeError subclass) is part of the API — the verify
        # facade turns it into a ``budget-exhausted`` verdict.
        raise SearchBudgetExceeded(
            f"exploration exceeded {max_configurations} configurations"
        ) from None


def _visit_to_run(
    schedule, choices, depth, max_depth, config: KernelConfig, plan
) -> Optional[ExploredRun]:
    """Maximal-run filter: leaves are depth-bounded or choice-free."""
    if choices and depth < max_depth:
        return None
    return ExploredRun(
        schedule=tuple(schedule),
        history=config.history(),
        complete=_plan_complete(config.is_pending, config.invocations_of, plan),
    )


def _explore_parallel(
    implementation_factory,
    plan: InvocationPlan,
    successors,
    max_depth: int,
    max_configurations: int,
    processes: int,
) -> Iterator[ExploredRun]:
    """Process-pool frontier (see :mod:`repro.engine.parallel`)."""
    for visit in parallel_explore(
        implementation_factory,
        successors,
        max_depth=max_depth,
        max_configurations=max_configurations,
        processes=processes,
    ):
        if visit.choices and visit.depth < max_depth:
            continue
        invoked = {pid: 0 for pid in plan}
        responded = {pid: 0 for pid in plan}
        for event in visit.events:
            if isinstance(event, Invocation):
                invoked[event.process] += 1
            elif isinstance(event, Response):
                responded[event.process] += 1
        complete = all(
            invoked[pid] >= len(plan[pid]) and responded[pid] == invoked[pid]
            for pid in plan
        )
        yield ExploredRun(
            schedule=tuple(visit.schedule),
            history=History(list(visit.events), validate=False),
            complete=complete,
        )


def check_all_histories(
    implementation_factory: Callable[[], Implementation],
    plan: InvocationPlan,
    safety: SafetyProperty,
    max_depth: int = 64,
    max_configurations: int = 100_000,
    mode: str = "snapshot",
    processes: int = 0,
    reduction: str = "none",
) -> ExplorationReport:
    """Check a safety property over every reachable interleaving.

    ``reduction="dpor"`` checks one representative per commutation class
    (see :func:`explore_histories`); ``reduction="dpor-parity"`` runs
    the unreduced and reduced searches and raises
    :class:`~repro.engine.dpor.DporParityError` unless both agree on the
    verdict and on counterexample reachability — the executable form of
    the reduction's soundness claim.  The parity report returned is the
    reduced one."""
    if reduction == "dpor-parity":
        unreduced = check_all_histories(
            implementation_factory, plan, safety, max_depth,
            max_configurations, mode=mode, processes=processes,
        )
        reduced = check_all_histories(
            implementation_factory, plan, safety, max_depth,
            max_configurations, mode=mode, processes=processes,
            reduction="dpor",
        )
        if unreduced.holds != reduced.holds:
            raise DporParityError(
                f"verdict divergence on {safety.name}: unreduced "
                f"{'holds' if unreduced.holds else 'violated'} "
                f"({unreduced.runs_checked} runs) vs dpor "
                f"{'holds' if reduced.holds else 'violated'} "
                f"({reduced.runs_checked} runs)"
            )
        reduced.runs_checked_unreduced = unreduced.runs_checked
        return reduced
    runs_checked = 0
    counterexample: Optional[ExploredRun] = None
    rec = _obs_active()
    for run in explore_histories(
        implementation_factory,
        plan,
        max_depth,
        max_configurations,
        mode=mode,
        processes=processes,
        reduction=reduction,
    ):
        runs_checked += 1
        if rec is None:
            holds = safety.check_history(run.history).holds
        else:
            rec.count("safety/checks")
            with rec.span("safety/check"):
                holds = safety.check_history(run.history).holds
        if not holds:
            counterexample = run
            break
    return ExplorationReport(
        property_name=safety.name,
        runs_checked=runs_checked,
        counterexample=counterexample,
    )
