"""Exhaustive interleaving exploration: model-checking small workloads.

Random schedules sample the interleaving space; for small workloads the
space can be *exhausted*.  :func:`explore_histories` enumerates every
schedule of a fixed invocation plan (each process's operation sequence)
up to a depth bound, deduplicating configurations by fingerprint so the
exponential tree collapses to the reachable configuration DAG, and
yields the history of every maximal run.  :func:`check_all_histories`
wraps it into a verdict: a safety property holds on *every* reachable
interleaving, or here is the counterexample schedule.

Like the valency search, exploration is replay-based (generator frames
cannot be snapshotted): each DAG edge re-executes the run from scratch,
an O(depth) cost per node that buys exactness.  The fingerprint is the
same exact-configuration fingerprint the lasso detector uses — sound
dedup under the determinism contract of :mod:`repro.sim.kernel`.

Used by the test suite to verify, e.g., that *every* interleaving of
two AGP transactions is opaque and that every interleaving of two
CAS-consensus proposals decides consistently — exhaustive guarantees no
battery of random seeds can give.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.core.history import History
from repro.core.properties import SafetyProperty, Verdict
from repro.sim.drivers import InvokeDecision, ScriptedDriver, StepDecision
from repro.sim.kernel import Implementation
from repro.sim.runtime import Runtime

#: One process's planned invocations: a list of (operation, args).
InvocationPlan = Dict[int, List[Tuple[str, Tuple[Any, ...]]]]

#: A schedule is a list of decisions: ("invoke", pid) or ("step", pid).
Choice = Tuple[str, int]


@dataclass
class ExploredRun:
    """One maximal run of the exploration."""

    schedule: Tuple[Choice, ...]
    history: History
    complete: bool  # all planned invocations issued and completed


@dataclass
class ExplorationReport:
    """Outcome of checking a safety property over all interleavings."""

    property_name: str
    runs_checked: int
    counterexample: Optional[ExploredRun] = None

    @property
    def holds(self) -> bool:
        return self.counterexample is None


def _replay(
    implementation_factory: Callable[[], Implementation],
    plan: InvocationPlan,
    schedule: Sequence[Choice],
) -> Tuple[Runtime, "RunState"]:
    """Execute a schedule from scratch; returns the runtime and state."""
    implementation = implementation_factory()
    decisions: List[object] = []
    cursors = {pid: 0 for pid in plan}
    for kind, pid in schedule:
        if kind == "invoke":
            operation, args = plan[pid][cursors[pid]]
            cursors[pid] += 1
            decisions.append(InvokeDecision(pid, operation, args))
        else:
            decisions.append(StepDecision(pid))
    driver = ScriptedDriver(decisions, name="explore-replay")
    runtime = Runtime(
        implementation, driver, max_steps=len(decisions) + 1, detect_lasso=False
    )
    runtime.run()
    return runtime, RunState(runtime=runtime, cursors=cursors)


@dataclass
class RunState:
    """Configuration view after a replay."""

    runtime: Runtime
    cursors: Dict[int, int]

    def choices(self, plan: InvocationPlan) -> List[Choice]:
        """Legal next decisions from this configuration."""
        out: List[Choice] = []
        for pid in sorted(plan):
            state = self.runtime.processes[pid]
            if state.crashed:
                continue
            if state.pending:
                out.append(("step", pid))
            elif self.cursors[pid] < len(plan[pid]):
                out.append(("invoke", pid))
        return out

    def fingerprint(self) -> Hashable:
        """Dedup key: configuration *and* history.

        The configuration alone is not enough: two interleavings can
        commute to the same configuration while their histories differ
        in real-time order (e.g. response-before-invocation vs
        invocation-before-response), and safety verdicts depend on that
        order.  Including the event sequence keeps dedup sound — equal
        history means equal safety obligations, equal configuration
        means equal futures — while still collapsing the dominant
        explosion source: permutations of internal steps that emit no
        events.
        """
        return (
            tuple(sorted(self.cursors.items())),
            self.runtime.pool.snapshot_state(),
            tuple(state.fingerprint() for state in self.runtime.processes),
            tuple(self.runtime.events),
        )

    def history(self) -> History:
        return History(self.runtime.events, validate=False)

    def complete(self, plan: InvocationPlan) -> bool:
        return all(
            self.cursors[pid] >= len(plan[pid])
            and not self.runtime.processes[pid].pending
            for pid in plan
        )


def explore_histories(
    implementation_factory: Callable[[], Implementation],
    plan: InvocationPlan,
    max_depth: int = 64,
    max_configurations: int = 100_000,
) -> Iterator[ExploredRun]:
    """Yield one run per maximal schedule (modulo configuration dedup).

    Deduplication merges schedules that reach the same configuration,
    so each *configuration* is expanded once; the histories yielded are
    those of depth-first representatives of maximal runs.  Since safety
    properties are prefix-closed and history membership depends only on
    the events (determined by the configuration path), checking the
    yielded histories covers every reachable interleaving's history up
    to the dedup equivalence.
    """
    seen: set = set()
    stack: List[Tuple[Choice, ...]] = [()]
    while stack:
        schedule = stack.pop()
        if len(seen) >= max_configurations:
            raise RuntimeError(
                f"exploration exceeded {max_configurations} configurations"
            )
        _runtime, state = _replay(implementation_factory, plan, schedule)
        fingerprint = state.fingerprint()
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        choices = state.choices(plan)
        if not choices or len(schedule) >= max_depth:
            yield ExploredRun(
                schedule=schedule,
                history=state.history(),
                complete=state.complete(plan),
            )
            continue
        for choice in choices:
            stack.append(schedule + (choice,))


def check_all_histories(
    implementation_factory: Callable[[], Implementation],
    plan: InvocationPlan,
    safety: SafetyProperty,
    max_depth: int = 64,
    max_configurations: int = 100_000,
) -> ExplorationReport:
    """Check a safety property over every reachable interleaving."""
    runs_checked = 0
    counterexample: Optional[ExploredRun] = None
    for run in explore_histories(
        implementation_factory, plan, max_depth, max_configurations
    ):
        runs_checked += 1
        if not safety.check_history(run.history).holds:
            counterexample = run
            break
    return ExplorationReport(
        property_name=safety.name,
        runs_checked=runs_checked,
        counterexample=counterexample,
    )
