"""Workloads: what idle processes invoke next.

A workload is the benign half of the environment: it supplies each idle
process's next invocation.  (Adversaries embed their own input choices
and implement :class:`~repro.sim.drivers.Driver` directly.)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.util.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.runtime import RuntimeView

InvocationSpec = Tuple[str, Tuple[Any, ...]]


class Workload(ABC):
    """Supplies invocations for idle processes."""

    name: str = "workload"

    @abstractmethod
    def has_next(self, pid: int, view: "RuntimeView") -> bool:
        """True if process ``pid`` has another invocation to issue."""

    @abstractmethod
    def next_invocation(self, pid: int, view: "RuntimeView") -> InvocationSpec:
        """The next ``(operation, args)`` for ``pid``.

        Only called when :meth:`has_next` is true; consuming the
        invocation advances the workload's per-process cursor.
        """

    def fingerprint(self) -> Optional[Hashable]:
        """Workload state for lasso detection (``None`` disables)."""
        return None

    def reset(self) -> None:
        """Return to the initial state."""


class OneShotWorkload(Workload):
    """Each process issues one fixed invocation, once.

    Consensus experiments use this: process ``i`` proposes
    ``proposals[i]``.
    """

    def __init__(self, invocations: Sequence[Optional[InvocationSpec]], name: str = "one-shot"):
        self._invocations = list(invocations)
        self._issued = [False] * len(invocations)
        self.name = name

    def has_next(self, pid: int, view: "RuntimeView") -> bool:
        return (
            pid < len(self._invocations)
            and self._invocations[pid] is not None
            and not self._issued[pid]
        )

    def next_invocation(self, pid: int, view: "RuntimeView") -> InvocationSpec:
        self._issued[pid] = True
        spec = self._invocations[pid]
        assert spec is not None
        return spec

    def fingerprint(self) -> Optional[Hashable]:
        return ("one-shot", tuple(self._issued))

    def reset(self) -> None:
        self._issued = [False] * len(self._invocations)


class ScriptedWorkload(Workload):
    """Each process replays its own fixed invocation list."""

    def __init__(self, scripts: Dict[int, List[InvocationSpec]], name: str = "scripted"):
        self._scripts = {pid: list(script) for pid, script in scripts.items()}
        self._cursors = {pid: 0 for pid in scripts}
        self.name = name

    def has_next(self, pid: int, view: "RuntimeView") -> bool:
        return self._cursors.get(pid, 0) < len(self._scripts.get(pid, []))

    def next_invocation(self, pid: int, view: "RuntimeView") -> InvocationSpec:
        cursor = self._cursors[pid]
        self._cursors[pid] = cursor + 1
        return self._scripts[pid][cursor]

    def fingerprint(self) -> Optional[Hashable]:
        return ("scripted", tuple(sorted(self._cursors.items())))

    def reset(self) -> None:
        self._cursors = {pid: 0 for pid in self._scripts}


def propose_workload(values: Sequence[Any]) -> OneShotWorkload:
    """Consensus workload: process ``i`` proposes ``values[i]``.

    A ``None`` entry means the process proposes nothing.
    """
    return OneShotWorkload(
        [
            None if value is None else ("propose", (value,))
            for value in values
        ],
        name="propose",
    )


class TransactionWorkload(Workload):
    """TM workload: each process runs a stream of read/write transactions.

    Every transaction is the four-call sequence
    ``start; read(x); write(y, value); tryC`` over variables drawn
    round-robin (or at random with a seed) from ``variables``.  Aborted
    transactions are retried up to ``retries_per_tx`` times (``None`` =
    retry forever), so the workload keeps demanding commits the way the
    liveness definitions assume.

    The workload inspects the view's last response per process to decide
    whether the previous transaction step aborted (TM responses use the
    sentinels from :mod:`repro.objects.tm`).
    """

    def __init__(
        self,
        n_processes: int,
        transactions_per_process: int,
        variables: Sequence[int] = (0,),
        seed: Optional[object] = None,
        retries_per_tx: Optional[int] = None,
        name: str = "transactions",
    ):
        from repro.objects.tm import ABORTED, COMMITTED  # avoid import cycle

        self._aborted = ABORTED
        self._committed_sentinel = COMMITTED
        self.n_processes = n_processes
        self.transactions_per_process = transactions_per_process
        self.variables = tuple(variables)
        self.retries_per_tx = retries_per_tx
        self.name = name
        self._seed = seed
        self._rng = DeterministicRng(seed) if seed is not None else None
        # Per-process cursors.  ``call`` is the index of the next call in
        # the 4-call transaction script (0=start, 1=read, 2=write,
        # 3=tryC); ``seen`` counts the responses already folded into the
        # cursors, making observation idempotent.
        self._committed = [0] * n_processes
        self._call = [0] * n_processes
        self._retries = [0] * n_processes
        self._value_counter = [0] * n_processes
        self._seen = [0] * n_processes

    def _variables_for(self, pid: int) -> Tuple[int, int]:
        if self._rng is not None:
            read_var = self._rng.choice(self.variables)
            write_var = self._rng.choice(self.variables)
            return read_var, write_var
        count = self._committed[pid] + self._retries[pid]
        read_var = self.variables[count % len(self.variables)]
        write_var = self.variables[(count + pid) % len(self.variables)]
        return read_var, write_var

    def _sync(self, pid: int, view: "RuntimeView") -> None:
        """Fold the latest response (if unseen) into the cursors."""
        seen = view.response_count(pid)
        if seen == self._seen[pid]:
            return
        self._seen[pid] = seen
        last = view.last_response(pid)
        if last is None:
            return
        if last.value is self._aborted:
            self._call[pid] = 0
            self._retries[pid] += 1
        elif last.operation == "tryC" and last.value is self._committed_sentinel:
            self._call[pid] = 0
            self._committed[pid] += 1
            self._retries[pid] = 0

    def has_next(self, pid: int, view: "RuntimeView") -> bool:
        if pid >= self.n_processes:
            return False
        self._sync(pid, view)
        if self._committed[pid] >= self.transactions_per_process:
            return False
        if (
            self.retries_per_tx is not None
            and self._retries[pid] > self.retries_per_tx
        ):
            return False
        return True

    def next_invocation(self, pid: int, view: "RuntimeView") -> InvocationSpec:
        self._sync(pid, view)
        call = self._call[pid]
        read_var, write_var = self._variables_for(pid)
        if call == 0:
            self._call[pid] = 1
            return ("start", ())
        if call == 1:
            self._call[pid] = 2
            return ("read", (read_var,))
        if call == 2:
            self._call[pid] = 3
            self._value_counter[pid] += 1
            return ("write", (write_var, (pid, self._value_counter[pid])))
        # call == 3: commit request; _sync resets the cursor on response.
        return ("tryC", ())

    def committed(self, pid: int) -> int:
        """Transactions of ``pid`` committed so far (as observed)."""
        return self._committed[pid]

    def fingerprint(self) -> Optional[Hashable]:
        # Commit/retry counters grow monotonically; exact lasso detection
        # over this workload would never fire, and an unsound fingerprint
        # is worse than none — so disable it (runs under this workload
        # rely on implementation-provided abstractions or on horizons).
        return None

    def reset(self) -> None:
        self._committed = [0] * self.n_processes
        self._call = [0] * self.n_processes
        self._retries = [0] * self.n_processes
        self._value_counter = [0] * self.n_processes
        self._seen = [0] * self.n_processes
        if self._seed is not None:
            self._rng = DeterministicRng(self._seed)
