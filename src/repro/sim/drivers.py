"""Drivers: the external entity controlling schedule and inputs.

In the paper the *scheduler* orders process steps and the *adversary*
additionally decides which operations processes invoke.  The simulator
unifies both behind one interface: each simulation step the runtime asks
the driver for a :class:`Decision` — step a pending process, invoke an
operation on an idle process (input-enabledness guarantees this is always
allowed), crash a process, or stop.

Plain experiments compose a :class:`~repro.sim.schedulers.Scheduler`
(who moves) with a :class:`~repro.sim.workload.Workload` (what idle
processes invoke next) via :class:`ComposedDriver`.  Adversary strategies
(:mod:`repro.adversaries`) implement :class:`Driver` directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Hashable, List, Optional, Tuple, TYPE_CHECKING

from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.runtime import RuntimeView


@dataclass(frozen=True)
class StepDecision:
    """Advance the pending operation of ``pid`` by one atomic step."""

    pid: int


@dataclass(frozen=True)
class InvokeDecision:
    """Invoke ``operation(*args)`` on the idle process ``pid``."""

    pid: int
    operation: str
    args: Tuple[Any, ...] = ()


@dataclass(frozen=True)
class CrashDecision:
    """Crash process ``pid`` (its in-flight operation is lost)."""

    pid: int


@dataclass(frozen=True)
class StopDecision:
    """End the run.

    ``fair`` asserts that the driver stopped only because no non-crash
    action remained enabled *from the driver's point of view* — i.e. the
    run is a complete finite (fair) execution rather than a truncated
    observation.  The runtime additionally verifies that no process is
    mid-operation before accepting the fairness claim.
    """

    reason: str
    fair: bool = False


Decision = object  # union of the four dataclasses above


class Driver(ABC):
    """The entity that plays schedule and inputs against an
    implementation."""

    name: str = "driver"

    @abstractmethod
    def decide(self, view: "RuntimeView") -> Decision:
        """Pick the next action given the read-only runtime view."""

    def fingerprint(self) -> Optional[Hashable]:
        """Driver part of the lasso fingerprint.

        Must capture *all* driver state that influences future decisions;
        return ``None`` to disable lasso detection for runs under this
        driver (the safe default for stateful drivers that do not
        implement it).
        """
        return None

    def reset(self) -> None:
        """Return to the initial strategy state (fresh runs)."""

    # -- state capture (the branching liveness search) ----------------------

    def capture_state(self) -> Hashable:
        """A restorable copy of the full strategy state.

        The liveness search snapshots driver state alongside the kernel
        configuration so a branch can resume mid-strategy.  The default
        raises: a driver that cannot be captured can only be played
        straight-line (which the adversary strategies never need — they
        all implement :meth:`capture_state`/:meth:`restore_state`).
        """
        raise NotImplementedError(
            f"driver {self.name!r} does not support state capture"
        )

    def restore_state(self, state: Hashable) -> None:
        """Restore a state captured by :meth:`capture_state`."""
        raise NotImplementedError(
            f"driver {self.name!r} does not support state restore"
        )


class ComposedDriver(Driver):
    """Scheduler × workload × crash-plan composition.

    Each decision: first consult the crash plan; then collect the
    *eligible* processes — pending ones (can step) and idle ones for
    which the workload still has an invocation — and let the scheduler
    pick one.  When nobody is eligible the run stops, fairly if no
    operation is in flight.
    """

    def __init__(self, scheduler, workload, crash_plan=None, name: Optional[str] = None):
        self.scheduler = scheduler
        self.workload = workload
        self.crash_plan = crash_plan
        self.name = name or f"{scheduler.name}+{workload.name}"

    def decide(self, view: "RuntimeView") -> Decision:
        if self.crash_plan is not None:
            victim = self.crash_plan.next_crash(view)
            if victim is not None:
                return CrashDecision(pid=victim)
        eligible: List[int] = []
        for pid in range(view.n_processes):
            if view.is_crashed(pid):
                continue
            if not self.scheduler.admissible(pid):
                continue  # this scheduler delays pid forever
            if view.is_pending(pid):
                eligible.append(pid)
            elif self.workload.has_next(pid, view):
                eligible.append(pid)
        if not eligible:
            # The run ends.  It is a *fair* finite execution iff no
            # operation is in flight anywhere: pending operations of
            # never-scheduled processes would have enabled actions.
            fair = not any(
                view.is_pending(pid) for pid in range(view.n_processes)
            )
            return StopDecision(reason="no eligible process", fair=fair)
        pid = self.scheduler.pick(eligible, view)
        if pid not in eligible:
            raise SimulationError(
                f"scheduler {self.scheduler.name!r} picked ineligible p{pid}"
            )
        if view.is_pending(pid):
            return StepDecision(pid=pid)
        operation, args = self.workload.next_invocation(pid, view)
        return InvokeDecision(pid=pid, operation=operation, args=args)

    def fingerprint(self) -> Optional[Hashable]:
        scheduler_fp = self.scheduler.fingerprint()
        workload_fp = self.workload.fingerprint()
        if scheduler_fp is None or workload_fp is None:
            return None
        crash_fp: Hashable = None
        if self.crash_plan is not None:
            crash_fp = self.crash_plan.fingerprint()
            if crash_fp is None:
                return None
        return (scheduler_fp, workload_fp, crash_fp)

    def reset(self) -> None:
        self.scheduler.reset()
        self.workload.reset()
        if self.crash_plan is not None:
            self.crash_plan.reset()


class ScriptedDriver(Driver):
    """Replay an explicit list of decisions, then stop.

    Used by unit tests to drive a runtime through an exact interleaving.
    """

    def __init__(self, decisions, name: str = "scripted", fair_stop: bool = False):
        self._decisions = list(decisions)
        self._cursor = 0
        self.name = name
        self._fair_stop = fair_stop

    def decide(self, view: "RuntimeView") -> Decision:
        if self._cursor >= len(self._decisions):
            return StopDecision(reason="script exhausted", fair=self._fair_stop)
        decision = self._decisions[self._cursor]
        self._cursor += 1
        return decision

    def fingerprint(self) -> Optional[Hashable]:
        return ("scripted", self._cursor)

    def reset(self) -> None:
        self._cursor = 0
