"""The simulation engine: plays a driver against an implementation.

:class:`Runtime` owns the per-run state (base-object pool, process
states, history, statistics) and executes the decision loop:

1. ask the driver for a :class:`~repro.sim.drivers.Decision`;
2. apply it — invoke (record the invocation event and create the
   operation frame), step (advance one frame by one atomic primitive,
   recording the response event if the operation completed), or crash;
3. feed the lasso detector; stop on budget, lasso, or driver stop.

The runtime enforces the model's rules: input-enabledness (only idle
processes are invoked), one outstanding operation per process, no steps
after a crash.  Violations raise
:class:`~repro.util.errors.SimulationError` — they indicate a buggy
driver, never a legal behaviour.
"""

from __future__ import annotations


from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.events import Crash, Invocation, Response
from repro.core.history import History
from repro.core.object_type import ProgressMode
from repro.sim.drivers import (
    CrashDecision,
    Decision,
    Driver,
    InvokeDecision,
    StepDecision,
    StopDecision,
)
from repro.sim.kernel import (
    Footprint,
    Implementation,
    ProcessFrame,
    ProcessState,
    run_step,
)
from repro.sim.lasso import LassoDetector
from repro.sim.record import ProcessStats, RunResult
from repro.util.errors import SimulationError
from repro.util.plaincopy import plain_copy


class RuntimeView:
    """Read-only facade over a runtime, handed to drivers and workloads."""

    def __init__(self, runtime: "Runtime"):
        self._runtime = runtime

    @property
    def n_processes(self) -> int:
        return self._runtime.implementation.n_processes

    @property
    def step(self) -> int:
        """Number of decisions applied so far."""
        return self._runtime.step_count

    def is_idle(self, pid: int) -> bool:
        return self._runtime.processes[pid].idle

    def is_pending(self, pid: int) -> bool:
        return self._runtime.processes[pid].pending

    def is_crashed(self, pid: int) -> bool:
        return self._runtime.processes[pid].crashed

    def pending_operation(self, pid: int) -> Optional[str]:
        frame = self._runtime.processes[pid].frame
        return frame.invocation.operation if frame else None

    def invocation_count(self, pid: int) -> int:
        return self._runtime.stats[pid].invocations

    def response_count(self, pid: int) -> int:
        return self._runtime.stats[pid].responses

    def good_response_count(self, pid: int) -> int:
        return self._runtime.stats[pid].good_responses

    def last_response(self, pid: int) -> Optional[Response]:
        return self._runtime.last_response.get(pid)

    def last_event(self) -> Optional[object]:
        events = self._runtime.events
        return events[-1] if events else None

    @property
    def history(self) -> History:
        """The history so far (materialised on demand)."""
        return History(self._runtime.events, validate=False)


def kernel_state_fingerprint(runtime: "Runtime") -> Hashable:
    """The kernel half of an exact lasso fingerprint: pool state plus
    per-process frames/memories.

    THE one definition of the exact repetition key.  Every consumer —
    the runtime's own detector, the liveness search
    (:meth:`repro.engine.config.KernelConfig.kernel_fingerprint` is the
    incremental-cached equivalent and must compute the same value), and
    the certificate replay (:mod:`repro.sim.lasso_shrink`) — must agree
    byte-for-byte, or engine-found lassos would fail their independent
    replay.
    """
    return (
        runtime.pool.snapshot_state(),
        tuple(state.fingerprint() for state in runtime.processes),
    )


def abstract_state_fingerprint(runtime: "Runtime") -> Optional[Hashable]:
    """The kernel half of an abstract lasso fingerprint, or ``None``
    when the implementation offers no quotient.

    Frames are folded in as the pending operation name only: the
    intra-operation position is deliberately *not* included (it grows
    without bound in looping operations).  Implementations providing an
    abstraction must therefore encode their control position in process
    memory (a ``pc`` key); the shipped abstractions all do.  Shared by
    the runtime's detector, the liveness search, and certificate replay
    for the same agree-byte-for-byte reason as
    :func:`kernel_state_fingerprint`.
    """
    abstraction = runtime.implementation.liveness_abstraction(
        runtime.pool, tuple(state.memory for state in runtime.processes)
    )
    if abstraction is None:
        return None
    pending = tuple(
        state.frame.invocation.operation if state.frame is not None else None
        for state in runtime.processes
    )
    crashed = tuple(state.crashed for state in runtime.processes)
    return (abstraction, pending, crashed)


class Runtime:
    """One playable instance of driver-vs-implementation.

    Parameters
    ----------
    implementation:
        The shared-object implementation under test.
    driver:
        The schedule-and-input strategy.
    max_steps:
        Decision budget; hitting it yields a horizon run.
    detect_lasso:
        Enable the repeated-configuration detector.
    lasso_stride:
        Fingerprint every n-th step (see
        :class:`~repro.sim.lasso.LassoDetector`).
    record_replay_log:
        Record, on every frame, the primitive results fed to its
        generator and the process memory as of the invocation.  This is
        what makes a configuration snapshot/restorable by the
        exploration engine (:mod:`repro.engine.config`); plain
        simulation runs leave it off and pay nothing.
    """

    def __init__(
        self,
        implementation: Implementation,
        driver: Driver,
        max_steps: int = 100_000,
        detect_lasso: bool = True,
        lasso_stride: int = 1,
        record_replay_log: bool = False,
    ):
        self.implementation = implementation
        self.driver = driver
        self.max_steps = max_steps
        self.detect_lasso = detect_lasso
        self.record_replay_log = record_replay_log
        self.pool = implementation.create_pool()
        self.processes: List[ProcessState] = [
            ProcessState(pid=pid, memory=implementation.initial_memory(pid))
            for pid in range(implementation.n_processes)
        ]
        self.stats: Dict[int, ProcessStats] = {
            pid: ProcessStats(pid=pid) for pid in range(implementation.n_processes)
        }
        self.events: List[object] = []
        self.last_response: Dict[int, Response] = {}
        self.step_count = 0
        # Off by default: recording costs a pool lookup per step, and
        # only the DPOR-enabled exploration engine consumes footprints.
        self.record_footprints = False
        self.last_footprint: Optional[Footprint] = None
        self._view = RuntimeView(self)
        self._detector = LassoDetector(check_every=lasso_stride)

    def reset_lasso(self) -> None:
        """Forget every configuration the lasso detector has observed.

        Every *restart* path — anything that rewinds this runtime to an
        earlier (or different) configuration, such as
        :meth:`repro.engine.config.KernelConfig.restore_from` — must
        call this: fingerprints left over from before the rewind would
        match configurations of the new run and fabricate a bogus
        cross-run "lasso"."""
        self._detector.reset()

    @property
    def view(self) -> RuntimeView:
        """The read-only facade handed to drivers, schedulers, and crash
        plans.  Exposed publicly so external decision loops (the
        exploration engine, the schedule fuzzer) can consult the same
        components a :class:`~repro.sim.drivers.ComposedDriver` would."""
        return self._view

    # -- decision application ---------------------------------------------------

    def _apply_invoke(self, decision: InvokeDecision) -> None:
        state = self.processes[decision.pid]
        if state.crashed:
            raise SimulationError(f"cannot invoke on crashed p{decision.pid}")
        if not state.idle:
            raise SimulationError(
                f"cannot invoke on p{decision.pid}: operation already pending"
            )
        invocation = Invocation(
            process=decision.pid, operation=decision.operation, args=decision.args
        )
        # Memory is copied *before* algorithm() runs: implementations may
        # mutate memory at generator-creation time, and the snapshot
        # restore path replays that mutation by calling algorithm() again.
        memory_before = plain_copy(state.memory) if self.record_replay_log else None
        generator = self.implementation.algorithm(
            decision.pid, decision.operation, decision.args, state.memory
        )
        state.frame = ProcessFrame(invocation=invocation, generator=generator)
        if self.record_replay_log:
            state.frame.result_log = []
            state.frame.memory_at_invoke = memory_before
        self.events.append(invocation)
        self.stats[decision.pid].invocations += 1

    def _apply_step(self, decision: StepDecision) -> None:
        state = self.processes[decision.pid]
        if state.crashed:
            raise SimulationError(f"cannot step crashed p{decision.pid}")
        if state.frame is None:
            raise SimulationError(
                f"cannot step p{decision.pid}: no pending operation"
            )
        stats = self.stats[decision.pid]
        stats.steps += 1
        stats.last_step = self.step_count
        frame = state.frame
        finished, value = run_step(frame, self.pool)
        if self.record_footprints:
            if finished:
                # StopIteration precedes any primitive application in
                # run_step, so a completing step touches no pool cell.
                self.last_footprint = Footprint(decision.pid, "response")
            else:
                op = frame.pending_op
                mode, key = self.pool.footprint(op.obj, op.method, op.args)
                cells = ((op.obj, key),)
                self.last_footprint = Footprint(
                    decision.pid,
                    "step",
                    reads=cells if mode == "read" else (),
                    writes=cells if mode == "write" else (),
                )
        if finished:
            response = Response(
                process=decision.pid,
                operation=state.frame.invocation.operation,
                value=value,
            )
            state.frame = None
            self.events.append(response)
            self.last_response[decision.pid] = response
            stats.responses += 1
            if self.implementation.object_type.is_good(response):
                stats.good_responses += 1
                stats.good_response_steps.append(self.step_count)

    def _apply_crash(self, decision: CrashDecision) -> None:
        state = self.processes[decision.pid]
        if state.crashed:
            raise SimulationError(f"p{decision.pid} is already crashed")
        if state.frame is not None:
            state.frame.generator.close()
            state.frame = None
        state.crashed = True
        self.stats[decision.pid].crashed = True
        self.events.append(Crash(process=decision.pid))

    def apply_decision(self, decision: Decision) -> None:
        """Apply one non-stop decision outside the driver loop.

        The exploration engine drives a runtime decision-by-decision
        (there is no driver to consult); the same validity rules apply
        and ``step_count`` advances exactly as in :meth:`run`.
        """
        if isinstance(decision, InvokeDecision):
            self._apply_invoke(decision)
            if self.record_footprints:
                # Creating the generator runs no algorithm code (the
                # body starts on the first step) and touches no pool.
                self.last_footprint = Footprint(decision.pid, "invoke")
        elif isinstance(decision, StepDecision):
            self._apply_step(decision)
        elif isinstance(decision, CrashDecision):
            self._apply_crash(decision)
            if self.record_footprints:
                self.last_footprint = Footprint(decision.pid, "crash")
        else:
            raise SimulationError(f"unknown decision {decision!r}")
        self.step_count += 1

    # -- fingerprints ------------------------------------------------------------

    def _exact_fingerprint(self) -> Optional[Hashable]:
        driver_fp = self.driver.fingerprint()
        if driver_fp is None:
            return None
        return (driver_fp, kernel_state_fingerprint(self))

    def _abstract_fingerprint(self) -> Optional[Hashable]:
        driver_fp = self.driver.fingerprint()
        if driver_fp is None:
            return None
        abstraction = abstract_state_fingerprint(self)
        if abstraction is None:
            return None
        return (driver_fp, abstraction)

    # -- the loop -----------------------------------------------------------------

    def run(self) -> RunResult:
        """Play the driver until stop, budget, or lasso."""
        stop_reason = "max-steps"
        fairness_complete = False
        lasso = None
        while self.step_count < self.max_steps:
            decision = self.driver.decide(self._view)
            if isinstance(decision, StopDecision):
                stop_reason = f"driver-stop: {decision.reason}"
                fairness_complete = decision.fair and not any(
                    state.pending for state in self.processes
                )
                break
            self.apply_decision(decision)
            if self.detect_lasso:
                lasso = self._detector.observe(
                    self.step_count,
                    self._exact_fingerprint(),
                    self._abstract_fingerprint(),
                )
                if lasso is not None:
                    stop_reason = "lasso"
                    break
        for state in self.processes:
            self.stats[state.pid].pending_at_end = state.pending
        return RunResult(
            history=History(self.events, validate=False),
            n_processes=self.implementation.n_processes,
            total_steps=self.step_count,
            stop_reason=stop_reason,
            fairness_complete=fairness_complete,
            stats=self.stats,
            lasso=lasso,
            driver_name=self.driver.name,
            implementation_name=self.implementation.name,
        )


def play(
    implementation: Implementation,
    driver: Driver,
    max_steps: int = 100_000,
    detect_lasso: bool = True,
    lasso_stride: int = 1,
) -> RunResult:
    """One-call convenience: fresh runtime, fresh driver state, one run."""
    driver.reset()
    runtime = Runtime(
        implementation,
        driver,
        max_steps=max_steps,
        detect_lasso=detect_lasso,
        lasso_stride=lasso_stride,
    )
    return runtime.run()
