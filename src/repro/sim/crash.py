"""Crash plans: when processes fail.

The model allows any number of crash failures at any time (Section 2's
``crash_i`` input action).  A crash plan decides, before each driver
decision, whether some process crashes now.  Plans are deterministic and
fingerprintable so crashes do not break lasso detection.
"""

from __future__ import annotations

import re

from abc import ABC, abstractmethod
from typing import Callable, Dict, Hashable, Optional, Sequence, Set, TYPE_CHECKING

from repro.util.errors import UsageError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.runtime import RuntimeView


class CrashPlan(ABC):
    """Decides crash injections."""

    name: str = "crash-plan"

    @abstractmethod
    def next_crash(self, view: "RuntimeView") -> Optional[int]:
        """Pid to crash before the next decision, or ``None``."""

    def fingerprint(self) -> Optional[Hashable]:
        """Plan state for lasso detection (``None`` disables)."""
        return None

    def reset(self) -> None:
        """Return to the initial state."""


class NoCrashes(CrashPlan):
    """The failure-free plan."""

    name = "no-crashes"

    def next_crash(self, view: "RuntimeView") -> Optional[int]:
        return None

    def fingerprint(self) -> Optional[Hashable]:
        return "no-crashes"


class CrashAtStep(CrashPlan):
    """Crash given processes at given global step numbers.

    ``schedule`` maps step number → pid.  A pid already crashed is
    skipped silently (plans compose with adversarial drivers that may
    have crashed it earlier).
    """

    def __init__(self, schedule: Dict[int, int]):
        self.schedule = dict(schedule)
        self.name = f"crash-at({sorted(schedule.items())})"
        self._done: Set[int] = set()

    def next_crash(self, view: "RuntimeView") -> Optional[int]:
        step = view.step
        if step in self.schedule and step not in self._done:
            self._done.add(step)
            pid = self.schedule[step]
            if not view.is_crashed(pid):
                return pid
        return None

    def fingerprint(self) -> Optional[Hashable]:
        return ("crash-at", tuple(sorted(self._done)))

    def reset(self) -> None:
        self._done = set()


class CrashAfterInvocations(CrashPlan):
    """Crash each listed process once it has issued a number of
    invocations.

    Useful for failure-injection tests: crash a process mid-workload and
    check that safety still holds and that liveness properties treat it
    as faulty rather than starving.
    """

    def __init__(self, thresholds: Dict[int, int]):
        self.thresholds = dict(thresholds)
        self.name = f"crash-after-invocations({sorted(thresholds.items())})"
        self._done: Set[int] = set()

    def next_crash(self, view: "RuntimeView") -> Optional[int]:
        for pid, threshold in sorted(self.thresholds.items()):
            if pid in self._done or view.is_crashed(pid):
                continue
            if view.invocation_count(pid) >= threshold:
                self._done.add(pid)
                return pid
        return None

    def fingerprint(self) -> Optional[Hashable]:
        return ("crash-after", tuple(sorted(self._done)))

    def reset(self) -> None:
        self._done = set()


#: Compact crash-pattern syntax: ``pPID@STEP`` terms joined by ``+``.
_CRASH_TERM = re.compile(r"p(\d+)@(\d+)")


def parse_crash_spec(spec: Optional[str]) -> Optional[Callable[[], CrashPlan]]:
    """Parse a compact crash-pattern string into a plan factory.

    The grammar is the one campaign grids sweep over: ``"none"`` (or
    ``None``/empty) means no crashes and returns ``None``;
    ``"p0@40"`` crashes process 0 at global step 40; terms compose with
    ``+`` (``"p0@40+p1@60"``).  Factories rather than instances so every
    play gets a fresh (resettable) plan.
    """
    if spec is None or spec in ("", "none"):
        return None
    schedule: Dict[int, int] = {}
    for term in str(spec).split("+"):
        match = _CRASH_TERM.fullmatch(term.strip())
        if match is None:
            raise UsageError(
                f"bad crash pattern term {term.strip()!r} in {spec!r}; "
                "expected pPID@STEP terms joined by '+', e.g. 'p0@40+p1@60'"
            )
        pid, step = int(match.group(1)), int(match.group(2))
        if step in schedule:
            raise UsageError(
                f"crash pattern {spec!r} schedules two crashes at step {step}"
            )
        schedule[step] = pid
    return lambda: CrashAtStep(schedule)
