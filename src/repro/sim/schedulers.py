"""Schedulers: who takes the next step.

A scheduler picks one process among the eligible ones (pending, or idle
with workload remaining).  The model's asynchrony means *any* scheduler
is legal; the ones here cover the schedules the paper's arguments need:

* solo and k-bounded schedules for obstruction-style guarantees,
* lockstep schedules for the consensus contention argument,
* round-robin and seeded-random schedules for fair background load.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, List, Optional, Sequence, TYPE_CHECKING

from repro.util.errors import SimulationError
from repro.util.rng import DeterministicRng, normalize_seed

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.runtime import RuntimeView


class Scheduler(ABC):
    """Chooses one process among the eligible ones."""

    name: str = "scheduler"

    @abstractmethod
    def pick(self, eligible: Sequence[int], view: "RuntimeView") -> int:
        """Return the pid to move next; must be a member of
        ``eligible``."""

    def admissible(self, pid: int) -> bool:
        """Whether this scheduler ever gives ``pid`` a turn.

        Restricted schedulers (solo, group, lockstep) delay everyone
        outside their group forever; the driver filters eligibility
        through this predicate so a run ends cleanly when only
        never-scheduled processes still have work.
        """
        return True

    def fingerprint(self) -> Optional[Hashable]:
        """Scheduler state for lasso detection (``None`` disables)."""
        return None

    def reset(self) -> None:
        """Return to initial state."""


class RoundRobinScheduler(Scheduler):
    """Cycle through processes in pid order, skipping ineligible ones.

    A fair scheduler: every eligible process is picked infinitely often.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def pick(self, eligible: Sequence[int], view: "RuntimeView") -> int:
        eligible_set = set(eligible)
        for offset in range(view.n_processes):
            pid = (self._next + offset) % view.n_processes
            if pid in eligible_set:
                self._next = (pid + 1) % view.n_processes
                return pid
        raise SimulationError("round-robin called with no eligible process")

    def fingerprint(self) -> Optional[Hashable]:
        return ("round-robin", self._next)

    def reset(self) -> None:
        self._next = 0


class RandomScheduler(Scheduler):
    """Uniformly random eligible process, from a deterministic seed.

    Probabilistically fair; used for background-load experiments.  Lasso
    fingerprinting is disabled (the RNG state space is huge), so runs
    under this scheduler produce horizon verdicts.

    The seed is normalized to an int via
    :func:`~repro.util.rng.normalize_seed`, so two schedulers built from
    equal seeds — whatever the caller passed (int, string, campaign axis
    value) — produce identical pick sequences, and an irreproducible
    seed object is rejected instead of silently salting the stream.
    """

    name = "random"

    def __init__(self, seed: object = 0):
        self._seed = normalize_seed(seed)
        self._rng = DeterministicRng(self._seed)

    @property
    def seed(self) -> int:
        """The normalized integer seed."""
        return self._seed

    def pick(self, eligible: Sequence[int], view: "RuntimeView") -> int:
        return self._rng.choice(list(eligible))

    def reset(self) -> None:
        self._rng = DeterministicRng(self._seed)


class WeightedRandomScheduler(Scheduler):
    """Random eligible process under per-process weights (biased pick).

    The schedule-fuzzer's swarm mutation: weights tilt the uniform
    choice toward a subset of processes, which exercises interleaving
    families a uniform sampler rarely produces (near-solo runs, starved
    readers, …).  A missing weight counts as 1; weights must be
    positive.
    """

    name = "weighted-random"

    def __init__(self, weights: Sequence[float], seed: object = 0):
        self.weights = tuple(float(w) for w in weights)
        if any(w <= 0 for w in self.weights):
            raise ValueError(f"weights must be positive, got {weights!r}")
        self._seed = normalize_seed(seed)
        self._rng = DeterministicRng(self._seed)

    def _weight(self, pid: int) -> float:
        return self.weights[pid] if pid < len(self.weights) else 1.0

    def pick(self, eligible: Sequence[int], view: "RuntimeView") -> int:
        if not eligible:
            raise SimulationError("weighted-random called with no eligible process")
        total = sum(self._weight(pid) for pid in eligible)
        mark = self._rng.random() * total
        for pid in eligible:
            mark -= self._weight(pid)
            if mark < 0:
                return pid
        return eligible[-1]  # float round-off

    def reset(self) -> None:
        self._rng = DeterministicRng(self._seed)


class PriorityScheduler(Scheduler):
    """Highest-priority eligible process, under a fixed priority order.

    The swarm mutation's priority shuffle: a random permutation of the
    pids yields a deterministic scheduler that drives one extreme
    interleaving per permutation (the first process runs solo until it
    blocks or finishes, then the next, …).  Pids missing from ``order``
    rank last, in pid order.
    """

    def __init__(self, order: Sequence[int]):
        self.order = tuple(order)
        self.name = f"priority({','.join('p%d' % p for p in self.order)})"

    def pick(self, eligible: Sequence[int], view: "RuntimeView") -> int:
        if not eligible:
            raise SimulationError("priority called with no eligible process")
        eligible_set = set(eligible)
        for pid in self.order:
            if pid in eligible_set:
                return pid
        return min(eligible_set)

    def fingerprint(self) -> Optional[Hashable]:
        return ("priority", self.order)


class SoloScheduler(Scheduler):
    """Only one chosen process ever moves.

    The schedule behind obstruction-freedom's premise: the chosen process
    eventually runs without step contention (here: from the start).
    """

    def __init__(self, pid: int):
        self.pid = pid
        self.name = f"solo(p{pid})"

    def pick(self, eligible: Sequence[int], view: "RuntimeView") -> int:
        if self.pid not in eligible:
            raise SimulationError(
                f"solo process p{self.pid} is not eligible (eligible={list(eligible)})"
            )
        return self.pid

    def admissible(self, pid: int) -> bool:
        return pid == self.pid

    def fingerprint(self) -> Optional[Hashable]:
        return ("solo", self.pid)


class GroupScheduler(Scheduler):
    """Round-robin restricted to a fixed group of processes.

    Realises the premise of ``k``-obstruction-freedom: only the group
    (of size ``k``) takes steps; everyone else is delayed forever.
    """

    def __init__(self, group: Sequence[int]):
        if not group:
            raise ValueError("group must be non-empty")
        self.group = tuple(sorted(set(group)))
        self.name = f"group({','.join('p%d' % p for p in self.group)})"
        self._next_index = 0

    def pick(self, eligible: Sequence[int], view: "RuntimeView") -> int:
        eligible_in_group = [p for p in self.group if p in set(eligible)]
        if not eligible_in_group:
            raise SimulationError(
                f"no member of group {self.group} is eligible"
            )
        for offset in range(len(self.group)):
            index = (self._next_index + offset) % len(self.group)
            if self.group[index] in eligible_in_group:
                self._next_index = (index + 1) % len(self.group)
                return self.group[index]
        raise SimulationError("unreachable")  # pragma: no cover

    def admissible(self, pid: int) -> bool:
        return pid in self.group

    def fingerprint(self) -> Optional[Hashable]:
        return ("group", self.group, self._next_index)

    def reset(self) -> None:
        self._next_index = 0


class LockstepScheduler(Scheduler):
    """Strict alternation within a group: one step each, in order.

    The contention schedule of the consensus impossibility argument
    (Section 5.2): two processes advancing in lockstep can prevent any
    register-based consensus from ever deciding.  Unlike
    :class:`GroupScheduler` it does not skip a group member while that
    member is eligible, so the alternation is exact.
    """

    def __init__(self, group: Sequence[int]):
        if not group:
            raise ValueError("group must be non-empty")
        self.group = tuple(group)
        self.name = f"lockstep({','.join('p%d' % p for p in self.group)})"
        self._turn = 0

    def pick(self, eligible: Sequence[int], view: "RuntimeView") -> int:
        eligible_set = set(eligible)
        for offset in range(len(self.group)):
            index = (self._turn + offset) % len(self.group)
            pid = self.group[index]
            if pid in eligible_set:
                self._turn = (index + 1) % len(self.group)
                return pid
        raise SimulationError(f"no member of lockstep group {self.group} eligible")

    def admissible(self, pid: int) -> bool:
        return pid in self.group

    def fingerprint(self) -> Optional[Hashable]:
        return ("lockstep", self.group, self._turn)

    def reset(self) -> None:
        self._turn = 0


class FixedOrderScheduler(Scheduler):
    """Replay an explicit pid sequence (then stop being consulted).

    Used by tests that need an exact interleaving; raises if the
    scripted pid is not eligible, so scripts cannot silently diverge.
    """

    def __init__(self, order: Sequence[int]):
        self.order = tuple(order)
        self.name = "fixed-order"
        self._cursor = 0

    def pick(self, eligible: Sequence[int], view: "RuntimeView") -> int:
        if self._cursor >= len(self.order):
            raise SimulationError("fixed-order schedule exhausted")
        pid = self.order[self._cursor]
        self._cursor += 1
        if pid not in set(eligible):
            raise SimulationError(
                f"scripted pid p{pid} not eligible at step {self._cursor - 1}"
            )
        return pid

    def fingerprint(self) -> Optional[Hashable]:
        return ("fixed-order", self._cursor)

    def reset(self) -> None:
        self._cursor = 0
