"""Run records: what a simulation produces and how it is summarised.

A :class:`RunResult` carries the externally visible history, per-process
step statistics, the stop reason, and — when the lasso detector fired —
a certificate of the infinite continuation.  Its :meth:`RunResult.summary`
method derives the :class:`~repro.core.properties.ExecutionSummary` that
liveness properties consume, applying the finite/lasso/horizon semantics
documented in DESIGN.md §5:

* **finite, fairness-complete** runs — nobody takes infinitely many
  steps; progressors are the processes whose demands were met
  (``EVENTUAL``: at least one good response; ``REPEATED``: at least one
  good response, or no invocation issued at all);
* **lasso-certified** runs — the run is ``stem · cycle^ω``; steppers are
  the processes stepping in the cycle, progressors the processes with a
  good response in the cycle (``REPEATED``) or anywhere (``EVENTUAL``);
* **horizon** runs — the run hit the step budget; the final window
  (a configurable fraction of the run) approximates the limit, and all
  verdicts carry :attr:`~repro.core.properties.Certainty.HORIZON`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.history import History
from repro.core.object_type import ObjectType, ProgressMode
from repro.core.properties import Certainty, ExecutionSummary


@dataclass(frozen=True)
class LassoCertificate:
    """Evidence that the run repeats forever from ``cycle_start``.

    ``fingerprint_kind`` records whether the matched fingerprint was the
    exact global configuration (``"exact"``) or an implementation-provided
    abstraction (``"abstract"``); abstract certificates are sound exactly
    when the abstraction is a bisimulation quotient, which each providing
    implementation documents.
    """

    cycle_start: int
    cycle_end: int
    fingerprint_kind: str

    @property
    def cycle_length(self) -> int:
        return self.cycle_end - self.cycle_start


@dataclass
class ProcessStats:
    """Per-process counters accumulated by the runtime."""

    pid: int
    steps: int = 0
    last_step: int = -1
    invocations: int = 0
    responses: int = 0
    good_responses: int = 0
    good_response_steps: List[int] = field(default_factory=list)
    crashed: bool = False
    pending_at_end: bool = False


@dataclass
class RunResult:
    """Everything one simulation run produced."""

    history: History
    n_processes: int
    total_steps: int
    stop_reason: str
    fairness_complete: bool
    stats: Dict[int, ProcessStats]
    lasso: Optional[LassoCertificate] = None
    driver_name: str = ""
    implementation_name: str = ""

    # -- convenience accessors ------------------------------------------------

    def crashed(self) -> FrozenSet[int]:
        """Processes that crashed during the run."""
        return frozenset(p for p, s in self.stats.items() if s.crashed)

    def correct(self) -> FrozenSet[int]:
        """Processes that did not crash."""
        return frozenset(range(self.n_processes)) - self.crashed()

    def good_responses(self, pid: int) -> int:
        """Count of good responses received by ``pid``."""
        return self.stats[pid].good_responses

    # -- ExecutionSummary derivation -------------------------------------------

    def summary(
        self,
        progress_mode: ProgressMode,
        window_fraction: float = 0.25,
    ) -> ExecutionSummary:
        """Derive the liveness-level summary of this run.

        ``window_fraction`` controls the suffix window used by horizon
        runs (the final fraction of steps standing in for 'the limit').
        """
        correct = self.correct()
        if self.fairness_complete and self.lasso is None:
            progressors = frozenset(
                pid
                for pid in correct
                if self._finite_progress(self.stats[pid], progress_mode)
            )
            return ExecutionSummary(
                n_processes=self.n_processes,
                correct=correct,
                steppers=frozenset(),
                progressors=progressors,
                finite=True,
                certainty=Certainty.PROVED,
                history=self.history,
            )
        if self.lasso is not None:
            start = self.lasso.cycle_start
            steppers = frozenset(
                pid for pid in correct if self.stats[pid].last_step >= start
            )
            progressors = frozenset(
                pid
                for pid in correct
                if self._limit_progress(self.stats[pid], progress_mode, start)
            )
            return ExecutionSummary(
                n_processes=self.n_processes,
                correct=correct,
                steppers=steppers,
                progressors=progressors & steppers
                if progress_mode is ProgressMode.REPEATED
                else progressors,
                finite=False,
                certainty=Certainty.PROVED,
                history=self.history,
            )
        # Horizon semantics: the final window approximates the limit.
        window_start = max(0, int(self.total_steps * (1.0 - window_fraction)))
        steppers = frozenset(
            pid for pid in correct if self.stats[pid].last_step >= window_start
        )
        progressors = frozenset(
            pid
            for pid in correct
            if self._limit_progress(self.stats[pid], progress_mode, window_start)
        )
        if progress_mode is ProgressMode.REPEATED:
            progressors = progressors & steppers
        return ExecutionSummary(
            n_processes=self.n_processes,
            correct=correct,
            steppers=steppers,
            progressors=progressors,
            finite=False,
            certainty=Certainty.HORIZON,
            history=self.history,
        )

    @staticmethod
    def _finite_progress(stats: ProcessStats, mode: ProgressMode) -> bool:
        """Progress in a complete finite execution.

        A process that never invoked anything has no demand and counts as
        progressing (liveness requires good responses only for processes
        that want them); a process with a pending invocation at the end
        of a fairness-complete run is starved by the implementation.
        """
        if stats.pending_at_end:
            return False
        if stats.invocations == 0:
            return True
        return stats.good_responses > 0

    @staticmethod
    def _limit_progress(
        stats: ProcessStats, mode: ProgressMode, window_start: int
    ) -> bool:
        """Progress in an infinite (lasso or horizon) execution."""
        if mode is ProgressMode.EVENTUAL:
            return stats.good_responses > 0
        return any(mark >= window_start for mark in stats.good_response_steps)

    def describe(self) -> str:
        """One-line human-readable account of the run."""
        kind = (
            "finite-fair"
            if self.fairness_complete and self.lasso is None
            else ("lasso" if self.lasso else "horizon")
        )
        good = sum(s.good_responses for s in self.stats.values())
        return (
            f"{self.implementation_name} / {self.driver_name}: "
            f"{self.total_steps} steps, {len(self.history)} events, "
            f"{good} good responses, stop={self.stop_reason} [{kind}]"
        )
