"""Replay and ddmin-style minimization of lasso certificates.

A starvation proof found by the liveness search is a decision sequence
``stem · cycle`` whose end state equals its cycle-start state — so the
run extends to ``stem · cycle^ω``.  This module makes that evidence
independent of the search machinery:

* :func:`replay_lasso` re-executes the decisions on a fresh *plain*
  runtime (:class:`~repro.sim.runtime.Runtime` — never the snapshot
  engine) and re-checks the certificate's claims: the state repetition
  under the certificate's fingerprint kind, and the run statistics the
  liveness verdict is recomputed from.
* :func:`shrink_lasso` minimizes a replaying certificate, analogous to
  the ddmin schedule shrinker (:mod:`repro.fuzz.shrink`): first the
  cycle is reduced to its true period (a strided detector may report a
  multiple of it), then the stem is ddmin-shrunk chunk-wise.  A
  candidate is *interesting* iff it replays validly, still closes the
  cycle (or, for finite certificates, still completes fairly), and the
  liveness property still fails on the replayed run's summary.

Certificate kinds mirror :class:`~repro.sim.record.LassoCertificate`
plus one: ``"exact"`` compares full kernel state, ``"abstract"``
compares the implementation's liveness abstraction, and ``"finite"``
(empty cycle) certifies a complete fair finite execution instead of an
infinite one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Sequence, Tuple

from repro.core.object_type import ProgressMode
from repro.core.properties import LivenessProperty
from repro.sim.drivers import Decision, ScriptedDriver
from repro.sim.record import LassoCertificate, RunResult
from repro.sim.runtime import (
    Runtime,
    abstract_state_fingerprint,
    kernel_state_fingerprint,
)
from repro.util.errors import SimulationError

#: The certificate kinds replay knows how to re-check.
CERTIFICATE_KINDS = ("exact", "abstract", "finite")


@dataclass
class LassoReplayResult:
    """Outcome of replaying ``stem · cycle`` on a plain runtime."""

    valid: bool
    #: State repetition re-verified under the certificate's kind
    #: (``False`` for finite certificates, which have no cycle).
    repeats: bool
    #: The replayed run with a synthetic certificate attached when the
    #: cycle closed (``None`` when the replay was invalid).
    result: Optional[RunResult] = None
    error: Optional[str] = None

    def certifies(self, kind: str) -> bool:
        """Whether the replay re-established the certificate's claim:
        a closing cycle for lasso kinds, a complete fair finite run for
        ``"finite"``."""
        if not self.valid or self.result is None:
            return False
        if kind == "finite":
            return self.result.fairness_complete
        return self.repeats


def _state_fingerprint(runtime: Runtime, kind: str) -> Optional[Hashable]:
    """The replay-side repetition key for one certificate kind — the
    same shared definitions the search observed, so a genuine
    engine-found lasso always re-certifies here."""
    if kind == "exact":
        return kernel_state_fingerprint(runtime)
    if kind == "abstract":
        return abstract_state_fingerprint(runtime)
    return None  # finite: no repetition claim


def replay_lasso(
    factory,
    stem: Sequence[Decision],
    cycle: Sequence[Decision],
    kind: str = "exact",
) -> LassoReplayResult:
    """Re-execute ``stem`` then ``cycle`` from scratch; re-check the
    certificate.

    Invalid decision sequences (stepping an idle process, …) yield
    ``valid=False`` rather than raising — the shrinker treats
    invalidity as "candidate rejected", exactly like the schedule
    shrinker does.
    """
    if kind not in CERTIFICATE_KINDS:
        raise ValueError(
            f"certificate kind must be one of {CERTIFICATE_KINDS}, got {kind!r}"
        )
    implementation = factory()
    runtime = Runtime(
        implementation,
        ScriptedDriver([], name="lasso-replay"),
        max_steps=len(stem) + len(cycle) + 1,
        detect_lasso=False,
    )
    try:
        for decision in stem:
            runtime.apply_decision(decision)
        cycle_entry = _state_fingerprint(runtime, kind)
        for decision in cycle:
            runtime.apply_decision(decision)
        cycle_exit = _state_fingerprint(runtime, kind)
    except SimulationError as exc:
        return LassoReplayResult(valid=False, repeats=False, error=str(exc))
    repeats = bool(cycle) and cycle_entry is not None and cycle_entry == cycle_exit
    complete = not any(state.pending for state in runtime.processes)
    for state in runtime.processes:
        runtime.stats[state.pid].pending_at_end = state.pending
    result = RunResult(
        history=runtime.view.history,
        n_processes=implementation.n_processes,
        total_steps=runtime.step_count,
        stop_reason="lasso" if repeats else "replay",
        fairness_complete=not cycle and complete,
        stats=runtime.stats,
        lasso=LassoCertificate(
            cycle_start=len(stem),
            cycle_end=len(stem) + len(cycle),
            fingerprint_kind=kind,
        )
        if repeats
        else None,
        driver_name="lasso-replay",
        implementation_name=implementation.name,
    )
    return LassoReplayResult(valid=True, repeats=repeats, result=result)


def certifies_starvation(
    factory,
    stem: Sequence[Decision],
    cycle: Sequence[Decision],
    kind: str,
    liveness: LivenessProperty,
    progress_mode: ProgressMode,
    starving: Sequence[int] = (),
) -> bool:
    """THE acceptance predicate for a starvation certificate.

    True iff the decisions replay validly on a plain runtime, the
    certificate's repetition/completeness claim re-establishes under
    ``kind``, every process in ``starving`` is still starved, and the
    liveness property still fails on the replayed run's summary.
    Shared by the shrinker's candidate filter and the verify backend's
    final ``lasso_replays`` check, so the two can never drift apart.
    """
    replay = replay_lasso(factory, stem, cycle, kind)
    if not replay.certifies(kind):
        return False
    summary = replay.result.summary(progress_mode)
    if not frozenset(starving) <= (summary.correct - summary.progressors):
        return False
    return not liveness.evaluate(summary).holds


@dataclass
class ShrunkLasso:
    """A minimized certificate plus shrink statistics."""

    stem: Tuple[Decision, ...]
    cycle: Tuple[Decision, ...]
    original_stem_length: int
    original_cycle_length: int
    replays: int
    #: ``False`` when the *input* certificate failed
    #: :func:`certifies_starvation` — the caller keeps the original and
    #: must surface the failure loudly.  ``True`` means the returned
    #: ``stem``/``cycle`` *passed* that predicate (every kept candidate
    #: was replay-verified, and replays are deterministic), so callers
    #: need not re-verify.
    faithful: bool = True


def _divisors(n: int):
    for d in range(1, n):
        if n % d == 0:
            yield d


def shrink_lasso(
    factory,
    stem: Sequence[Decision],
    cycle: Sequence[Decision],
    kind: str,
    liveness: LivenessProperty,
    progress_mode: ProgressMode,
    starving: Sequence[int] = (),
    max_replays: int = 2_000,
) -> ShrunkLasso:
    """Minimize a certificate while it keeps certifying the violation.

    Phase 1 reduces the cycle to its shortest period (divisor probing —
    the stride-soundness complement: a strided detector reports some
    multiple of the true period).  Phase 2 ddmin-shrinks the stem with
    the cycle fixed.  A candidate must keep every process in
    ``starving`` starved (not just *some* process — otherwise ddmin
    could drop a victim's invocations entirely and the minimized
    certificate would witness a different starving set than it
    records).  Deterministic: candidate order is a pure function of the
    input, replays are deterministic by the kernel contract.
    """
    stats = {"replays": 0}

    def interesting(candidate_stem, candidate_cycle) -> bool:
        if stats["replays"] >= max_replays:
            return False  # budget exhausted: keep the current witness
        stats["replays"] += 1
        return certifies_starvation(
            factory, candidate_stem, candidate_cycle, kind, liveness,
            progress_mode, starving,
        )

    current_stem = tuple(stem)
    current_cycle = tuple(cycle)
    if not interesting(current_stem, current_cycle):
        return ShrunkLasso(
            stem=current_stem,
            cycle=current_cycle,
            original_stem_length=len(stem),
            original_cycle_length=len(cycle),
            replays=stats["replays"],
            faithful=False,
        )

    # Phase 1: cycle period reduction (smallest divisor first).
    reduced = True
    while reduced and len(current_cycle) > 1:
        reduced = False
        for period in _divisors(len(current_cycle)):
            if interesting(current_stem, current_cycle[:period]):
                current_cycle = current_cycle[:period]
                reduced = True
                break

    # Phase 2: ddmin on the stem, cycle fixed.
    chunk = max(len(current_stem) // 2, 1)
    while chunk >= 1 and current_stem:
        shrunk_this_round = False
        start = 0
        while start < len(current_stem):
            candidate = current_stem[:start] + current_stem[start + chunk:]
            if candidate != current_stem and interesting(candidate, current_cycle):
                current_stem = candidate
                shrunk_this_round = True
            else:
                start += chunk
        if not shrunk_this_round:
            if chunk == 1:
                break
            chunk = max(chunk // 2, 1)

    return ShrunkLasso(
        stem=current_stem,
        cycle=current_cycle,
        original_stem_length=len(stem),
        original_cycle_length=len(cycle),
        replays=stats["replays"],
    )
