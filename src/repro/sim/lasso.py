"""Lasso detection: certifying infinite executions of deterministic runs.

A run under a deterministic driver, crash plan and implementation is a
deterministic trajectory through global configurations
``(driver state, base objects, process memories and frames)``.  If a
configuration repeats, the trajectory is ``stem · cycle^ω`` — a genuine
infinite execution — and liveness verdicts over it are exact rather than
horizon-bounded: the processes taking infinitely many steps are exactly
those stepping inside the cycle, and the good responses occurring
infinitely often are exactly those emitted inside the cycle.

Detection uses a hash map from configuration fingerprints to step
numbers.  Fingerprints come in two kinds:

* **exact** — driver fingerprint × pool state × process states.  Sound
  unconditionally (given the determinism contract of
  :mod:`repro.sim.kernel`).
* **abstract** — an implementation-provided quotient
  (:meth:`repro.sim.kernel.Implementation.liveness_abstraction`) used
  when the exact state grows monotonically (round counters,
  timestamps).  Sound when the abstraction is a bisimulation quotient;
  the certificate records which kind fired so reports can distinguish.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro.sim.record import LassoCertificate


class LassoDetector:
    """Incremental repeated-configuration detector.

    Parameters
    ----------
    check_every:
        Only fingerprint every ``check_every``-th step (fingerprinting
        hashes the full state; for long runs a stride keeps the overhead
        linear with a small constant).  A lasso whose period is not a
        multiple of the stride is still found once the stride divides a
        multiple of the period, at the cost of a longer reported cycle —
        soundness is unaffected.
    """

    def __init__(self, check_every: int = 1):
        if check_every < 1:
            raise ValueError("check_every must be positive")
        self.check_every = check_every
        self._seen_exact: Dict[Hashable, int] = {}
        self._seen_abstract: Dict[Hashable, int] = {}

    def observe(
        self,
        step: int,
        exact: Optional[Hashable],
        abstract: Optional[Hashable],
    ) -> Optional[LassoCertificate]:
        """Record a configuration; return a certificate if it repeats.

        ``exact`` being ``None`` means the driver (or a component)
        declined to be fingerprinted; ``abstract`` being ``None`` means
        the implementation offers no quotient.  Exact matches are
        preferred when both fire on the same step.
        """
        if step % self.check_every != 0:
            return None
        if exact is not None:
            previous = self._seen_exact.get(exact)
            if previous is not None:
                return LassoCertificate(
                    cycle_start=previous, cycle_end=step, fingerprint_kind="exact"
                )
            self._seen_exact[exact] = step
        if abstract is not None:
            previous = self._seen_abstract.get(abstract)
            if previous is not None:
                return LassoCertificate(
                    cycle_start=previous,
                    cycle_end=step,
                    fingerprint_kind="abstract",
                )
            self._seen_abstract[abstract] = step
        return None

    def reset(self) -> None:
        """Forget all observed configurations.

        Must be called on every *restart* path — any run that begins
        from a fresh (or restored) configuration while reusing the
        detector.  Stale fingerprints from a previous run would match a
        configuration of the new run and fabricate a bogus cross-run
        "lasso"; the regression tests in ``tests/test_sim_lasso.py``
        pin this down.
        """
        self._seen_exact.clear()
        self._seen_abstract.clear()

    # -- branch bookkeeping (the liveness search) ---------------------------

    def snapshot(self) -> Tuple[Dict[Hashable, int], Dict[Hashable, int]]:
        """The observed-configuration maps, copied.

        A lasso is a repetition *along one run*; a search that branches
        over scheduler choices must therefore fork the detector state at
        every branch point (a repeat across two sibling branches is a
        DAG merge, not a cycle).  ``snapshot``/``restore`` make the
        per-path maps restorable exactly like kernel configurations.
        """
        return (dict(self._seen_exact), dict(self._seen_abstract))

    def restore(
        self, state: Tuple[Dict[Hashable, int], Dict[Hashable, int]]
    ) -> None:
        """Overwrite the maps with a :meth:`snapshot` (copied again, so
        one snapshot may seed many branches)."""
        exact, abstract = state
        self._seen_exact = dict(exact)
        self._seen_abstract = dict(abstract)
