"""Deterministic discrete-event simulator of asynchronous shared memory."""

from repro.sim.kernel import Algorithm, Implementation, Op, ProcessFrame, ProcessState
from repro.sim.drivers import (
    ComposedDriver,
    CrashDecision,
    Decision,
    Driver,
    InvokeDecision,
    ScriptedDriver,
    StepDecision,
    StopDecision,
)
from repro.sim.schedulers import (
    FixedOrderScheduler,
    GroupScheduler,
    LockstepScheduler,
    PriorityScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    SoloScheduler,
    WeightedRandomScheduler,
)
from repro.sim.workload import (
    OneShotWorkload,
    ScriptedWorkload,
    TransactionWorkload,
    Workload,
    propose_workload,
)
from repro.sim.crash import CrashAfterInvocations, CrashAtStep, CrashPlan, NoCrashes
from repro.sim.record import LassoCertificate, ProcessStats, RunResult
from repro.sim.lasso import LassoDetector
from repro.sim.lasso_shrink import (
    LassoReplayResult,
    ShrunkLasso,
    certifies_starvation,
    replay_lasso,
    shrink_lasso,
)
from repro.sim.liveness_search import (
    AdversaryPolicy,
    LivenessRun,
    LivenessSearch,
    PlanPolicy,
    SchedulePolicy,
)
from repro.sim.runtime import Runtime, RuntimeView, play
from repro.sim.explore import (
    ExplorationReport,
    ExploredRun,
    check_all_histories,
    explore_histories,
    plan_successors,
)

__all__ = [
    "Algorithm",
    "Implementation",
    "Op",
    "ProcessFrame",
    "ProcessState",
    "ComposedDriver",
    "CrashDecision",
    "Decision",
    "Driver",
    "InvokeDecision",
    "ScriptedDriver",
    "StepDecision",
    "StopDecision",
    "FixedOrderScheduler",
    "GroupScheduler",
    "LockstepScheduler",
    "PriorityScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "SoloScheduler",
    "WeightedRandomScheduler",
    "OneShotWorkload",
    "ScriptedWorkload",
    "TransactionWorkload",
    "Workload",
    "propose_workload",
    "CrashAfterInvocations",
    "CrashAtStep",
    "CrashPlan",
    "NoCrashes",
    "LassoCertificate",
    "ProcessStats",
    "RunResult",
    "LassoDetector",
    "LassoReplayResult",
    "ShrunkLasso",
    "certifies_starvation",
    "replay_lasso",
    "shrink_lasso",
    "AdversaryPolicy",
    "LivenessRun",
    "LivenessSearch",
    "PlanPolicy",
    "SchedulePolicy",
    "Runtime",
    "RuntimeView",
    "play",
    "ExplorationReport",
    "ExploredRun",
    "check_all_histories",
    "explore_histories",
    "plan_successors",
]
