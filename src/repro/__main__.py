"""Command-line entry point: run the paper's experiments.

Usage::

    python -m repro list                 # available experiments
    python -m repro run fig1a            # one experiment
    python -m repro run all              # everything (exit 1 on mismatch)
    python -m repro run fig1b --param n=4 --param max_steps=300

    python -m repro campaign init --grid fig1a n=2..4 seed=0..4
    python -m repro campaign run --workers 4
    python -m repro campaign status
    python -m repro campaign export --out campaign.json

Exit codes: 0 all claims OK, 1 a paper claim mismatched or a job
failed, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List

from repro.analysis import EXPERIMENTS, run_experiment
from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    export_campaign,
    render_results,
    render_status,
    run_campaign,
    store_all_ok,
)
from repro.campaign.spec import coerce_scalar as _coerce_value
from repro.util.errors import UsageError

#: Default campaign store path (override with ``--store``).
DEFAULT_STORE = "campaign.db"


def _parse_params(pairs: List[str]) -> Dict[str, Any]:
    """Parse ``key=value`` pairs (ints, floats, booleans, JSON values;
    bare strings as fallback)."""
    params: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        params[key] = _coerce_value(raw)
    return params


def cmd_list() -> int:
    width = max(len(spec.experiment_id) for spec in EXPERIMENTS.values())
    for experiment_id in sorted(EXPERIMENTS):
        spec = EXPERIMENTS[experiment_id]
        axes = f"  [axes: {', '.join(spec.grid_axes)}]" if spec.grid_axes else ""
        print(f"{experiment_id:<{width}}  {spec.title}{axes}")
    return 0


def cmd_run(targets: List[str], params: Dict[str, Any]) -> int:
    if targets == ["all"]:
        targets = sorted(EXPERIMENTS)
    failures = 0
    for experiment_id in targets:
        if experiment_id not in EXPERIMENTS:
            print(f"unknown experiment {experiment_id!r}; try 'list'", file=sys.stderr)
            return 2
        started = time.time()
        result = run_experiment(experiment_id, **params) if params else run_experiment(
            experiment_id
        )
        elapsed = time.time() - started
        print(result.render())
        print(f"[{experiment_id}] {'ALL OK' if result.all_ok else 'MISMATCH'} "
              f"({elapsed:.2f}s)")
        print()
        if not result.all_ok:
            failures += 1
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# campaign subcommands
# ---------------------------------------------------------------------------


def cmd_campaign_init(arguments) -> int:
    spec = CampaignSpec.from_cli(
        arguments.grid, arguments.axes, name=arguments.name
    )
    jobs = spec.expand()
    with CampaignStore.create(arguments.store, spec) as store:
        added = store.add_jobs(jobs)
        counts = store.counts()
    total = sum(counts.values())
    print(
        f"{arguments.store}: {added} job(s) added "
        f"({len(jobs) - added} already present), {total} total "
        f"({counts['done']} done, {counts['pending']} pending)"
    )
    return 0


def cmd_campaign_run(arguments) -> int:
    summary = run_campaign(
        arguments.store,
        workers=arguments.workers,
        max_jobs=arguments.max_jobs,
        reclaim=not arguments.no_reclaim,
    )
    print(
        f"executed {summary['executed']} job(s)"
        + (f" (reclaimed {summary['reclaimed']})" if summary["reclaimed"] else "")
        + f"; store now: {summary['done']} done, {summary['failed']} failed, "
        f"{summary['claimed']} claimed, {summary['pending']} pending"
    )
    with CampaignStore.open(arguments.store) as store:
        complete = summary["pending"] == 0 and summary["claimed"] == 0
        return 0 if store_all_ok(store) and complete else 1


def cmd_campaign_status(arguments) -> int:
    with CampaignStore.open(arguments.store) as store:
        done = store.jobs("done")
        print(render_status(store, done_records=done))
        if arguments.render:
            print()
            print(render_results(store))
        counts = store.counts()
        ok = (
            store_all_ok(store, done_records=done)
            and counts["pending"] == counts["claimed"] == 0
        )
    return 0 if ok else 1


def cmd_campaign_reset(arguments) -> int:
    statuses: List[str] = []
    if arguments.failed or not (arguments.claimed or arguments.all):
        statuses.append("failed")
    if arguments.claimed:
        statuses.append("claimed")
    if arguments.all:
        statuses = ["claimed", "done", "failed"]
    with CampaignStore.open(arguments.store) as store:
        count = store.reset(statuses, experiment=arguments.experiment)
    print(f"reset {count} job(s) ({', '.join(statuses)} -> pending)")
    return 0


def cmd_campaign_export(arguments) -> int:
    with CampaignStore.open(arguments.store) as store:
        document = export_campaign(store)
        if arguments.render:
            # keep stdout a pure JSON stream when no --out is given
            print(render_results(store), file=sys.stdout if arguments.out else sys.stderr)
    if arguments.out:
        with open(arguments.out, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"wrote {arguments.out}")
    else:
        sys.stdout.write(document)
    return 0


def cmd_campaign(arguments) -> int:
    handlers = {
        "init": cmd_campaign_init,
        "run": cmd_campaign_run,
        "status": cmd_campaign_status,
        "reset": cmd_campaign_reset,
        "export": cmd_campaign_export,
    }
    return handlers[arguments.campaign_command](arguments)


def _add_campaign_parser(subparsers) -> None:
    campaign = subparsers.add_parser(
        "campaign",
        help="persistent, resumable experiment sweeps (grid -> store -> workers)",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def store_arg(parser) -> None:
        parser.add_argument(
            "--store", default=DEFAULT_STORE,
            help=f"campaign store path (default: {DEFAULT_STORE})",
        )

    init = campaign_sub.add_parser(
        "init", help="expand a parameter grid into the store (idempotent)"
    )
    store_arg(init)
    init.add_argument(
        "--grid", action="append", default=[], metavar="EXPERIMENT",
        help="experiment id to sweep (repeatable; default: all experiments)",
    )
    init.add_argument("--name", default="campaign", help="campaign name")
    init.add_argument(
        "axes", nargs="*", metavar="axis=values",
        help="grid axes, e.g. n=2..4 seed=0..4 crash=none,p0@40 "
        "registry=commit-adopt lk=2x3; axes an experiment does not "
        "support are dropped for it",
    )

    run = campaign_sub.add_parser("run", help="execute open jobs from the store")
    store_arg(run)
    run.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: REPRO_ENGINE_PARALLEL; 0/1 = serial)",
    )
    run.add_argument(
        "--max-jobs", type=int, default=None,
        help="execute at most this many jobs (serial only)",
    )
    run.add_argument(
        "--no-reclaim", action="store_true",
        help="do not recover claims of dead local workers first",
    )

    status = campaign_sub.add_parser("status", help="job counts and failures")
    store_arg(status)
    status.add_argument(
        "--render", action="store_true",
        help="also re-render claim tables and grids from stored results",
    )

    reset = campaign_sub.add_parser(
        "reset", help="send failed (default), claimed, or all jobs back to pending"
    )
    store_arg(reset)
    reset.add_argument("--failed", action="store_true", help="reset failed jobs")
    reset.add_argument("--claimed", action="store_true", help="reset claimed jobs")
    reset.add_argument("--all", action="store_true", help="reset every job")
    reset.add_argument(
        "--experiment", default=None, help="restrict to one experiment id"
    )

    export = campaign_sub.add_parser(
        "export", help="deterministic JSON export of the store"
    )
    store_arg(export)
    export.add_argument("--out", default=None, help="write to file instead of stdout")
    export.add_argument(
        "--render", action="store_true",
        help="also re-render claim tables and grids from stored results",
    )


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce Bushkov & Guerraoui, PODC 2015.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments", nargs="+", help="experiment ids, or 'all'"
    )
    run_parser.add_argument(
        "--param",
        action="append",
        default=[],
        help="runner parameter as key=value (repeatable); applied to every "
        "listed experiment",
    )
    _add_campaign_parser(subparsers)
    arguments = parser.parse_args(argv)
    try:
        if arguments.command == "list":
            return cmd_list()
        if arguments.command == "campaign":
            return cmd_campaign(arguments)
        return cmd_run(arguments.experiments, _parse_params(arguments.param))
    except UsageError as error:
        print(f"usage error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
