"""Command-line entry point: run the paper's experiments.

Usage::

    python -m repro list                 # available experiments
    python -m repro run fig1a            # one experiment
    python -m repro run all              # everything (exit 1 on mismatch)
    python -m repro run fig1b --param n=4 --param max_steps=300

    python -m repro scenarios list                    # the scenario catalog
    python -m repro scenarios list --tag small --format md
    python -m repro scenarios list --family tm-grid   # generated instances
    python -m repro scenarios list --no-families      # curated catalog only
    python -m repro verify agp-opacity                # exhaustive proof
    python -m repro verify tm-grid:impl=norec,n=2,plan=rw,vars=2
    python -m repro verify agp-opacity-3p --backend fuzz --set seed=7
    python -m repro verify stubborn-consensus --out verdict.json
    python -m repro verify trivial-local-progress-f1 --backend liveness
    python -m repro verify agp-opacity --metrics-out m.json --trace-out t.json
    python -m repro profile agp-opacity --backend fuzz     # hotspot table

    python -m repro campaign init --grid fig1a n=2..4 seed=0..4
    python -m repro campaign init --grid verify scenario=agp-opacity backend=fuzz seed=0..4
    python -m repro campaign run --workers 4 --trace-out trace.json
    python -m repro campaign status
    python -m repro campaign status --watch          # live progress + ETA
    python -m repro campaign export --out campaign.json --metrics-out m.json

    python -m repro fuzz --list                       # fuzzable scenarios
    python -m repro fuzz agp-opacity --seed 7         # random sampling
    python -m repro fuzz small --oracle               # vs exhaustive
    python -m repro fuzz stubborn-consensus --artifact-dir artifacts/
    python -m repro fuzz --replay artifacts/fuzz-....json

    python -m repro mutate --list                     # the seeded mutants
    python -m repro mutate --backend fuzz --backend liveness --out kill.json
    python -m repro mutate --mutant agp-dropped-cas --md

    python -m repro verify agp-opacity --cache readwrite   # memoized verify
    python -m repro serve --port 8765 --workers 4          # HTTP service
    python -m repro cache stats                            # verdict cache
    python -m repro cache gc                               # evict stale code

    python -m repro lint                              # project static analysis
    python -m repro lint --list-rules                 # the rule table
    python -m repro lint --select FP001,OB001 --format md
    python -m repro lint --footprints                 # static vs dynamic FP001

Exit codes: 0 all claims OK (verify/fuzz: every verdict as expected /
oracle agreement), 1 a paper claim mismatched, a job failed, or a
verdict surprised (including budget-exhausted), 2 usage error.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import tempfile
import time
from typing import Any, Dict, List

from repro.analysis import EXPERIMENTS, run_experiment
from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    export_campaign,
    render_results,
    render_status,
    run_campaign,
    store_all_ok,
)
from repro.util.errors import UsageError
from repro.util.params import parse_params

#: Default campaign store path (override with ``--store``).
DEFAULT_STORE = "campaign.db"


def _parse_params(pairs: List[str], option: str = "--param") -> Dict[str, Any]:
    """Parse ``key=value`` pairs (the shared
    :func:`repro.util.params.parse_params` grammar; malformed pairs are
    usage errors -> exit code 2)."""
    return parse_params(pairs, option=option)


def cmd_list() -> int:
    width = max(len(spec.experiment_id) for spec in EXPERIMENTS.values())
    for experiment_id in sorted(EXPERIMENTS):
        spec = EXPERIMENTS[experiment_id]
        axes = f"  [axes: {', '.join(spec.grid_axes)}]" if spec.grid_axes else ""
        print(f"{experiment_id:<{width}}  {spec.title}{axes}")
    return 0


def cmd_run(targets: List[str], params: Dict[str, Any]) -> int:
    if targets == ["all"]:
        targets = sorted(EXPERIMENTS)
    failures = 0
    for experiment_id in targets:
        if experiment_id not in EXPERIMENTS:
            print(f"unknown experiment {experiment_id!r}; try 'list'", file=sys.stderr)
            return 2
        started = time.time()
        result = run_experiment(experiment_id, **params) if params else run_experiment(
            experiment_id
        )
        elapsed = time.time() - started
        print(result.render())
        print(f"[{experiment_id}] {'ALL OK' if result.all_ok else 'MISMATCH'} "
              f"({elapsed:.2f}s)")
        print()
        if not result.all_ok:
            failures += 1
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# campaign subcommands
# ---------------------------------------------------------------------------


def cmd_campaign_init(arguments) -> int:
    spec = CampaignSpec.from_cli(
        arguments.grid, arguments.axes, name=arguments.name
    )
    jobs = spec.expand()
    with CampaignStore.create(arguments.store, spec) as store:
        added = store.add_jobs(jobs)
        counts = store.counts()
    total = sum(counts.values())
    print(
        f"{arguments.store}: {added} job(s) added "
        f"({len(jobs) - added} already present), {total} total "
        f"({counts['done']} done, {counts['pending']} pending)"
    )
    return 0


def cmd_campaign_run(arguments) -> int:
    if arguments.cache is not None:
        # The worker pool forks, so the cache configuration travels by
        # environment: every verify() a job issues sees the same mode
        # and shares the one WAL store.
        from repro.service import check_cache_mode, default_cache_path

        os.environ["REPRO_VERIFY_CACHE"] = check_cache_mode(arguments.cache)
        os.environ["REPRO_CACHE_DB"] = default_cache_path(arguments.cache_db)
    trace_dir = None
    stack = contextlib.ExitStack()
    with stack:
        if arguments.trace_out is not None:
            # Workers write per-process trace fragments here; merged
            # into one Perfetto timeline (a lane per worker) below.
            trace_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-trace-")
            )
        summary = run_campaign(
            arguments.store,
            workers=arguments.workers,
            max_jobs=arguments.max_jobs,
            reclaim=not arguments.no_reclaim,
            metrics=arguments.metrics_out is not None,
            trace_dir=trace_dir,
        )
        if arguments.trace_out is not None:
            from repro.obs import merge_trace_fragments, write_trace

            fragments = sorted(
                os.path.join(trace_dir, name)
                for name in os.listdir(trace_dir)
            )
            events, names = merge_trace_fragments(fragments)
            write_trace(arguments.trace_out, events, names)
            print(f"wrote {arguments.trace_out} ({len(names)} worker lane(s))")
    if arguments.metrics_out is not None:
        from repro.campaign import merged_metrics
        from repro.obs import write_metrics

        with CampaignStore.open(arguments.store) as store:
            write_metrics(arguments.metrics_out, merged_metrics(store))
        print(f"wrote {arguments.metrics_out}")
    print(
        f"executed {summary['executed']} job(s)"
        + (f" (reclaimed {summary['reclaimed']})" if summary["reclaimed"] else "")
        + f"; store now: {summary['done']} done, {summary['failed']} failed, "
        f"{summary['claimed']} claimed, {summary['pending']} pending"
    )
    with CampaignStore.open(arguments.store) as store:
        complete = summary["pending"] == 0 and summary["claimed"] == 0
        return 0 if store_all_ok(store) and complete else 1


def cmd_campaign_status(arguments) -> int:
    if arguments.watch:
        from repro.campaign import watch_status

        watch_status(arguments.store, interval=arguments.interval)
        print("campaign finished; final status:")
        # fall through to the one-shot report for the closing summary
    with CampaignStore.open(arguments.store) as store:
        done = store.jobs("done")
        print(render_status(store, done_records=done))
        if arguments.render:
            print()
            print(render_results(store))
        counts = store.counts()
        ok = (
            store_all_ok(store, done_records=done)
            and counts["pending"] == counts["claimed"] == 0
        )
    return 0 if ok else 1


def cmd_campaign_reset(arguments) -> int:
    statuses: List[str] = []
    if arguments.failed or not (arguments.claimed or arguments.all):
        statuses.append("failed")
    if arguments.claimed:
        statuses.append("claimed")
    if arguments.all:
        statuses = ["claimed", "done", "failed"]
    with CampaignStore.open(arguments.store) as store:
        count = store.reset(statuses, experiment=arguments.experiment)
    print(f"reset {count} job(s) ({', '.join(statuses)} -> pending)")
    return 0


def cmd_campaign_export(arguments) -> int:
    with CampaignStore.open(arguments.store) as store:
        document = export_campaign(store)
        if arguments.metrics_out is not None:
            from repro.campaign import merged_metrics
            from repro.obs import write_metrics

            write_metrics(arguments.metrics_out, merged_metrics(store))
            print(f"wrote {arguments.metrics_out}", file=sys.stderr)
        if arguments.render:
            # keep stdout a pure JSON stream when no --out is given
            print(render_results(store), file=sys.stdout if arguments.out else sys.stderr)
    if arguments.out:
        with open(arguments.out, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"wrote {arguments.out}")
    else:
        sys.stdout.write(document)
    return 0


# ---------------------------------------------------------------------------
# fuzz subcommand
# ---------------------------------------------------------------------------


def _fuzz_targets(names: List[str]) -> List[str]:
    from repro.scenarios import iter_scenarios, scenario_ids

    if not names:
        return ["agp-opacity"]
    if names == ["all"]:
        return scenario_ids()
    if names == ["small"]:
        return [scenario.scenario_id for scenario in iter_scenarios(tags="small")]
    return names


def cmd_fuzz(arguments) -> int:
    from repro.fuzz import (
        ReplayTrace,
        differential_check,
        fuzz_workload,
        load_trace,
        replay_schedule,
        save_trace,
        shrink_schedule,
    )
    from repro.scenarios import get_scenario, iter_scenarios

    if arguments.list_workloads:
        scenarios = iter_scenarios()
        width = max(len(scenario.scenario_id) for scenario in scenarios)
        for spec in scenarios:
            tags = ("violating" if spec.expect_violation else "satisfying") + (
                ", oracle-eligible" if spec.small else ""
            )
            print(f"{spec.scenario_id:<{width}}  [{tags}]  {spec.notes}")
        return 0

    if arguments.replay is not None:
        trace = load_trace(arguments.replay)
        if not trace.workload:
            raise UsageError(
                f"trace {arguments.replay!r} names no workload; cannot "
                "reconstruct the implementation to replay against"
            )
        spec = get_scenario(trace.workload)
        replay = replay_schedule(
            spec.factory, trace.plan, trace.schedule, spec.safety_factory()
        )
        if not replay.valid:
            print(f"replay invalid: {replay.error}")
            return 1
        holds = replay.verdict.holds
        print(
            f"{trace.workload}: replayed {len(trace.schedule)} steps, "
            f"safety {'holds' if holds else 'violated'}"
            + (f" ({replay.verdict.reason})" if not holds else "")
        )
        if trace.holds is not None and holds != trace.holds:
            print(
                f"MISMATCH: trace records holds={trace.holds}", file=sys.stderr
            )
            return 1
        return 0

    if arguments.oracle and arguments.crash:
        raise UsageError(
            "--crash only applies to plain fuzzing; the oracle compares "
            "verdicts over the crash-free schedule space"
        )
    surprises = 0
    for name in _fuzz_targets(arguments.workloads):
        spec = get_scenario(name)
        if arguments.oracle:
            oracle = differential_check(
                spec,
                seed=arguments.seed,
                iterations=arguments.iterations,
                max_depth=arguments.max_depth,
            )
            report = oracle.fuzz
            ok = oracle.agree
            print(
                f"[{name}] oracle: exhaustive="
                f"{'holds' if oracle.exhaustive_holds else 'violated'} "
                f"({oracle.exhaustive_runs} runs), fuzz="
                f"{'holds' if oracle.fuzz_holds else 'violated'} "
                f"({report.interleavings} interleavings) -> "
                f"{'AGREE' if ok else 'DISAGREE'}"
            )
        else:
            report = fuzz_workload(
                spec,
                seed=arguments.seed,
                iterations=arguments.iterations,
                max_depth=arguments.max_depth,
                crash=arguments.crash,
            )
            ok = (report.violation is not None) == spec.expect_violation
            verdict = (
                f"violation at iteration {report.violation.iteration}"
                if report.violation
                else "no violation"
            )
            print(
                f"[{name}] {verdict} "
                f"({report.interleavings} interleavings, "
                f"{report.coverage} states covered, "
                f"{report.interleavings_per_second:,.0f}/s) -> "
                f"{'expected' if ok else 'SURPRISE'}"
            )
        if not ok:
            surprises += 1
        if report.violation is not None and not arguments.no_shrink:
            shrunk = shrink_schedule(
                spec.factory,
                spec.plan,
                report.violation.schedule,
                spec.safety_factory(),
            )
            rendered = " ".join(f"{k}(p{p})" for k, p in shrunk.schedule)
            print(
                f"  shrunk {shrunk.original_length} -> "
                f"{len(shrunk.schedule)} steps: {rendered}"
            )
            if arguments.artifact_dir is not None:
                os.makedirs(arguments.artifact_dir, exist_ok=True)
                path = os.path.join(
                    arguments.artifact_dir,
                    f"fuzz-{name}-seed{arguments.seed}.json",
                )
                save_trace(
                    path,
                    ReplayTrace(
                        plan=spec.plan,
                        schedule=shrunk.schedule,
                        workload=spec.name,
                        implementation=spec.factory().name,
                        safety=spec.safety_factory().name,
                        holds=False,
                        reason=report.violation.reason,
                        seed=report.seed,
                    ),
                )
                print(f"  wrote {path}")
    return 1 if surprises else 0


# ---------------------------------------------------------------------------
# scenarios / verify subcommands
# ---------------------------------------------------------------------------


def _scenario_rows(
    tags: List[str], family: str = None, no_families: bool = False
) -> List[Dict[str, str]]:
    from repro.scenarios import TAG_FAMILY, get_family, iter_scenarios

    wanted = list(tags or [])
    if family is not None:
        get_family(family)  # unknown family ids fail with a suggestion
        wanted.append(f"family:{family}")
    scenarios = iter_scenarios(tags=wanted or None)
    if no_families:
        scenarios = [
            scenario
            for scenario in scenarios
            if not scenario.has_tags(TAG_FAMILY)
        ]
    if not scenarios:
        raise UsageError(
            f"no registered scenario carries all of the tags {wanted!r}"
        )
    return [scenario.describe() for scenario in scenarios]


def cmd_scenarios(arguments) -> int:
    if arguments.scenarios_command != "list":  # pragma: no cover - argparse
        raise UsageError(f"unknown scenarios command {arguments.scenarios_command!r}")
    if arguments.family is not None and arguments.no_families:
        raise UsageError(
            "--family selects generated instances and --no-families hides "
            "them; the combination can never match a scenario"
        )
    rows = _scenario_rows(
        arguments.tag, family=arguments.family, no_families=arguments.no_families
    )
    columns = ("id", "object", "property", "tags", "notes")
    if arguments.format == "md":
        print("| " + " | ".join(columns) + " |")
        print("|" + "|".join("---" for _ in columns) + "|")
        for row in rows:
            cells = [f"`{row['id']}`", f"`{row['object']}`",
                     f"`{row['property']}`", row["tags"], row["notes"]]
            print("| " + " | ".join(cells) + " |")
        return 0
    widths = {
        column: max([len(column)] + [len(row[column]) for row in rows])
        for column in columns[:-1]
    }
    header = "  ".join(f"{column:<{widths[column]}}" for column in columns[:-1])
    print(header + "  notes")
    print("=" * len(header) + "=======")
    for row in rows:
        line = "  ".join(f"{row[column]:<{widths[column]}}" for column in columns[:-1])
        print(line + "  " + row["notes"])
    return 0


def cmd_verify(arguments) -> int:
    from repro.scenarios import get_scenario, verify

    overrides = _parse_params(arguments.set, option="--set")
    if arguments.cache is not None:
        from repro.service import check_cache_mode

        check_cache_mode(arguments.cache)  # fail fast -> exit 2
    # Fail fast on unknown ids, before any scenario runs.
    scenarios = [get_scenario(s) for s in arguments.scenarios]
    observe = arguments.metrics_out is not None or arguments.trace_out is not None
    with contextlib.ExitStack() as stack:
        recorder = None
        if observe:
            # One session recorder: verify() nests a per-scenario
            # recorder inside it, so each verdict gets its own metrics
            # document while this one accumulates the totals and every
            # trace event.
            from repro.obs import recording

            recorder = stack.enter_context(
                recording(
                    label="verify-cli", trace=arguments.trace_out is not None
                )
            )
        surprises = _verify_scenarios(arguments, scenarios, overrides, recorder)
    return 1 if surprises else 0


def _verify_scenarios(arguments, scenarios, overrides, recorder) -> int:
    from repro.scenarios import verify

    documents = []
    metric_documents = []
    surprises = 0
    for scenario in scenarios:
        # Auto mode may mix backends across the listed scenarios; the
        # library-level facade drops the knobs the resolved backend
        # does not own (an explicit --backend stays strict).
        verdict = verify(
            scenario,
            backend=arguments.backend,
            cache=arguments.cache,
            cache_path=arguments.cache_db,
            **overrides,
        )
        documents.append(verdict.to_document())
        if verdict.metrics is not None:
            metric_documents.append(verdict.metrics)
        stats = verdict.stats
        if verdict.cached:
            evidence = f"cache hit {verdict.cache_key[:12]}"
        elif verdict.budget_exhausted:
            evidence = "search budget exceeded"
        elif "runs_checked" in stats:
            evidence = f"{stats['runs_checked']} runs enumerated"
        elif "runs" in stats:
            evidence = (
                f"{stats['runs']} maximal runs classified, "
                f"certainty {stats.get('certainty')}"
            )
        else:
            evidence = f"{stats.get('interleavings', 0)} interleavings sampled"
        print(
            f"[{scenario.scenario_id}] {verdict.backend}: {verdict.outcome} "
            f"({evidence}) -> "
            f"{'expected' if verdict.expected else 'SURPRISE'}"
        )
        if verdict.lasso is not None:
            replays = stats.get("lasso_replays")
            print(
                f"  lasso certificate ({verdict.lasso.fingerprint_kind}: "
                f"stem {stats.get('lasso_stem')} + cycle "
                f"{stats.get('lasso_cycle')} steps, starving "
                f"{list(verdict.lasso.starving)}, replay "
                f"{'re-certifies' if replays else 'FAILS (!)'})"
            )
        if verdict.counterexample is not None:
            rendered = " ".join(
                f"{kind}(p{pid})" for kind, pid in verdict.counterexample.schedule
            )
            replays = stats.get("counterexample_replays")
            if replays is None:
                # Replay never ran (the checker budget blew during
                # minimization); "passes (!)" would discredit a
                # genuine violation.
                replay_note = "replay skipped: " + stats.get(
                    "witness_check_error", "not run"
                )
            else:
                replay_note = f"replay {'violates' if replays else 'passes (!)'}"
            print(
                f"  counterexample ({len(verdict.counterexample.schedule)} "
                f"steps, {replay_note}): {rendered}"
            )
        if not verdict.expected:
            surprises += 1
    if arguments.out is not None:
        document = documents[0] if len(documents) == 1 else documents
        with open(arguments.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {arguments.out}")
    if arguments.metrics_out is not None:
        from repro.obs import merge_metrics, write_metrics

        merged = (
            metric_documents[0]
            if len(metric_documents) == 1
            else merge_metrics(metric_documents, label="verify-cli")
        )
        write_metrics(arguments.metrics_out, merged)
        print(f"wrote {arguments.metrics_out}")
    if arguments.trace_out is not None:
        from repro.obs import write_trace

        write_trace(arguments.trace_out, recorder.trace_events)
        print(f"wrote {arguments.trace_out}")
    return surprises


def cmd_profile(arguments) -> int:
    from repro.obs import render_metrics_summary
    from repro.obs.profile import profile_verify, render_hotspots

    overrides = _parse_params(arguments.set, option="--set")
    report = profile_verify(
        arguments.scenario,
        backend=arguments.backend,
        overrides=overrides,
        top=arguments.top,
    )
    verdict = report.verdict
    print(
        f"[{verdict.scenario_id}] {verdict.backend}: {verdict.outcome} -> "
        f"{'expected' if verdict.expected else 'SURPRISE'}"
    )
    print()
    print(render_hotspots(report.hotspots))
    print()
    print(render_metrics_summary(report.metrics))
    if arguments.metrics_out is not None:
        from repro.obs import write_metrics

        write_metrics(arguments.metrics_out, report.metrics)
        print(f"wrote {arguments.metrics_out}")
    return 0 if verdict.expected else 1


def cmd_mutate(arguments) -> int:
    from repro.mutate import get_mutant, iter_mutants, kill_matrix

    if arguments.list_mutants:
        mutants = iter_mutants()
        width = max(len(mutant.mutant_id) for mutant in mutants)
        for mutant in mutants:
            print(
                f"{mutant.mutant_id:<{width}}  [{mutant.kind} on "
                f"{mutant.target}; expected killers: "
                f"{', '.join(mutant.expected_killers)}]  {mutant.description}"
            )
        return 0

    # Fail fast on unknown mutant ids, before any cell runs.
    chosen = (
        [get_mutant(mutant_id) for mutant_id in arguments.mutant]
        if arguments.mutant
        else None
    )
    matrix = kill_matrix(
        mutants=chosen,
        seed=arguments.seed,
        iterations=arguments.iterations,
        backends=arguments.backend or None,
    )
    for mutant in matrix.mutants:
        killed_by = matrix.killed_by(mutant.mutant_id)
        cells = matrix.cells_for(mutant.mutant_id)
        missed = [
            cell.backend
            for cell in cells
            if cell.expected_kill and not cell.killed
        ]
        false = [cell.backend for cell in cells if cell.false_kill]
        status = "killed by " + ", ".join(killed_by) if killed_by else "SURVIVED"
        if missed:
            status += f"; MISSED by expected {', '.join(missed)}"
        if false:
            status += f"; FALSE KILL on baseline ({', '.join(false)})"
        print(f"[{mutant.mutant_id}] {status}")
    expected = matrix.expected_cells
    achieved = sum(1 for cell in expected if cell.killed)
    ok = (
        matrix.sensitivity >= arguments.min_sensitivity
        and not matrix.false_kills
    )
    print(
        f"sensitivity {matrix.sensitivity:.2f} "
        f"({achieved}/{len(expected)} expected kills), "
        f"{len(matrix.false_kills)} false kill(s) -> "
        f"{'OK' if ok else 'FAIL'} "
        f"(gate: >= {arguments.min_sensitivity:.2f}, 0 false kills)"
    )
    if arguments.md:
        print()
        print(matrix.render_markdown())
    if arguments.out is not None:
        with open(arguments.out, "w", encoding="utf-8") as handle:
            json.dump(matrix.to_document(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {arguments.out}")
    return 0 if ok else 1


def cmd_campaign(arguments) -> int:
    handlers = {
        "init": cmd_campaign_init,
        "run": cmd_campaign_run,
        "status": cmd_campaign_status,
        "reset": cmd_campaign_reset,
        "export": cmd_campaign_export,
    }
    return handlers[arguments.campaign_command](arguments)


def _add_campaign_parser(subparsers) -> None:
    campaign = subparsers.add_parser(
        "campaign",
        help="persistent, resumable experiment sweeps (grid -> store -> workers)",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def store_arg(parser) -> None:
        parser.add_argument(
            "--store", default=DEFAULT_STORE,
            help=f"campaign store path (default: {DEFAULT_STORE})",
        )

    init = campaign_sub.add_parser(
        "init", help="expand a parameter grid into the store (idempotent)"
    )
    store_arg(init)
    init.add_argument(
        "--grid", action="append", default=[], metavar="EXPERIMENT",
        help="experiment id to sweep (repeatable; default: all experiments)",
    )
    init.add_argument("--name", default="campaign", help="campaign name")
    init.add_argument(
        "axes", nargs="*", metavar="axis=values",
        help="grid axes, e.g. n=2..4 seed=0..4 crash=none,p0@40 "
        "registry=commit-adopt lk=2x3; axes an experiment does not "
        "support are dropped for it",
    )

    run = campaign_sub.add_parser("run", help="execute open jobs from the store")
    store_arg(run)
    run.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: REPRO_ENGINE_PARALLEL; 0/1 = serial)",
    )
    run.add_argument(
        "--max-jobs", type=int, default=None,
        help="execute at most this many jobs (serial only)",
    )
    run.add_argument(
        "--no-reclaim", action="store_true",
        help="do not recover claims of dead local workers first",
    )
    run.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="store per-job metrics and write the merged repro-metrics "
        "document here after the run",
    )
    run.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a Chrome/Perfetto trace of the run (one lane per "
        "worker process; implies per-job metrics)",
    )
    run.add_argument(
        "--cache", default=None, choices=("off", "read", "readwrite"),
        help="verdict cache mode for every verify the campaign issues "
        "(threaded to fork workers via REPRO_VERIFY_CACHE)",
    )
    run.add_argument(
        "--cache-db", default=None, metavar="FILE",
        help="verdict cache path shared by the workers "
        "(default: REPRO_CACHE_DB or verdicts.db)",
    )

    status = campaign_sub.add_parser("status", help="job counts and failures")
    store_arg(status)
    status.add_argument(
        "--render", action="store_true",
        help="also re-render claim tables and grids from stored results",
    )
    status.add_argument(
        "--watch", action="store_true",
        help="poll the store and print live progress (done/claimed/failed, "
        "jobs/s, ETA) until no open jobs remain",
    )
    status.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="--watch poll interval (default: 2.0)",
    )

    reset = campaign_sub.add_parser(
        "reset", help="send failed (default), claimed, or all jobs back to pending"
    )
    store_arg(reset)
    reset.add_argument("--failed", action="store_true", help="reset failed jobs")
    reset.add_argument("--claimed", action="store_true", help="reset claimed jobs")
    reset.add_argument("--all", action="store_true", help="reset every job")
    reset.add_argument(
        "--experiment", default=None, help="restrict to one experiment id"
    )

    export = campaign_sub.add_parser(
        "export", help="deterministic JSON export of the store"
    )
    store_arg(export)
    export.add_argument("--out", default=None, help="write to file instead of stdout")
    export.add_argument(
        "--render", action="store_true",
        help="also re-render claim tables and grids from stored results",
    )
    export.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the merged repro-metrics document of the campaign "
        "(requires a run with --metrics-out/--trace-out)",
    )


def _add_fuzz_parser(subparsers) -> None:
    fuzz = subparsers.add_parser(
        "fuzz",
        help="randomized schedule/crash fuzzing (+ differential oracle)",
    )
    fuzz.add_argument(
        "workloads", nargs="*", metavar="scenario",
        help="scenario ids (default: agp-opacity); 'all' = every "
        "registered scenario, 'small' = the oracle-eligible ones",
    )
    fuzz.add_argument(
        "--list", action="store_true", dest="list_workloads",
        help="list the registered scenarios (all are fuzzable)",
    )
    fuzz.add_argument("--seed", type=int, default=0, help="master fuzz seed")
    fuzz.add_argument(
        "--iterations", type=int, default=2_000,
        help="interleavings to sample per workload (default: 2000)",
    )
    fuzz.add_argument(
        "--max-depth", type=int, default=64, help="schedule depth bound"
    )
    fuzz.add_argument(
        "--crash", default=None,
        help="crash pattern injected into every exploration walk "
        "(p0@40+p1@60 syntax; default: randomized crash points)",
    )
    fuzz.add_argument(
        "--oracle", action="store_true",
        help="cross-check fuzz verdicts against the exhaustive engine "
        "(small workloads only)",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="do not minimize found violations",
    )
    fuzz.add_argument(
        "--artifact-dir", default=None,
        help="write shrunk counterexample traces (replayable JSON) here",
    )
    fuzz.add_argument(
        "--replay", default=None, metavar="TRACE",
        help="replay a trace file and re-judge it instead of fuzzing",
    )


def _add_scenarios_parser(subparsers) -> None:
    scenarios = subparsers.add_parser(
        "scenarios",
        help="the declarative scenario registry (one catalog, every backend)",
    )
    scenarios_sub = scenarios.add_subparsers(
        dest="scenarios_command", required=True
    )
    lister = scenarios_sub.add_parser("list", help="list registered scenarios")
    lister.add_argument(
        "--tag", action="append", default=[], metavar="TAG",
        help="only scenarios carrying this tag (repeatable; AND semantics)",
    )
    lister.add_argument(
        "--format", choices=("text", "md"), default="text",
        help="output format: aligned text (default) or a Markdown table "
        "(the README scenario catalog is generated with --format=md)",
    )
    lister.add_argument(
        "--family", default=None, metavar="FAMILY",
        help="only instances generated by this scenario family "
        "(shorthand for --tag family:FAMILY, with id validation)",
    )
    lister.add_argument(
        "--no-families", action="store_true",
        help="hide generated family instances (the curated catalog only; "
        "the README table is generated with this flag)",
    )


def _add_mutate_parser(subparsers) -> None:
    mutate = subparsers.add_parser(
        "mutate",
        help="mutation-test the oracles: seeded bugs vs the verify backends",
    )
    mutate.add_argument(
        "--list", action="store_true", dest="list_mutants",
        help="list the seeded mutants and their expected killers",
    )
    mutate.add_argument(
        "--mutant", action="append", default=[], metavar="ID",
        help="restrict the matrix to this mutant (repeatable; "
        "default: all mutants)",
    )
    mutate.add_argument(
        "--backend", action="append", default=[],
        choices=("exhaustive", "fuzz", "liveness"), metavar="BACKEND",
        help="restrict the evaluated backends (repeatable; the CI "
        "mutation-smoke job runs the fast fuzz+liveness slice)",
    )
    mutate.add_argument("--seed", type=int, default=0, help="fuzz seed")
    mutate.add_argument(
        "--iterations", type=int, default=None,
        help="fuzz sampling budget per cell (default: scenario bounds)",
    )
    mutate.add_argument(
        "--min-sensitivity", type=float, default=1.0, metavar="SCORE",
        help="fail (exit 1) when the achieved/expected kill ratio drops "
        "below this (default: 1.0, the seed score)",
    )
    mutate.add_argument(
        "--md", action="store_true",
        help="also print the kill matrix as a Markdown table",
    )
    mutate.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the kill-matrix JSON artifact (repro-kill-matrix v1)",
    )


def _add_verify_parser(subparsers) -> None:
    verify = subparsers.add_parser(
        "verify",
        help="verify registered scenarios through the uniform facade",
    )
    verify.add_argument(
        "scenarios", nargs="+", metavar="scenario",
        help="scenario ids (see 'scenarios list')",
    )
    verify.add_argument(
        "--backend", choices=("auto", "exhaustive", "fuzz", "liveness"),
        default="auto",
        help="verification backend; 'auto' (default) picks 'exhaustive' "
        "for scenarios tagged small and 'fuzz' otherwise; 'liveness' "
        "judges the scenario's liveness property over every maximal "
        "run (scenarios tagged 'liveness' only)",
    )
    verify.add_argument(
        "--set", action="append", default=[], metavar="key=value",
        help="verify override as key=value (repeatable): seed, iterations, "
        "max_depth, max_configurations, crash, shrink, lasso_stride, "
        "reduction (none|dpor|dpor-parity: partial-order reduction for "
        "exhaustive/liveness search), ...",
    )
    verify.add_argument(
        "--cache", default=None, choices=("off", "read", "readwrite"),
        help="content-addressed verdict cache mode (default: the "
        "REPRO_VERIFY_CACHE environment variable, else off); hits are "
        "byte-identical to the cold verdict document",
    )
    verify.add_argument(
        "--cache-db", default=None, metavar="FILE",
        help="verdict cache path (default: REPRO_CACHE_DB or verdicts.db)",
    )
    verify.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the verdict document(s) as JSON here",
    )
    verify.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="run with instrumentation on and write the repro-metrics "
        "document (merged across scenarios) here; the verdict and "
        "--out artifact stay byte-identical either way",
    )
    verify.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="also write a Chrome/Perfetto trace of the span timeline",
    )


def _add_profile_parser(subparsers) -> None:
    profile = subparsers.add_parser(
        "profile",
        help="profile one scenario verification: cProfile hotspot table "
        "+ span/counter summary",
    )
    profile.add_argument(
        "scenario", metavar="scenario",
        help="scenario id (see 'scenarios list')",
    )
    profile.add_argument(
        "--backend", choices=("auto", "exhaustive", "fuzz", "liveness"),
        default="auto", help="verification backend (as in 'verify')",
    )
    profile.add_argument(
        "--set", action="append", default=[], metavar="key=value",
        help="verify override as key=value (repeatable)",
    )
    profile.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="hotspot rows to print (default: 20)",
    )
    profile.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="also write the run's repro-metrics document here",
    )


def cmd_serve(arguments) -> int:
    from repro.service.server import serve

    return serve(
        host=arguments.host,
        port=arguments.port,
        cache_path=arguments.cache_db,
        workers=arguments.workers,
    )


def _add_serve_parser(subparsers) -> None:
    serve = subparsers.add_parser(
        "serve",
        help="run the verification HTTP service (submit/poll verify "
        "requests; cache hits answer inline)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8765, help="TCP port (default: 8765)"
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="process-pool workers for cold verdicts (default: 2)",
    )
    serve.add_argument(
        "--cache-db", default=None, metavar="FILE",
        help="verdict cache path (default: REPRO_CACHE_DB or verdicts.db)",
    )


def cmd_cache(arguments) -> int:
    from repro.service import VerdictCache, default_cache_path

    path = default_cache_path(arguments.cache_db)
    if arguments.cache_command == "gc":
        if not os.path.exists(path):
            print(f"{path}: no cache, nothing to evict")
            return 0
        with VerdictCache.open(path) as cache:
            evicted = cache.gc()
            remaining = cache.stats()["verdicts"]
        print(
            f"{path}: evicted {evicted} stale verdict(s), "
            f"{remaining} remaining"
        )
        return 0
    # stats
    if not os.path.exists(path):
        print(f"{path}: no cache")
        return 1
    with VerdictCache.open(path) as cache:
        print(json.dumps(cache.stats(), indent=2, sort_keys=True))
    return 0


def _add_cache_parser(subparsers) -> None:
    cache = subparsers.add_parser(
        "cache", help="inspect and maintain the content-addressed verdict cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    def db_arg(parser) -> None:
        parser.add_argument(
            "--cache-db", default=None, metavar="FILE",
            help="verdict cache path (default: REPRO_CACHE_DB or verdicts.db)",
        )

    gc = cache_sub.add_parser(
        "gc", help="evict verdicts recorded under a different code version"
    )
    db_arg(gc)
    stats = cache_sub.add_parser(
        "stats", help="print cache statistics as JSON"
    )
    db_arg(stats)


def cmd_lint(arguments) -> int:
    from repro.lint import (
        crosscheck_catalog,
        footprint_parity,
        lint_paths,
        rules_table_markdown,
    )
    from repro.util.hashing import canonical_json

    if arguments.list_rules:
        print(rules_table_markdown())
        return 0
    select = (
        [part for part in arguments.select.split(",")]
        if arguments.select
        else None
    )
    report = lint_paths(arguments.paths or None, select=select)
    if arguments.format == "json":
        document = report.to_document()
    elif arguments.format == "md":
        print(report.render_markdown())
        document = None
    else:
        print(report.render_text())
        document = None
    exit_code = 0 if report.clean else 1
    if arguments.footprints:
        parity = footprint_parity()
        catalog = crosscheck_catalog(parity.static_map)
        issues = parity.problems + parity.mismatches + catalog
        if document is not None:
            document["footprints"] = {
                "static": parity.static_map,
                "dynamic": parity.dynamic_map,
                "issues": issues,
            }
        else:
            state = "byte-match" if not issues else "MISMATCH"
            print(
                f"footprints: static vs dynamic {state} for "
                f"{len(parity.static_map)} base object classes, "
                f"catalog walk {'clean' if not catalog else 'diverged'}"
            )
            for issue in issues:
                print(f"footprint issue: {issue}")
        if issues:
            exit_code = max(exit_code, 1)
    if document is not None:
        print(canonical_json(document))
    return exit_code


def _add_lint_parser(subparsers) -> None:
    lint = subparsers.add_parser(
        "lint",
        help="project-specific static analysis (footprint soundness, "
        "determinism, obs discipline, error conventions)",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--format", choices=("text", "md", "json"), default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    lint.add_argument(
        "--footprints", action="store_true",
        help="also cross-check the static FP001 footprint map against "
        "footprints recorded by a live runtime (and a seeded walk over "
        "the exhaustible scenario slice)",
    )


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce Bushkov & Guerraoui, PODC 2015.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments", nargs="+", help="experiment ids, or 'all'"
    )
    run_parser.add_argument(
        "--param",
        action="append",
        default=[],
        help="runner parameter as key=value (repeatable); applied to every "
        "listed experiment",
    )
    _add_scenarios_parser(subparsers)
    _add_verify_parser(subparsers)
    _add_profile_parser(subparsers)
    _add_campaign_parser(subparsers)
    _add_fuzz_parser(subparsers)
    _add_mutate_parser(subparsers)
    _add_serve_parser(subparsers)
    _add_cache_parser(subparsers)
    _add_lint_parser(subparsers)
    arguments = parser.parse_args(argv)
    try:
        if arguments.command == "list":
            return cmd_list()
        if arguments.command == "scenarios":
            return cmd_scenarios(arguments)
        if arguments.command == "verify":
            return cmd_verify(arguments)
        if arguments.command == "profile":
            return cmd_profile(arguments)
        if arguments.command == "campaign":
            return cmd_campaign(arguments)
        if arguments.command == "fuzz":
            return cmd_fuzz(arguments)
        if arguments.command == "mutate":
            return cmd_mutate(arguments)
        if arguments.command == "serve":
            return cmd_serve(arguments)
        if arguments.command == "cache":
            return cmd_cache(arguments)
        if arguments.command == "lint":
            return cmd_lint(arguments)
        return cmd_run(arguments.experiments, _parse_params(arguments.param))
    except UsageError as error:
        print(f"usage error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
