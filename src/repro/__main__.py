"""Command-line entry point: run the paper's experiments.

Usage::

    python -m repro list                 # available experiments
    python -m repro run fig1a            # one experiment
    python -m repro run all              # everything (exit 1 on mismatch)
    python -m repro run fig1b --param n=4 --param max_steps=300
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List

from repro.analysis import EXPERIMENTS, run_experiment


def _parse_params(pairs: List[str]) -> Dict[str, Any]:
    """Parse ``key=value`` pairs; values are ints where possible."""
    params: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        try:
            params[key] = int(raw)
        except ValueError:
            params[key] = raw
    return params


def cmd_list() -> int:
    width = max(len(spec.experiment_id) for spec in EXPERIMENTS.values())
    for experiment_id in sorted(EXPERIMENTS):
        spec = EXPERIMENTS[experiment_id]
        print(f"{experiment_id:<{width}}  {spec.title}")
    return 0


def cmd_run(targets: List[str], params: Dict[str, Any]) -> int:
    if targets == ["all"]:
        targets = sorted(EXPERIMENTS)
    failures = 0
    for experiment_id in targets:
        if experiment_id not in EXPERIMENTS:
            print(f"unknown experiment {experiment_id!r}; try 'list'", file=sys.stderr)
            return 2
        started = time.time()
        result = run_experiment(experiment_id, **params) if params else run_experiment(
            experiment_id
        )
        elapsed = time.time() - started
        print(result.render())
        print(f"[{experiment_id}] {'ALL OK' if result.all_ok else 'MISMATCH'} "
              f"({elapsed:.2f}s)")
        print()
        if not result.all_ok:
            failures += 1
    return 1 if failures else 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce Bushkov & Guerraoui, PODC 2015.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments", nargs="+", help="experiment ids, or 'all'"
    )
    run_parser.add_argument(
        "--param",
        action="append",
        default=[],
        help="runner parameter as key=value (repeatable); applied to every "
        "listed experiment",
    )
    arguments = parser.parse_args(argv)
    if arguments.command == "list":
        return cmd_list()
    return cmd_run(arguments.experiments, _parse_params(arguments.param))


if __name__ == "__main__":
    sys.exit(main())
