"""Events of shared-memory histories.

Section 2 of the paper models an implementation as an I/O automaton whose
external actions are *invocations* ``inv_i`` and *responses* ``res_i``
(subscripted by process), plus a special ``crash_i`` input action per
process.  A history is the subsequence of an execution consisting only of
these external actions.

This module defines the three event kinds as small frozen dataclasses.  They
are hashable and totally ordered (by a stable sort key) so they can be used
as alphabet symbols in the finite set-theoretic model (``repro.setmodel``)
as well as as trace entries in the simulator (``repro.sim``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple, Union

# ---------------------------------------------------------------------------
# Event kinds
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Invocation:
    """An invocation action ``inv_i`` of the shared object.

    Attributes
    ----------
    process:
        Identifier of the invoking process ``p_i`` (0-based integer).
    operation:
        Operation name drawn from the object type's invocation alphabet,
        e.g. ``"propose"`` for consensus or ``"tryC"`` for TM.
    args:
        Operation arguments; must be hashable.
    """

    process: int
    operation: str
    args: Tuple[Any, ...] = ()

    def sort_key(self) -> Tuple[Any, ...]:
        """A stable total-order key used by the finite model."""
        return (0, self.process, self.operation, repr(self.args))

    def __str__(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.operation}({rendered})_{self.process}"


@dataclass(frozen=True)
class Response:
    """A response action ``res_i`` of the shared object.

    Attributes
    ----------
    process:
        Identifier of the responding process ``p_i``.
    operation:
        The operation name of the invocation this response completes.  The
        paper's histories carry only the response value; we additionally
        record the operation for readability and checking, since in a
        well-formed history the operation is uniquely determined anyway.
    value:
        The response value (must be hashable).  Object types interpret the
        value: for consensus it is the decided value, for TM it is one of
        the sentinels in :mod:`repro.objects.tm` (``OK``, ``COMMITTED``,
        ``ABORTED``) or a read value.
    """

    process: int
    operation: str
    value: Any = None

    def sort_key(self) -> Tuple[Any, ...]:
        return (1, self.process, self.operation, repr(self.value))

    def __str__(self) -> str:
        return f"{self.operation}->{self.value!r}_{self.process}"


@dataclass(frozen=True)
class Crash:
    """The special input action ``crash_i`` (Section 2).

    After ``crash_i`` occurs, process ``p_i`` takes no further steps; a
    history containing an event of ``p_i`` after ``crash_i`` is ill-formed.
    """

    process: int

    def sort_key(self) -> Tuple[Any, ...]:
        return (2, self.process, "", "")

    def __str__(self) -> str:
        return f"crash_{self.process}"


Event = Union[Invocation, Response, Crash]

# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def is_invocation(event: Event) -> bool:
    """Return True if ``event`` is an :class:`Invocation`."""
    return isinstance(event, Invocation)


def is_response(event: Event) -> bool:
    """Return True if ``event`` is a :class:`Response`."""
    return isinstance(event, Response)


def is_crash(event: Event) -> bool:
    """Return True if ``event`` is a :class:`Crash`."""
    return isinstance(event, Crash)


def matches(invocation: Invocation, response: Response) -> bool:
    """Return True if ``response`` may complete ``invocation``.

    In a well-formed history per-process events alternate, so a response
    matches the immediately preceding invocation of the same process; this
    predicate additionally checks process and operation agreement, which is
    useful as a defensive assertion in the simulator.
    """
    return (
        invocation.process == response.process
        and invocation.operation == response.operation
    )


@dataclass(frozen=True)
class Operation:
    """A (possibly pending) operation instance reconstructed from a history.

    ``response`` is ``None`` while the operation is pending.  ``index`` is
    the position of the invocation event within the source history, which
    gives operations a stable identity and a real-time order:  operation A
    precedes operation B iff A's response index is smaller than B's
    invocation index.
    """

    invocation: Invocation
    response: Union[Response, None]
    index: int
    response_index: Union[int, None] = field(default=None)

    @property
    def process(self) -> int:
        """The invoking process."""
        return self.invocation.process

    @property
    def is_pending(self) -> bool:
        """True while the operation has no response."""
        return self.response is None

    def precedes(self, other: "Operation") -> bool:
        """Real-time precedence: this operation completed before ``other``
        was invoked."""
        if self.response_index is None:
            return False
        return self.response_index < other.index

    def __str__(self) -> str:
        left = str(self.invocation)
        right = "pending" if self.response is None else str(self.response)
        return f"[{left} .. {right}]"
