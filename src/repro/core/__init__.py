"""Core formal machinery: events, histories, object types, properties.

This subpackage is dependency-free within the library (everything else
imports it, it imports nothing but :mod:`repro.util`).
"""

from repro.core.events import (
    Crash,
    Event,
    Invocation,
    Operation,
    Response,
    is_crash,
    is_invocation,
    is_response,
)
from repro.core.history import EMPTY_HISTORY, History, history_of
from repro.core.object_type import (
    ObjectType,
    OperationSignature,
    ProgressMode,
    SequentialSpec,
)
from repro.core.properties import (
    Certainty,
    ConjunctionSafety,
    ExecutionSummary,
    LivenessProperty,
    Property,
    SafetyProperty,
    TrivialSafety,
    Verdict,
)
from repro.core.liveness import (
    Lmax,
    LocalProgress,
    LockFreedom,
    SoloTermination,
    TrivialLiveness,
    WaitFreedom,
    compare,
    enumerate_summaries,
)
from repro.core.freedom import (
    KObstructionFreedom,
    LKFreedom,
    LLockFreedom,
    obstruction_freedom,
    weakest_biprogressing,
)
from repro.core.lattice import LivenessOrder, Relation
from repro.core.progress import NXLiveness, ProgressClass, SFreedom, TAXONOMY
from repro.core.adversary import (
    AdversarySetSpec,
    DisjointnessCertificate,
    FiniteAdversarySet,
    PredicateAdversarySet,
    certify_disjoint_by_first_event,
    intersect_all,
)
from repro.core.exclusion import (
    ExclusionReport,
    GameOutcome,
    NonExclusionReport,
    build_exclusion_report,
    build_non_exclusion_report,
)

__all__ = [
    "Crash",
    "Event",
    "Invocation",
    "Operation",
    "Response",
    "is_crash",
    "is_invocation",
    "is_response",
    "EMPTY_HISTORY",
    "History",
    "history_of",
    "ObjectType",
    "OperationSignature",
    "ProgressMode",
    "SequentialSpec",
    "Certainty",
    "ConjunctionSafety",
    "ExecutionSummary",
    "LivenessProperty",
    "Property",
    "SafetyProperty",
    "TrivialSafety",
    "Verdict",
    "Lmax",
    "LocalProgress",
    "LockFreedom",
    "SoloTermination",
    "TrivialLiveness",
    "WaitFreedom",
    "compare",
    "enumerate_summaries",
    "KObstructionFreedom",
    "LKFreedom",
    "LLockFreedom",
    "obstruction_freedom",
    "weakest_biprogressing",
    "LivenessOrder",
    "Relation",
    "NXLiveness",
    "ProgressClass",
    "SFreedom",
    "TAXONOMY",
    "AdversarySetSpec",
    "DisjointnessCertificate",
    "FiniteAdversarySet",
    "PredicateAdversarySet",
    "certify_disjoint_by_first_event",
    "intersect_all",
    "ExclusionReport",
    "GameOutcome",
    "NonExclusionReport",
    "build_exclusion_report",
    "build_non_exclusion_report",
]
