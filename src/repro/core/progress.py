"""Progress taxonomy and the alternative liveness families of Section 6.

Section 5.1 classifies progress guarantees along two axes from Herlihy &
Shavit's "On the nature of progress" [23]:

* **maximal** vs **minimal** — progress for every process vs for some;
* **dependent** vs **independent** — conditioned on the scheduler or not.

The classification is recorded as metadata on the shipped properties and
drives the ``sec6`` experiment, which reproduces the paper's concluding
comparison of three restricted liveness families:

* ``(l,k)``-freedom — partially ordered (Section 5);
* singleton ``S``-freedom [36] — an antichain, so no strongest
  implementable member exists;
* ``(n,x)``-liveness [25] — totally ordered, so the safety-liveness
  exclusion question has a trivial answer within the family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.core.properties import ExecutionSummary, LivenessProperty, Verdict


@dataclass(frozen=True)
class ProgressClass:
    """Position of a guarantee in the Herlihy–Shavit taxonomy."""

    maximal: bool
    dependent: bool

    def describe(self) -> str:
        """Human-readable taxonomy cell, e.g. ``"minimal independent"``."""
        kind = "maximal" if self.maximal else "minimal"
        mode = "dependent" if self.dependent else "independent"
        return f"{kind} {mode}"


#: Taxonomy of the named guarantees discussed in Section 5.1.
TAXONOMY = {
    "wait-freedom": ProgressClass(maximal=True, dependent=False),
    "local-progress": ProgressClass(maximal=True, dependent=False),
    "lock-freedom": ProgressClass(maximal=False, dependent=False),
    "obstruction-freedom": ProgressClass(maximal=True, dependent=True),
    "l-lock-freedom": ProgressClass(maximal=False, dependent=False),
    "k-obstruction-freedom": ProgressClass(maximal=True, dependent=True),
}


class SFreedom(LivenessProperty):
    """``S``-freedom [36] on execution summaries.

    For every set ``P`` of correct processes with ``|P| ∈ S``, every
    process in ``P`` makes progress provided it encounters no step
    contention from outside ``P``.  On the eventual-behaviour abstraction
    the group that runs without outside contention is exactly the set
    ``T`` of eventual steppers, so the property reads: if ``|T| ∈ S``
    then every member of ``T`` makes progress.

    The paper (Section 6, citing [36]) uses the facts that ``S``-freedom
    is implementable from registers iff ``|S| = 1`` and that singleton
    ``S``-freedoms are pairwise incomparable; both are reproduced by the
    ``sec6`` experiment.
    """

    def __init__(self, sizes: Iterable[int]):
        self.sizes: FrozenSet[int] = frozenset(sizes)
        if not self.sizes:
            raise ValueError("S must be a non-empty set of group sizes")
        if any(size < 1 for size in self.sizes):
            raise ValueError("group sizes must be positive")
        self.name = f"S-freedom{{{','.join(map(str, sorted(self.sizes)))}}}"

    def evaluate(self, summary: ExecutionSummary) -> Verdict:
        if len(summary.steppers) not in self.sizes:
            return Verdict.passed(
                f"group of {len(summary.steppers)} eventual steppers is not "
                f"in S={sorted(self.sizes)}: nothing is required",
                certainty=summary.certainty,
            )
        lagging = summary.steppers - summary.progressors
        if lagging:
            return Verdict.failed(
                f"contention-free group {sorted(summary.steppers)} has "
                f"non-progressing members {sorted(lagging)}",
                witness=summary,
                certainty=summary.certainty,
            )
        return Verdict.passed(
            "contention-free group fully progresses", certainty=summary.certainty
        )


class NXLiveness(LivenessProperty):
    """``(n,x)``-liveness [25] on execution summaries.

    Processes ``0 .. x-1`` must be wait-free (progress whenever correct);
    processes ``x .. n-1`` must be obstruction-free (progress whenever
    they are the unique eventual stepper).  For fixed ``n`` the family is
    totally ordered in ``x``: raising ``x`` strengthens the demand on one
    more process.  The paper (Section 6, citing [25]) notes that with
    registers, consensus is implementable iff ``x = 0`` — so within this
    family the strongest implementable property is ``(n,0)``-liveness and
    the weakest non-implementable one is ``(n,1)``-liveness.
    """

    def __init__(self, n: int, x: int):
        if n < 1:
            raise ValueError("n must be at least 1")
        if not 0 <= x <= n:
            raise ValueError("x must lie in [0, n]")
        self.n = n
        self.x = x
        self.name = f"({n},{x})-liveness"

    def evaluate(self, summary: ExecutionSummary) -> Verdict:
        if summary.n_processes != self.n:
            raise ValueError(
                f"{self.name} is defined for systems of {self.n} processes, "
                f"got {summary.n_processes}"
            )
        for pid in range(self.x):
            if pid in summary.correct and pid not in summary.progressors:
                return Verdict.failed(
                    f"wait-free process p{pid} is correct but makes no progress",
                    witness=summary,
                    certainty=summary.certainty,
                )
        for pid in range(self.x, self.n):
            if summary.steppers == frozenset({pid}) and pid not in summary.progressors:
                return Verdict.failed(
                    f"obstruction-free process p{pid} runs alone eventually "
                    "but makes no progress",
                    witness=summary,
                    certainty=summary.certainty,
                )
        return Verdict.passed(
            "wait-free and obstruction-free obligations satisfied",
            certainty=summary.certainty,
        )
