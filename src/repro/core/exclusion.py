"""Exclusion of safety by liveness (Definition 4.1) — verdicts & reports.

``L`` excludes ``S`` iff no implementation ensures both.  A finite
artifact can certify the two directions differently:

* **Non-exclusion** is certified by a *witness implementation*: one
  implementation whose (exhaustively explored or sampled) runs all lie in
  ``S`` and all satisfy ``L``.
* **Exclusion** is certified *relative to a registry*: an adversary
  strategy defeats every registered implementation that ensures ``S`` —
  each play yields a fair run whose history is in ``S`` and whose
  execution violates ``L``.  (Exactly universal exclusion is available in
  :mod:`repro.setmodel` for finite micro types.)

The report dataclasses here are the common currency between the
adversaries, the analysis layer, the benchmarks and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.history import History
from repro.core.properties import (
    Certainty,
    ExecutionSummary,
    LivenessProperty,
    SafetyProperty,
    Verdict,
)


@dataclass(frozen=True)
class GameOutcome:
    """One adversary-vs-implementation play (a fair run of ``A_I``).

    ``history`` and ``summary`` describe the run; the two verdicts record
    whether the history stayed in ``S`` (it must, if the implementation
    ensures ``S``) and whether the execution violated ``L`` (the
    adversary's goal).
    """

    implementation: str
    history: History
    summary: ExecutionSummary
    safety_verdict: Verdict
    liveness_verdict: Verdict

    @property
    def defeated(self) -> bool:
        """True when the play is a valid defeat: in ``S`` but not in
        ``L``."""
        return self.safety_verdict.holds and not self.liveness_verdict.holds

    @property
    def certainty(self) -> Certainty:
        """Horizon unless both verdicts are proved."""
        if (
            self.safety_verdict.certainty is Certainty.PROVED
            and self.liveness_verdict.certainty is Certainty.PROVED
        ):
            return Certainty.PROVED
        return Certainty.HORIZON


@dataclass
class ExclusionReport:
    """Outcome of checking ``L excludes S`` against a registry.

    ``holds`` is True when every registered implementation was defeated.
    """

    liveness: str
    safety: str
    outcomes: List[GameOutcome] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return bool(self.outcomes) and all(o.defeated for o in self.outcomes)

    @property
    def certainty(self) -> Certainty:
        if any(o.certainty is Certainty.HORIZON for o in self.outcomes):
            return Certainty.HORIZON
        return Certainty.PROVED

    def undefeated(self) -> List[str]:
        """Names of implementations the adversary failed to defeat."""
        return [o.implementation for o in self.outcomes if not o.defeated]

    def describe(self) -> str:
        """One-line summary for reports."""
        status = "EXCLUDES" if self.holds else "does NOT exclude (on this registry)"
        tag = "" if self.certainty is Certainty.PROVED else " [horizon]"
        return f"{self.liveness} {status} {self.safety}{tag}"


@dataclass
class NonExclusionReport:
    """Outcome of checking that some implementation ensures both ``S``
    and ``L``.

    ``runs`` holds every explored run of the witness implementation; the
    witness certifies non-exclusion only if *all* runs satisfy both
    properties.
    """

    liveness: str
    safety: str
    implementation: str
    runs: List[GameOutcome] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return bool(self.runs) and all(
            r.safety_verdict.holds and r.liveness_verdict.holds for r in self.runs
        )

    @property
    def certainty(self) -> Certainty:
        if any(r.certainty is Certainty.HORIZON for r in self.runs):
            return Certainty.HORIZON
        return Certainty.PROVED

    def violations(self) -> List[GameOutcome]:
        """Runs in which a property failed (empty when the witness
        stands)."""
        return [
            r
            for r in self.runs
            if not (r.safety_verdict.holds and r.liveness_verdict.holds)
        ]

    def describe(self) -> str:
        status = (
            f"{self.implementation} ensures both"
            if self.holds
            else f"{self.implementation} fails to ensure both"
        )
        tag = "" if self.certainty is Certainty.PROVED else " [horizon]"
        return f"{status} {self.safety} and {self.liveness}{tag}"


def build_exclusion_report(
    safety: SafetyProperty,
    liveness: LivenessProperty,
    plays: Iterable[Tuple[str, History, ExecutionSummary]],
) -> ExclusionReport:
    """Assemble an :class:`ExclusionReport` from adversary plays.

    Each play is ``(implementation_name, history, summary)``; the report
    evaluates safety on the history and liveness on the summary.
    """
    report = ExclusionReport(liveness=liveness.name, safety=safety.name)
    for name, history, summary in plays:
        report.outcomes.append(
            GameOutcome(
                implementation=name,
                history=history,
                summary=summary,
                safety_verdict=safety.check_history(history),
                liveness_verdict=liveness.evaluate(summary),
            )
        )
    return report


def build_non_exclusion_report(
    safety: SafetyProperty,
    liveness: LivenessProperty,
    implementation: str,
    runs: Iterable[Tuple[History, ExecutionSummary]],
) -> NonExclusionReport:
    """Assemble a :class:`NonExclusionReport` from witness runs."""
    report = NonExclusionReport(
        liveness=liveness.name, safety=safety.name, implementation=implementation
    )
    for history, summary in runs:
        report.runs.append(
            GameOutcome(
                implementation=implementation,
                history=history,
                summary=summary,
                safety_verdict=safety.check_history(history),
                liveness_verdict=liveness.evaluate(summary),
            )
        )
    return report
