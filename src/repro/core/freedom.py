"""The ``(l,k)``-freedom family (Section 5.1).

The paper combines two parameterised progress requirements:

* ``l``-lock-freedom (independent, minimal): at least ``l`` processes make
  progress when at least ``l`` processes are correct; otherwise all
  correct processes make progress.
* ``k``-obstruction-freedom (dependent, maximal): progress is required
  whenever at most ``k`` processes take infinitely many steps.

``(l,k)``-freedom (Definition 5.1, with ``l ≤ k``) is stated in
conditional form, and the paper also asserts that its execution set equals
``LF_l ∪ OF_k``.  The two statements coincide exactly when
``k``-obstruction-freedom's consequent is read as *all correct processes
make progress* (rather than Taubenfeld's literal *all of the ≤ k stepping
processes make progress*).  This module implements both consequents:

* ``consequent="correct"`` (default) — the reading under which
  ``(l,k) = LF_l ∪ OF_k`` is a theorem (verified by the test suite over
  the full abstract-execution space);
* ``consequent="steppers"`` — the literal reading, under which the union
  and the conditional forms differ on executions where a correct process
  is prevented from taking steps (the tests exhibit such an execution).

All Figure 1 classifications agree under both readings.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Tuple

from repro.core.properties import ExecutionSummary, LivenessProperty, Verdict


def _lock_freedom_holds(summary: ExecutionSummary, l: int) -> Tuple[bool, str]:
    """The ``l``-lock-freedom consequent on a summary."""
    if len(summary.correct) >= l:
        if len(summary.progressors) >= l:
            return True, f"{len(summary.progressors)} >= {l} processes progress"
        return (
            False,
            f"only {len(summary.progressors)} of the required {l} processes progress",
        )
    starving = summary.correct - summary.progressors
    if starving:
        return (
            False,
            f"fewer than {l} correct processes, yet {sorted(starving)} starve",
        )
    return True, "fewer correct processes than l and all of them progress"


class LLockFreedom(LivenessProperty):
    """``l``-lock-freedom: an independent, minimal progress guarantee.

    ``l = 1`` is lock-freedom; ``l = n`` is wait-freedom (every correct
    process progresses, regardless of how many are correct).
    """

    def __init__(self, l: int):
        if l < 1:
            raise ValueError("l must be at least 1")
        self.l = l
        self.name = f"{l}-lock-freedom"

    def evaluate(self, summary: ExecutionSummary) -> Verdict:
        holds, reason = _lock_freedom_holds(summary, self.l)
        if holds:
            return Verdict.passed(reason, certainty=summary.certainty)
        return Verdict.failed(reason, witness=summary, certainty=summary.certainty)


class KObstructionFreedom(LivenessProperty):
    """``k``-obstruction-freedom: a dependent, maximal progress guarantee.

    Vacuously satisfied by executions in which more than ``k`` processes
    take infinitely many steps.  See the module docstring for the two
    consequent readings.
    """

    def __init__(self, k: int, consequent: str = "correct"):
        if k < 1:
            raise ValueError("k must be at least 1")
        if consequent not in ("correct", "steppers"):
            raise ValueError("consequent must be 'correct' or 'steppers'")
        self.k = k
        self.consequent = consequent
        self.name = f"{k}-obstruction-freedom[{consequent}]"

    def evaluate(self, summary: ExecutionSummary) -> Verdict:
        if len(summary.steppers) > self.k:
            return Verdict.passed(
                f"more than {self.k} eventual steppers: nothing is required",
                certainty=summary.certainty,
            )
        demanded: FrozenSet[int]
        if self.consequent == "correct":
            demanded = summary.correct
        else:
            demanded = summary.steppers
        starving = demanded - summary.progressors
        if starving:
            return Verdict.failed(
                f"at most {self.k} steppers but {sorted(starving)} make no progress",
                witness=summary,
                certainty=summary.certainty,
            )
        return Verdict.passed(
            "obstruction condition satisfied", certainty=summary.certainty
        )


class LKFreedom(LivenessProperty):
    """``(l,k)``-freedom (Definition 5.1), requiring ``l ≤ k``.

    ``semantics="conditional"`` implements Definition 5.1 verbatim:
    executions with more than ``k`` eventual steppers satisfy the property
    vacuously; otherwise the ``l``-lock-freedom consequent applies.

    ``semantics="union"`` implements the execution set ``LF_l ∪ OF_k``,
    with the obstruction consequent chosen by ``of_consequent``.  With the
    default ``of_consequent="correct"`` the two semantics provably
    coincide (see the property tests); the option exists to make the
    difference under the literal Taubenfeld consequent observable.
    """

    def __init__(
        self,
        l: int,
        k: int,
        semantics: str = "conditional",
        of_consequent: str = "correct",
    ):
        if l < 1 or k < 1:
            raise ValueError("l and k must be at least 1")
        if l > k:
            raise ValueError(f"(l,k)-freedom requires l <= k, got ({l},{k})")
        if semantics not in ("conditional", "union"):
            raise ValueError("semantics must be 'conditional' or 'union'")
        self.l = l
        self.k = k
        self.semantics = semantics
        self._lock = LLockFreedom(l)
        self._obstruction = KObstructionFreedom(k, consequent=of_consequent)
        self.name = f"({l},{k})-freedom"
        if semantics != "conditional" or of_consequent != "correct":
            self.name += f"[{semantics};{of_consequent}]"

    def evaluate(self, summary: ExecutionSummary) -> Verdict:
        if self.semantics == "union":
            lock = self._lock.evaluate(summary)
            if lock.holds:
                return lock
            obstruction = self._obstruction.evaluate(summary)
            if obstruction.holds:
                return obstruction
            return Verdict.failed(
                f"neither {self._lock.name} nor {self._obstruction.name} holds: "
                f"{lock.reason}; {obstruction.reason}",
                witness=summary,
                certainty=summary.certainty,
            )
        # Conditional form of Definition 5.1.
        if len(summary.steppers) > self.k:
            return Verdict.passed(
                f"more than {self.k} eventual steppers: nothing is required",
                certainty=summary.certainty,
            )
        holds, reason = _lock_freedom_holds(summary, self.l)
        if holds:
            return Verdict.passed(reason, certainty=summary.certainty)
        return Verdict.failed(reason, witness=summary, certainty=summary.certainty)

    # -- structural (parameter-level) ordering ------------------------------

    def dominates(self, other: "LKFreedom") -> bool:
        """Sufficient structural condition for being stronger.

        ``(l,k)`` with ``l >= l'`` and ``k >= k'`` is stronger than
        ``(l',k')`` (both guards are harder to escape and the consequent
        demands more).  The converse fails: the semantic comparison over
        the abstract-execution space is the ground truth and is what the
        tests cross-check this predicate against.
        """
        return self.l >= other.l and self.k >= other.k

    @staticmethod
    def grid(n: int, **kwargs) -> List["LKFreedom"]:
        """All ``(l,k)``-freedom properties with ``1 <= l <= k <= n``.

        The domain of Figure 1's two panels.
        """
        return [
            LKFreedom(l, k, **kwargs)
            for k in range(1, n + 1)
            for l in range(1, k + 1)
        ]


def obstruction_freedom(**kwargs) -> LKFreedom:
    """``(1,1)``-freedom, which the paper identifies with
    obstruction-freedom."""
    return LKFreedom(1, 1, **kwargs)


def weakest_biprogressing() -> LKFreedom:
    """``(2,2)``-freedom — the weakest biprogressing ``(l,k)``-freedom
    (Section 5.2), i.e. the weakest member of the family requiring
    progress for at least two correct processes."""
    return LKFreedom(2, 2)
