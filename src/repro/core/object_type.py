"""Shared object types ``Tp = (St, Inv, Res, Seq)`` (Section 2).

An object type bundles the invocation and response alphabets of a shared
object with its sequential specification and with the *progress semantics*
used by liveness properties (Section 5.1): the set ``G_Tp`` of "good"
responses that constitute progress, and whether progress means receiving a
good response *eventually* (one-shot objects such as consensus) or
*repeatedly* (long-lived objects such as transactional memory).
"""

from __future__ import annotations

import enum
import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.events import Crash, Event, Invocation, Response
from repro.util.errors import SpecificationError, unknown_choice


class ProgressMode(enum.Enum):
    """How 'process p makes progress' is interpreted for an object type.

    Section 5.1 defines progress as receiving infinitely many good
    responses.  That reading only makes sense for long-lived objects; for
    one-shot objects such as consensus the literature (and the paper's own
    consensus corollaries) read progress as *eventually deciding*.  The
    object type records which reading applies.
    """

    EVENTUAL = "eventual"
    REPEATED = "repeated"


class SequentialSpec(ABC):
    """A sequential specification ``Seq ⊆ Inv × St × St × Res``.

    Modeled as a (possibly nondeterministic) labelled transition system
    over specification states.  Deterministic specs implement
    :meth:`apply`; nondeterministic specs may instead override
    :meth:`successors`.
    """

    @abstractmethod
    def initial_state(self) -> Any:
        """The initial specification state (must be hashable)."""

    def apply(self, state: Any, operation: str, args: Tuple[Any, ...]) -> Tuple[Any, Any]:
        """Deterministically apply an operation.

        Returns ``(new_state, response_value)``.  Raises
        :class:`SpecificationError` if the operation is not applicable.
        The default implementation picks the unique successor.
        """
        options = list(self.successors(state, operation, args))
        if not options:
            raise SpecificationError(
                f"no transition for {operation}{args!r} from state {state!r}"
            )
        if len(options) > 1:
            raise SpecificationError(
                f"spec is nondeterministic for {operation}{args!r}; "
                "use successors() instead of apply()"
            )
        return options[0]

    def successors(
        self, state: Any, operation: str, args: Tuple[Any, ...]
    ) -> Iterable[Tuple[Any, Any]]:
        """All ``(new_state, response_value)`` pairs for an operation.

        The default implementation delegates to :meth:`apply`, so
        deterministic specs only implement that method.
        """
        yield self.apply(state, operation, args)

    def accepts(self, operations: Sequence[Tuple[str, Tuple[Any, ...], Any]]) -> bool:
        """Check a sequential run ``[(op, args, response_value), ...]``.

        Returns True iff there is a path through the specification whose
        response values match.  Handles nondeterminism by breadth-first
        search over reachable states.
        """
        states = {self._freeze(self.initial_state())}
        frontier: List[Any] = [self.initial_state()]
        for operation, args, expected in operations:
            next_frontier: List[Any] = []
            seen = set()
            for state in frontier:
                try:
                    options = self.successors(state, operation, args)
                except SpecificationError:
                    continue
                for new_state, value in options:
                    if value != expected:
                        continue
                    key = self._freeze(new_state)
                    if key not in seen:
                        seen.add(key)
                        next_frontier.append(new_state)
            if not next_frontier:
                return False
            frontier = next_frontier
            states = seen
        return True

    @staticmethod
    def _freeze(state: Any) -> Any:
        """Best-effort hashable form of a state for visited-set tracking."""
        if isinstance(state, dict):
            return tuple(sorted((k, SequentialSpec._freeze(v)) for k, v in state.items()))
        if isinstance(state, (list, tuple)):
            return tuple(SequentialSpec._freeze(v) for v in state)
        if isinstance(state, set):
            return frozenset(SequentialSpec._freeze(v) for v in state)
        return state


@dataclass
class OperationSignature:
    """Finite description of one operation of an object type.

    ``argument_domains`` gives, per positional argument, the finite set of
    values that may be passed; ``response_domain`` is the finite set of
    response values the object may return.  Both are only needed by the
    finite set-theoretic model and the exhaustive explorers; the simulator
    does not restrict arguments.
    """

    name: str
    argument_domains: Tuple[Tuple[Any, ...], ...] = ()
    response_domain: Tuple[Any, ...] = ()

    def invocations_for(self, process: int) -> Iterator[Invocation]:
        """Enumerate every invocation of this operation by ``process``."""
        for args in itertools.product(*self.argument_domains):
            yield Invocation(process=process, operation=self.name, args=args)

    def responses_for(self, process: int) -> Iterator[Response]:
        """Enumerate every response to this operation for ``process``."""
        for value in self.response_domain:
            yield Response(process=process, operation=self.name, value=value)


@dataclass
class ObjectType:
    """A shared object type ``Tp = (St, Inv, Res, Seq)`` plus progress data.

    Attributes
    ----------
    name:
        Human-readable type name (``"consensus"``, ``"tm"``, ...).
    operations:
        Signatures of the operations in ``Inv``.
    sequential_spec:
        The sequential specification ``Seq`` (may be ``None`` for types
        whose safety is checked by a bespoke checker, e.g. TM opacity,
        which consults a spec of its own).
    good_response:
        Predicate selecting ``G_Tp ⊆ Res`` — the responses that constitute
        progress (Section 5.1).  Defaults to "every response is good".
    progress_mode:
        See :class:`ProgressMode`.
    """

    name: str
    operations: Tuple[OperationSignature, ...]
    sequential_spec: Optional[SequentialSpec] = None
    good_response: Callable[[Response], bool] = field(default=lambda response: True)
    progress_mode: ProgressMode = ProgressMode.REPEATED

    def operation_names(self) -> Tuple[str, ...]:
        """The names of all operations."""
        return tuple(sig.name for sig in self.operations)

    def signature(self, operation: str) -> OperationSignature:
        """Look up the signature of ``operation``."""
        for sig in self.operations:
            if sig.name == operation:
                return sig
        raise unknown_choice(
            f"operation on type {self.name!r}", operation,
            self.operation_names(),
        )

    # -- finite alphabets (used by repro.setmodel and the explorers) --------

    def ext_alphabet(self, processes: Sequence[int]) -> List[Event]:
        """The external alphabet ``ext(Tp)`` for the given processes.

        Contains every invocation (over declared argument domains), every
        response (over declared response domains) and the crash action of
        each process, exactly as in Section 2.
        """
        events: List[Event] = []
        for pid in processes:
            for sig in self.operations:
                events.extend(sig.invocations_for(pid))
                events.extend(sig.responses_for(pid))
            events.append(Crash(process=pid))
        return events

    def invocation_alphabet(self, processes: Sequence[int]) -> List[Invocation]:
        """All invocations over declared argument domains."""
        out: List[Invocation] = []
        for pid in processes:
            for sig in self.operations:
                out.extend(sig.invocations_for(pid))
        return out

    def response_alphabet(self, processes: Sequence[int]) -> List[Response]:
        """All responses over declared response domains."""
        out: List[Response] = []
        for pid in processes:
            for sig in self.operations:
                out.extend(sig.responses_for(pid))
        return out

    def responses_to(self, invocation: Invocation) -> List[Response]:
        """All declared responses that may answer ``invocation``."""
        sig = self.signature(invocation.operation)
        return list(sig.responses_for(invocation.process))

    def is_good(self, response: Response) -> bool:
        """True if the response belongs to ``G_Tp``."""
        return bool(self.good_response(response))
