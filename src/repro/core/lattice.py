"""Order-theoretic structure of liveness families (Sections 5.1–5.2, 6).

The stronger/weaker relation on liveness properties is set containment of
their execution sets (Section 3.2).  Over the finite abstract-execution
space of :func:`repro.core.liveness.enumerate_summaries` the relation is
decidable exactly, so this module computes, for any finite family of
liveness properties:

* the full relation matrix (equal / stronger / weaker / incomparable),
* the Hasse diagram of the induced partial order,
* maximal and minimal elements and explicit incomparability witnesses —
  the paper's own example being ``(1,3)``-freedom vs ``(2,2)``-freedom.

Figure 1 plots the ``(l,k)`` grid; the classification of grid points
against a safety property lives in :mod:`repro.analysis.classification`,
which consumes the orders computed here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.liveness import enumerate_summaries
from repro.core.properties import ExecutionSummary, LivenessProperty


@dataclass(frozen=True)
class Relation:
    """The comparison of two liveness properties over a summary space."""

    left: str
    right: str
    kind: str  # "equal" | "stronger" | "weaker" | "incomparable"
    left_only: Tuple[int, ...] = ()
    right_only: Tuple[int, ...] = ()


class LivenessOrder:
    """The stronger/weaker partial order of a family of liveness
    properties, decided over a finite abstract-execution space.

    Parameters
    ----------
    properties:
        The liveness properties to order.  Names must be unique.
    n_processes:
        System size used to build the abstraction space.
    progress_requires_steps:
        Forwarded to :func:`enumerate_summaries`; use ``True`` for
        long-lived object types.
    """

    def __init__(
        self,
        properties: Sequence[LivenessProperty],
        n_processes: int,
        progress_requires_steps: bool = False,
        summaries: Optional[Sequence[ExecutionSummary]] = None,
    ):
        names = [p.name for p in properties]
        if len(set(names)) != len(names):
            raise ValueError("liveness properties must have unique names")
        self.properties = list(properties)
        self.n_processes = n_processes
        self.summaries: List[ExecutionSummary] = list(
            summaries
            if summaries is not None
            else enumerate_summaries(
                n_processes, progress_requires_steps=progress_requires_steps
            )
        )
        self._admitted: Dict[str, FrozenSet[int]] = {
            prop.name: prop.admits(self.summaries) for prop in self.properties
        }

    # -- pairwise relations -------------------------------------------------

    def admitted(self, prop: LivenessProperty) -> FrozenSet[int]:
        """Indices of the summary space admitted by ``prop``."""
        if prop.name not in self._admitted:
            self._admitted[prop.name] = prop.admits(self.summaries)
        return self._admitted[prop.name]

    def relate(self, left: LivenessProperty, right: LivenessProperty) -> Relation:
        """Compare two properties, with witnesses for strict differences."""
        left_set = self.admitted(left)
        right_set = self.admitted(right)
        left_only = tuple(sorted(left_set - right_set))
        right_only = tuple(sorted(right_set - left_set))
        if not left_only and not right_only:
            kind = "equal"
        elif not left_only:
            kind = "stronger"  # left admits a subset: left is stronger
        elif not right_only:
            kind = "weaker"
        else:
            kind = "incomparable"
        return Relation(
            left=left.name,
            right=right.name,
            kind=kind,
            left_only=left_only,
            right_only=right_only,
        )

    def is_stronger(self, left: LivenessProperty, right: LivenessProperty) -> bool:
        """True iff ``left`` is (non-strictly) stronger than ``right``."""
        return self.admitted(left) <= self.admitted(right)

    def incomparability_witnesses(
        self, left: LivenessProperty, right: LivenessProperty
    ) -> Optional[Tuple[ExecutionSummary, ExecutionSummary]]:
        """For incomparable properties, a pair of abstract executions
        ``(only_left_admits, only_right_admits)``; ``None`` otherwise."""
        relation = self.relate(left, right)
        if relation.kind != "incomparable":
            return None
        return (
            self.summaries[relation.left_only[0]],
            self.summaries[relation.right_only[0]],
        )

    # -- global structure -----------------------------------------------------

    def relation_matrix(self) -> Dict[Tuple[str, str], str]:
        """The full pairwise relation table, keyed by property names."""
        matrix: Dict[Tuple[str, str], str] = {}
        for left in self.properties:
            for right in self.properties:
                matrix[(left.name, right.name)] = self.relate(left, right).kind
        return matrix

    def strictly_stronger_pairs(self) -> List[Tuple[str, str]]:
        """All pairs ``(a, b)`` with ``a`` strictly stronger than ``b``."""
        pairs: List[Tuple[str, str]] = []
        for left in self.properties:
            for right in self.properties:
                if left is right:
                    continue
                relation = self.relate(left, right)
                if relation.kind == "stronger":
                    pairs.append((left.name, right.name))
        return pairs

    def hasse_edges(self) -> List[Tuple[str, str]]:
        """Covering pairs of the strictly-stronger order.

        ``(a, b)`` is an edge iff ``a`` is strictly stronger than ``b``
        with no property strictly between them.  Properties with equal
        execution sets are collapsed onto the first representative.
        """
        representative: Dict[str, str] = {}
        for prop in self.properties:
            key = self.admitted(prop)
            found = None
            for other in self.properties:
                if other.name in representative.values() and self.admitted(other) == key:
                    found = other.name
                    break
            representative[prop.name] = found or prop.name
        stronger = {
            (a, b)
            for a, b in self.strictly_stronger_pairs()
            if representative[a] == a and representative[b] == b
        }
        edges: List[Tuple[str, str]] = []
        for a, b in sorted(stronger):
            if any((a, c) in stronger and (c, b) in stronger for c in representative.values()):
                continue
            edges.append((a, b))
        return edges

    def maximal_elements(self) -> List[str]:
        """Properties with no strictly stronger property in the family."""
        stronger = self.strictly_stronger_pairs()
        dominated = {b for _, b in stronger}
        return [p.name for p in self.properties if p.name not in dominated]

    def minimal_elements(self) -> List[str]:
        """Properties with no strictly weaker property in the family."""
        stronger = self.strictly_stronger_pairs()
        dominating = {a for a, _ in stronger}
        return [p.name for p in self.properties if p.name not in dominating]

    def is_totally_ordered(self) -> bool:
        """True iff no pair in the family is incomparable.

        Section 6 contrasts families that are totally ordered
        (``(n,x)``-liveness) with antichains (singleton ``S``-freedom) and
        the partially ordered ``(l,k)`` grid.
        """
        for left in self.properties:
            for right in self.properties:
                if self.relate(left, right).kind == "incomparable":
                    return False
        return True

    def strongest_below(self, candidates: Sequence[LivenessProperty]) -> List[str]:
        """Maximal elements among ``candidates`` w.r.t. this order."""
        names = {c.name for c in candidates}
        stronger = [
            (a, b)
            for a, b in self.strictly_stronger_pairs()
            if a in names and b in names
        ]
        dominated = {b for _, b in stronger}
        return [c.name for c in candidates if c.name not in dominated]
