"""Correctness properties: verdicts and the safety/liveness base classes.

Section 3 of the paper defines a safety property as a prefix-closed and
limit-closed set of well-formed histories, and a liveness property as any
superset of ``Lmax`` (the strongest liveness requirement of the object
type).  This module provides the operational counterparts used by the
simulator and the checkers:

* :class:`SafetyProperty` — decides membership of *finite* histories.
  Prefix closure is an obligation on implementations of this interface
  (and is validated by the test suite for every shipped property);
  limit closure is automatic for properties decided by finite-history
  membership, since the limit of a chain of members has all its prefixes
  members.
* :class:`LivenessProperty` — evaluates an :class:`ExecutionSummary`, the
  abstraction of a (possibly infinite) fair execution that liveness
  properties in the paper actually depend on: which processes crash,
  which take infinitely many steps, and which make progress.

Verdicts carry a :class:`Certainty` tag because the simulator can only
certify infinite behaviour when it detects a lasso (or when a finite
execution is fairness-complete); otherwise the verdict is evidence at a
finite horizon.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Any, FrozenSet, Iterable, Optional, Sequence

from repro.core.history import History


class Certainty(enum.Enum):
    """How strong the evidence behind a verdict is.

    ``PROVED``
        The verdict follows exactly from the semantics (finite history
        membership, a detected lasso, or a fairness-complete finite
        execution).
    ``HORIZON``
        The verdict is what a bounded run shows; the infinite extension is
        not certified.  Experiment reports always surface this tag.
    """

    PROVED = "proved"
    HORIZON = "horizon"


@dataclass(frozen=True)
class Verdict:
    """Outcome of checking a property.

    ``bool(verdict)`` is ``verdict.holds`` so verdicts compose naturally
    with assertions; the reason and witness make failures diagnosable.
    """

    holds: bool
    certainty: Certainty = Certainty.PROVED
    reason: str = ""
    witness: Any = None

    def __bool__(self) -> bool:
        return self.holds

    def __and__(self, other: "Verdict") -> "Verdict":
        """Conjunction: holds iff both hold; keeps the weaker certainty and
        the first failing reason."""
        holds = self.holds and other.holds
        certainty = (
            Certainty.HORIZON
            if Certainty.HORIZON in (self.certainty, other.certainty)
            else Certainty.PROVED
        )
        if not self.holds:
            reason, witness = self.reason, self.witness
        elif not other.holds:
            reason, witness = other.reason, other.witness
        else:
            reason = self.reason or other.reason
            witness = self.witness if self.witness is not None else other.witness
        return Verdict(holds=holds, certainty=certainty, reason=reason, witness=witness)

    @staticmethod
    def passed(reason: str = "", certainty: Certainty = Certainty.PROVED) -> "Verdict":
        """A passing verdict."""
        return Verdict(holds=True, certainty=certainty, reason=reason)

    @staticmethod
    def failed(
        reason: str,
        witness: Any = None,
        certainty: Certainty = Certainty.PROVED,
    ) -> "Verdict":
        """A failing verdict with a reason and optional witness."""
        return Verdict(holds=False, certainty=certainty, reason=reason, witness=witness)


@dataclass(frozen=True)
class ExecutionSummary:
    """The liveness-relevant abstraction of a fair execution.

    Liveness definitions in Section 5.1 quantify over three per-execution
    sets: the correct processes, the processes taking infinitely many
    steps, and the processes making progress.  The simulator computes the
    sets (exactly, when it can certify the infinite behaviour; at a
    horizon otherwise); the lattice module enumerates them symbolically.

    Attributes
    ----------
    n_processes:
        The total number of processes ``n`` in the system.
    correct:
        Processes that do not crash.
    steppers:
        Processes that take infinitely many steps.  For a finite
        fairness-complete execution this set is empty (everyone halts).
    progressors:
        Processes that make progress, under the object type's
        :class:`~repro.core.object_type.ProgressMode`.
    finite:
        True when the summary describes a finite, fairness-complete
        execution.
    certainty:
        Whether the sets are exact or horizon approximations.
    history:
        Optional underlying history (for diagnostics).
    """

    n_processes: int
    correct: FrozenSet[int]
    steppers: FrozenSet[int]
    progressors: FrozenSet[int]
    finite: bool = False
    certainty: Certainty = Certainty.PROVED
    history: Optional[History] = field(default=None, compare=False, hash=False)

    def __post_init__(self) -> None:
        everyone = frozenset(range(self.n_processes))
        if not self.correct <= everyone:
            raise ValueError("correct set mentions unknown processes")
        if not self.steppers <= self.correct:
            raise ValueError("a crashed process cannot take infinitely many steps")
        if not self.progressors <= self.correct:
            raise ValueError("a crashed process cannot make progress")
        if self.finite and self.steppers:
            raise ValueError("a finite execution has no infinite steppers")

    @staticmethod
    def of(
        n_processes: int,
        correct: Iterable[int] = (),
        steppers: Iterable[int] = (),
        progressors: Iterable[int] = (),
        finite: bool = False,
        certainty: Certainty = Certainty.PROVED,
        history: Optional[History] = None,
    ) -> "ExecutionSummary":
        """Convenience constructor accepting any iterables."""
        return ExecutionSummary(
            n_processes=n_processes,
            correct=frozenset(correct),
            steppers=frozenset(steppers),
            progressors=frozenset(progressors),
            finite=finite,
            certainty=certainty,
            history=history,
        )

    def with_certainty(self, certainty: Certainty) -> "ExecutionSummary":
        """A copy of this summary tagged with the given certainty."""
        return replace(self, certainty=certainty)


class Property(ABC):
    """Common base for safety and liveness properties."""

    name: str = "property"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class SafetyProperty(Property):
    """A safety property decided by finite-history membership.

    Implementations must be *prefix-closed*: if :meth:`check_history`
    passes on ``h`` it must pass on every prefix of ``h``.  The shipped
    checkers satisfy this by construction (each is tested for it), which
    by Definition 3.1 also yields limit closure for the induced set of
    infinite histories.
    """

    @abstractmethod
    def check_history(self, history: History) -> Verdict:
        """Decide whether the finite history belongs to the property."""

    def permits(self, history: History) -> bool:
        """Boolean convenience wrapper around :meth:`check_history`."""
        return bool(self.check_history(history))

    def check_prefix_closure(self, history: History) -> Verdict:
        """Audit prefix closure along one history.

        Checks that the verdict is monotone: once a prefix fails, every
        extension fails.  Used by the test suite on randomly generated
        histories.
        """
        failed_at: Optional[int] = None
        for length, prefix in enumerate(history.prefixes()):
            verdict = self.check_history(prefix)
            if failed_at is not None and verdict.holds:
                return Verdict.failed(
                    f"prefix of length {failed_at} fails but extension of "
                    f"length {length} passes: not prefix-closed",
                    witness=prefix,
                )
            if failed_at is None and not verdict.holds:
                failed_at = length
        return Verdict.passed("verdicts monotone along all prefixes")


class LivenessProperty(Property):
    """A liveness property evaluated on execution summaries.

    Per Definition 3.2 a liveness property is a superset of ``Lmax``; the
    shipped properties are all weakenings of
    :class:`~repro.core.liveness.Lmax` and the test suite verifies the
    containment on the enumerated abstract-execution space.
    """

    @abstractmethod
    def evaluate(self, summary: ExecutionSummary) -> Verdict:
        """Decide whether the summarised fair execution satisfies the
        property."""

    def satisfied_by(self, summary: ExecutionSummary) -> bool:
        """Boolean convenience wrapper around :meth:`evaluate`."""
        return bool(self.evaluate(summary))

    # -- semantic comparison over a finite abstraction space ---------------

    def admits(self, summaries: Sequence[ExecutionSummary]) -> FrozenSet[int]:
        """Indices of ``summaries`` this property admits."""
        return frozenset(
            i for i, summary in enumerate(summaries) if self.satisfied_by(summary)
        )

    def is_stronger_than(
        self, other: "LivenessProperty", summaries: Sequence[ExecutionSummary]
    ) -> bool:
        """Exact subset comparison over the given abstraction space.

        ``L2`` is stronger than ``L1`` iff ``L2 ⊆ L1`` (Section 3.2); over
        a finite space of abstract executions this is a subset test on the
        admitted sets.
        """
        return self.admits(summaries) <= other.admits(summaries)


class TrivialSafety(SafetyProperty):
    """The safety property containing every well-formed history.

    Used as the unit of conjunction and in tests.
    """

    name = "trivial-safety"

    def check_history(self, history: History) -> Verdict:
        return Verdict.passed("trivial safety admits every well-formed history")


class ConjunctionSafety(SafetyProperty):
    """Intersection of safety properties (itself a safety property).

    Definition 3.1's closure conditions are preserved by intersection;
    Section 5.3's counterexample property ``S`` is built this way from
    opacity and the timestamp abort rule.
    """

    def __init__(self, parts: Sequence[SafetyProperty], name: Optional[str] = None):
        if not parts:
            raise ValueError("conjunction needs at least one part")
        self.parts = tuple(parts)
        self.name = name or " ∧ ".join(part.name for part in self.parts)

    def check_history(self, history: History) -> Verdict:
        verdict = Verdict.passed()
        for part in self.parts:
            verdict = verdict & part.check_history(history)
            if not verdict.holds:
                return Verdict.failed(
                    f"{part.name}: {verdict.reason}", witness=verdict.witness
                )
        return verdict
