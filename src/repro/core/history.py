"""Histories: finite sequences of external actions (Section 2).

A history is the externally visible part of an execution.  Following the
paper we only ever manipulate *well-formed* histories: the projection
``h | p_i`` of a history onto each process is an alternating sequence of
invocations and responses beginning with an invocation, and no event of a
process follows that process's crash.

:class:`History` is an immutable value object.  All derived views
(projections, pending processes, operations) are computed lazily and
cached, so a history can be extended event-by-event by the simulator
without quadratic recomputation: :meth:`History.append` shares no mutable
state with its parent.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.events import (
    Crash,
    Event,
    Invocation,
    Operation,
    Response,
    is_crash,
    is_invocation,
    is_response,
)
from repro.util.errors import IllFormedHistoryError


class History:
    """An immutable finite history of invocation/response/crash events."""

    __slots__ = ("_events", "_cache")

    def __init__(self, events: Iterable[Event] = (), validate: bool = True):
        self._events: Tuple[Event, ...] = tuple(events)
        self._cache: Dict[str, Any] = {}
        if validate:
            self.check_well_formed()

    # -- basic sequence protocol -------------------------------------------

    @property
    def events(self) -> Tuple[Event, ...]:
        """The underlying event tuple."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index):
        picked = self._events[index]
        if isinstance(index, slice):
            return History(picked, validate=False)
        return picked

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, History):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:
        return f"History({list(map(str, self._events))})"

    def __str__(self) -> str:
        return " . ".join(str(e) for e in self._events) if self._events else "<empty>"

    # -- well-formedness ----------------------------------------------------

    def check_well_formed(self) -> None:
        """Raise :class:`IllFormedHistoryError` unless well-formed.

        Well-formedness (Section 2): for every process, events alternate
        invocation/response starting with an invocation, responses match
        the preceding invocation's operation, and nothing follows a crash.
        """
        pending: Dict[int, Invocation] = {}
        crashed: Set[int] = set()
        for position, event in enumerate(self._events):
            pid = event.process
            if pid in crashed:
                raise IllFormedHistoryError(
                    f"event {event} at index {position} follows crash of p{pid}"
                )
            if is_invocation(event):
                if pid in pending:
                    raise IllFormedHistoryError(
                        f"process p{pid} invokes {event} at index {position} "
                        f"while {pending[pid]} is pending"
                    )
                pending[pid] = event  # type: ignore[assignment]
            elif is_response(event):
                if pid not in pending:
                    raise IllFormedHistoryError(
                        f"response {event} at index {position} has no pending "
                        f"invocation for p{pid}"
                    )
                invocation = pending.pop(pid)
                if invocation.operation != event.operation:  # type: ignore[union-attr]
                    raise IllFormedHistoryError(
                        f"response {event} at index {position} does not match "
                        f"pending invocation {invocation}"
                    )
            elif is_crash(event):
                pending.pop(pid, None)
                crashed.add(pid)
            else:  # pragma: no cover - defensive
                raise IllFormedHistoryError(f"unknown event type: {event!r}")

    @staticmethod
    def is_well_formed(events: Sequence[Event]) -> bool:
        """Return True if ``events`` forms a well-formed history."""
        try:
            History(events)
        except IllFormedHistoryError:
            return False
        return True

    # -- derived views -------------------------------------------------------

    def _cached(self, key: str, compute):
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]

    @property
    def processes(self) -> Tuple[int, ...]:
        """Sorted identifiers of processes that appear in the history."""
        return self._cached(
            "processes",
            lambda: tuple(sorted({e.process for e in self._events})),
        )

    def project(self, pid: int) -> "History":
        """The projection ``h | p_i``: events of process ``pid`` only."""
        key = f"project:{pid}"
        return self._cached(
            key,
            lambda: History(
                (e for e in self._events if e.process == pid), validate=False
            ),
        )

    def crashed_processes(self) -> Set[int]:
        """Processes with a crash event in the history."""
        return self._cached(
            "crashed",
            lambda: {e.process for e in self._events if is_crash(e)},
        )

    def correct_processes(self) -> Set[int]:
        """Processes appearing in the history that never crash in it."""
        crashed = self.crashed_processes()
        return {p for p in self.processes if p not in crashed}

    def pending_invocations(self) -> Dict[int, Invocation]:
        """Mapping from pending process id to its pending invocation."""

        def compute() -> Dict[int, Invocation]:
            pending: Dict[int, Invocation] = {}
            for event in self._events:
                if is_invocation(event):
                    pending[event.process] = event  # type: ignore[assignment]
                elif is_response(event):
                    pending.pop(event.process, None)
                elif is_crash(event):
                    pending.pop(event.process, None)
            return pending

        return dict(self._cached("pending", compute))

    def is_pending(self, pid: int) -> bool:
        """True if process ``pid`` has an invocation without a response."""
        return pid in self.pending_invocations()

    def operations(self, pid: Optional[int] = None) -> List[Operation]:
        """Operation instances in invocation order.

        Each invocation is paired with its matching response (or ``None``
        if pending).  If ``pid`` is given, restrict to that process.
        """

        def compute() -> List[Operation]:
            open_ops: Dict[int, Tuple[Invocation, int]] = {}
            finished: List[Operation] = []
            for position, event in enumerate(self._events):
                if is_invocation(event):
                    open_ops[event.process] = (event, position)  # type: ignore[assignment]
                elif is_response(event):
                    invocation, start = open_ops.pop(event.process)
                    finished.append(
                        Operation(
                            invocation=invocation,
                            response=event,  # type: ignore[arg-type]
                            index=start,
                            response_index=position,
                        )
                    )
                elif is_crash(event):
                    if event.process in open_ops:
                        invocation, start = open_ops.pop(event.process)
                        finished.append(
                            Operation(
                                invocation=invocation,
                                response=None,
                                index=start,
                                response_index=None,
                            )
                        )
            for invocation, start in open_ops.values():
                finished.append(
                    Operation(
                        invocation=invocation,
                        response=None,
                        index=start,
                        response_index=None,
                    )
                )
            finished.sort(key=lambda op: op.index)
            return finished

        ops: List[Operation] = self._cached("operations", compute)
        if pid is None:
            return list(ops)
        return [op for op in ops if op.process == pid]

    def responses(self, pid: Optional[int] = None) -> List[Response]:
        """All response events, optionally restricted to one process."""
        return [
            e  # type: ignore[misc]
            for e in self._events
            if is_response(e) and (pid is None or e.process == pid)
        ]

    def invocations(self, pid: Optional[int] = None) -> List[Invocation]:
        """All invocation events, optionally restricted to one process."""
        return [
            e  # type: ignore[misc]
            for e in self._events
            if is_invocation(e) and (pid is None or e.process == pid)
        ]

    # -- structural operations ------------------------------------------------

    def append(self, event: Event) -> "History":
        """Return a new history extending this one by ``event``.

        The single-event extension is validated incrementally (O(1) given
        the cached pending/crash views), so the simulator can build long
        histories in linear total time.
        """
        pid = event.process
        if pid in self.crashed_processes():
            raise IllFormedHistoryError(
                f"cannot extend: process p{pid} already crashed"
            )
        pending = self.pending_invocations()
        if is_invocation(event) and pid in pending:
            raise IllFormedHistoryError(
                f"cannot extend: p{pid} already has pending {pending[pid]}"
            )
        if is_response(event):
            if pid not in pending:
                raise IllFormedHistoryError(
                    f"cannot extend with {event}: p{pid} has no pending invocation"
                )
            if pending[pid].operation != event.operation:  # type: ignore[union-attr]
                raise IllFormedHistoryError(
                    f"cannot extend with {event}: pending operation is "
                    f"{pending[pid].operation}"
                )
        return History(self._events + (event,), validate=False)

    def extend(self, events: Iterable[Event]) -> "History":
        """Return a new history extended by each event in order."""
        history = self
        for event in events:
            history = history.append(event)
        return history

    def concat(self, other: "History") -> "History":
        """Concatenate two histories (re-validating the result)."""
        return History(self._events + other._events)

    def is_prefix_of(self, other: "History") -> bool:
        """True if this history is a (not necessarily proper) prefix of
        ``other``."""
        if len(self) > len(other):
            return False
        return other._events[: len(self)] == self._events

    def prefixes(self) -> Iterator["History"]:
        """Yield every prefix, from the empty history to the full one."""
        for end in range(len(self._events) + 1):
            yield History(self._events[:end], validate=False)

    def drop_crashes(self) -> "History":
        """The history with crash events removed.

        Useful when feeding a history to a safety checker that reasons only
        about invocations and responses (crashes never violate safety: a
        safety property is prefix-closed and crashes add no responses).
        """
        return History(
            (e for e in self._events if not is_crash(e)), validate=False
        )

    def without_pending(self) -> "History":
        """The history restricted to completed operations.

        Invocations that never receive a response (including those cut off
        by a crash) are removed, as are crash events.  This is one of the
        simplest *completions* in the sense of Section 4.1; richer,
        type-aware completions live with the per-type checkers.
        """
        keep: Set[int] = set()
        for op in self.operations():
            if op.response is not None and op.response_index is not None:
                keep.add(op.index)
                keep.add(op.response_index)
        return History(
            (e for i, e in enumerate(self._events) if i in keep),
            validate=False,
        )


EMPTY_HISTORY = History(())


def history_of(*events: Event) -> History:
    """Convenience constructor: ``history_of(e1, e2, ...)``."""
    return History(events)
