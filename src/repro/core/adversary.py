"""Adversary sets (Definition 4.3) at the core, declarative level.

An *adversary set* w.r.t. a liveness property ``L`` and a safety property
``S`` is a non-empty set of histories ``F`` with

1. ``F ⊆ S``,
2. ``F ⊆ complement(L)`` (every history in ``F`` violates ``L``), and
3. for every implementation ``I`` ensuring ``S`` there is a fair history
   of ``A_I`` in ``F``.

Conditions (1) and (2) are checkable per history.  Condition (3)
quantifies over all implementations; the library discharges it two ways:

* **exactly**, in :mod:`repro.setmodel`, where every implementation of a
  finite micro object type is enumerated; and
* **relative to a registry**, in :mod:`repro.analysis`, where an adversary
  *strategy* (:mod:`repro.adversaries`) is played against every registered
  implementation and must defeat each one.

This module holds the implementation-independent pieces: explicit finite
adversary sets, membership-predicate adversary sets, the intersection
operator behind ``Gmax`` of Theorem 4.4, and the disjointness argument the
paper uses for Corollaries 4.5 and 4.6.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.history import History
from repro.core.properties import SafetyProperty, Verdict


class AdversarySetSpec(ABC):
    """A (possibly intensional) set of histories used as an adversary set."""

    name: str = "adversary-set"

    @abstractmethod
    def contains(self, history: History) -> bool:
        """Membership test."""

    def check_safety_side(
        self, safety: SafetyProperty, histories: Iterable[History]
    ) -> Verdict:
        """Audit condition (1) on a sample: members of the set must be in
        ``S``."""
        for history in histories:
            if self.contains(history) and not safety.permits(history):
                return Verdict.failed(
                    f"{self.name} contains a history outside {safety.name}",
                    witness=history,
                )
        return Verdict.passed(f"sampled members of {self.name} all lie in {safety.name}")


class FiniteAdversarySet(AdversarySetSpec):
    """An explicitly enumerated adversary set.

    The paper's consensus adversary sets ``F1`` and ``F2`` (Section 4.1)
    are finite sets of short histories and are shipped in this form by
    :mod:`repro.adversaries.consensus_flp`.
    """

    def __init__(self, histories: Iterable[History], name: str = "F"):
        self.histories: FrozenSet[History] = frozenset(histories)
        if not self.histories:
            raise ValueError("an adversary set must be non-empty")
        self.name = name

    def contains(self, history: History) -> bool:
        return history in self.histories

    def __len__(self) -> int:
        return len(self.histories)

    def intersection(self, other: "FiniteAdversarySet") -> FrozenSet[History]:
        """Set intersection, the building block of ``Gmax``."""
        return self.histories & other.histories

    def is_disjoint_from(self, other: "FiniteAdversarySet") -> bool:
        """True iff the two adversary sets share no history."""
        return not (self.histories & other.histories)


class PredicateAdversarySet(AdversarySetSpec):
    """An adversary set given by a membership predicate.

    The TM adversary of Section 4.1 produces one history per TM
    implementation; the set of all such histories is intensional (it is
    parameterised by the universe of implementations), so membership is
    expressed as a predicate on histories — e.g. "history is a play of
    strategy ``A`` in which no ``tryC`` of ``p1`` ever commits".
    """

    def __init__(self, predicate: Callable[[History], bool], name: str = "F"):
        self._predicate = predicate
        self.name = name

    def contains(self, history: History) -> bool:
        return bool(self._predicate(history))


@dataclass(frozen=True)
class DisjointnessCertificate:
    """Evidence that two adversary sets are disjoint.

    The paper's route to Corollaries 4.5/4.6: exhibit two adversary sets
    w.r.t. ``Lmax`` and ``S`` whose intersection is empty; then ``Gmax``
    — the intersection of *all* adversary sets — is empty, hence not an
    adversary set (it is not even non-empty), and by Theorem 4.4 no
    weakest liveness property excluding ``S`` exists.

    ``separating_feature`` records *why* the sets cannot intersect, e.g.
    "every history of F1 begins with an event of p1, every history of F2
    with an event of p2".
    """

    left_name: str
    right_name: str
    disjoint: bool
    separating_feature: str = ""
    sample_left: Optional[History] = None
    sample_right: Optional[History] = None

    @property
    def gmax_is_empty(self) -> bool:
        """If the sets are disjoint, ``Gmax ⊆ F1 ∩ F2 = ∅``."""
        return self.disjoint


def certify_disjoint_by_first_event(
    left: FiniteAdversarySet,
    right: FiniteAdversarySet,
    left_process: int,
    right_process: int,
) -> DisjointnessCertificate:
    """Certify disjointness via the paper's first-event argument.

    Both corollaries argue that every history in one set begins with an
    event of one process and every history in the other set with an event
    of a different process.  This helper checks that shape explicitly and
    also verifies literal disjointness, so the certificate does not rely
    on the shape argument alone.
    """
    for history in left.histories:
        if len(history) == 0 or history[0].process != left_process:
            return DisjointnessCertificate(
                left_name=left.name,
                right_name=right.name,
                disjoint=left.is_disjoint_from(right),
                separating_feature=(
                    f"shape check failed: a history of {left.name} does not "
                    f"begin with an event of p{left_process}"
                ),
            )
    for history in right.histories:
        if len(history) == 0 or history[0].process != right_process:
            return DisjointnessCertificate(
                left_name=left.name,
                right_name=right.name,
                disjoint=left.is_disjoint_from(right),
                separating_feature=(
                    f"shape check failed: a history of {right.name} does not "
                    f"begin with an event of p{right_process}"
                ),
            )
    disjoint = left.is_disjoint_from(right)
    return DisjointnessCertificate(
        left_name=left.name,
        right_name=right.name,
        disjoint=disjoint,
        separating_feature=(
            f"every history of {left.name} begins with an event of "
            f"p{left_process}; every history of {right.name} begins with an "
            f"event of p{right_process}"
        ),
        sample_left=next(iter(left.histories)),
        sample_right=next(iter(right.histories)),
    )


def intersect_all(sets: Sequence[FiniteAdversarySet]) -> FrozenSet[History]:
    """``Gmax`` over an explicit family: the intersection of all members.

    Theorem 4.4's characterisation is stated for the family of *all*
    adversary sets w.r.t. ``Lmax``; :mod:`repro.setmodel.theorem44`
    enumerates that family exactly for micro types.  This helper is the
    shared set-arithmetic.
    """
    if not sets:
        raise ValueError("Gmax of an empty family is undefined")
    result = sets[0].histories
    for other in sets[1:]:
        result = result & other.histories
    return result
