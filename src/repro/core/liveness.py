"""Concrete liveness properties (Sections 3.2 and 5.1).

``Lmax`` — the strongest liveness requirement of an object type — demands
progress from *every* correct process.  Instantiated per object type it is
wait-freedom (registers, consensus) or local progress (TM).  Every other
liveness property in the paper is a weakening of ``Lmax``; the classes in
this module and in :mod:`repro.core.freedom` implement the ones the paper
uses, all evaluated on
:class:`~repro.core.properties.ExecutionSummary` abstractions.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence

from repro.core.properties import (
    Certainty,
    ExecutionSummary,
    LivenessProperty,
    Verdict,
)


class Lmax(LivenessProperty):
    """The strongest liveness property: all correct processes progress.

    For consensus objects this instance is called *wait-freedom*; for TM
    objects, *local progress*; the semantics is identical at the summary
    level — ``correct ⊆ progressors``.
    """

    name = "Lmax"

    def evaluate(self, summary: ExecutionSummary) -> Verdict:
        starving = summary.correct - summary.progressors
        if starving:
            return Verdict.failed(
                f"correct processes {sorted(starving)} make no progress",
                witness=summary,
                certainty=summary.certainty,
            )
        return Verdict.passed(
            "every correct process makes progress", certainty=summary.certainty
        )


class WaitFreedom(Lmax):
    """Wait-freedom [19]: ``Lmax`` for one-shot and register-like objects."""

    name = "wait-freedom"


class LocalProgress(Lmax):
    """Local progress [4]: ``Lmax`` for transactional memory objects."""

    name = "local-progress"


class TrivialLiveness(LivenessProperty):
    """The weakest liveness property: the set of *all* executions.

    Every implementation ensures it; it never excludes any safety
    property.  Used as a sanity anchor in ordering tests.
    """

    name = "trivial-liveness"

    def evaluate(self, summary: ExecutionSummary) -> Verdict:
        return Verdict.passed("trivial liveness admits every execution")


class LockFreedom(LivenessProperty):
    """Lock-freedom: at least one correct process makes progress.

    Equal to :class:`~repro.core.freedom.LLockFreedom` with ``l=1``;
    provided under its usual name for readability.
    """

    name = "lock-freedom"

    def evaluate(self, summary: ExecutionSummary) -> Verdict:
        if not summary.correct:
            return Verdict.passed(
                "no correct processes: nothing is required",
                certainty=summary.certainty,
            )
        if summary.progressors:
            return Verdict.passed(
                f"processes {sorted(summary.progressors)} make progress",
                certainty=summary.certainty,
            )
        return Verdict.failed(
            "no correct process makes progress",
            witness=summary,
            certainty=summary.certainty,
        )


class SoloTermination(LivenessProperty):
    """Obstruction-freedom read directly (Taubenfeld's 1-OF, 'steppers'
    consequent): whenever at most one process takes infinitely many steps,
    that process makes progress.

    Kept alongside the ``(l,k)``-freedom family because the literal and
    the paper's readings of k-obstruction-freedom differ; see
    :mod:`repro.core.freedom` for the full discussion.
    """

    name = "solo-termination"

    def evaluate(self, summary: ExecutionSummary) -> Verdict:
        if len(summary.steppers) > 1:
            return Verdict.passed(
                "more than one eventual stepper: nothing is required",
                certainty=summary.certainty,
            )
        lagging = summary.steppers - summary.progressors
        if lagging:
            return Verdict.failed(
                f"solo stepper {sorted(lagging)} makes no progress",
                witness=summary,
                certainty=summary.certainty,
            )
        return Verdict.passed("solo steppers progress", certainty=summary.certainty)


def enumerate_summaries(
    n_processes: int,
    progress_requires_steps: bool = False,
    include_finite: bool = True,
) -> List[ExecutionSummary]:
    """Enumerate the abstract-execution space for ``n`` processes.

    An abstract execution is a triple ``(correct, steppers, progressors)``
    with ``steppers ⊆ correct`` and ``progressors ⊆ correct`` (and
    ``progressors ⊆ steppers`` when ``progress_requires_steps`` — the
    right constraint for long-lived objects, where making progress
    requires taking steps forever; one-shot objects allow a process to
    decide and then halt).

    Infinite executions have a non-empty stepper set; when
    ``include_finite`` is set, the triples with ``steppers = ∅`` are also
    produced, marked finite.  The space is the exact domain on which the
    paper's ``(l,k)``-freedom comparisons are decided, so subset tests on
    admitted sets are *proofs* of the stronger/weaker relation for the
    summary semantics.
    """
    if n_processes < 1:
        raise ValueError("need at least one process")
    everyone = list(range(n_processes))
    summaries: List[ExecutionSummary] = []
    for correct_mask in range(2 ** n_processes):
        correct = frozenset(p for p in everyone if correct_mask >> p & 1)
        correct_list = sorted(correct)
        for stepper_mask in range(2 ** len(correct_list)):
            steppers = frozenset(
                correct_list[i]
                for i in range(len(correct_list))
                if stepper_mask >> i & 1
            )
            if not steppers and not include_finite:
                continue
            progress_pool = sorted(steppers if progress_requires_steps else correct)
            for progress_mask in range(2 ** len(progress_pool)):
                progressors = frozenset(
                    progress_pool[i]
                    for i in range(len(progress_pool))
                    if progress_mask >> i & 1
                )
                summaries.append(
                    ExecutionSummary(
                        n_processes=n_processes,
                        correct=correct,
                        steppers=steppers,
                        progressors=progressors,
                        finite=not steppers,
                        certainty=Certainty.PROVED,
                    )
                )
    return summaries


def compare(
    left: LivenessProperty,
    right: LivenessProperty,
    summaries: Sequence[ExecutionSummary],
) -> str:
    """Classify the relation of two liveness properties over a space.

    Returns one of ``"equal"``, ``"stronger"`` (left stronger than right,
    i.e. admits a subset), ``"weaker"``, or ``"incomparable"``.
    """
    left_set = left.admits(summaries)
    right_set = right.admits(summaries)
    if left_set == right_set:
        return "equal"
    if left_set <= right_set:
        return "stronger"
    if right_set <= left_set:
        return "weaker"
    return "incomparable"
