"""The shipped scenario catalog.

Every named instance the repository verifies lives here — the former
fuzz workload registry (same ids, same plans, same expectations, so
fixed-seed fuzz runs reproduce exactly), widened with the remaining
implementations of the analysis registries (TAS/silent consensus, the
trivial, global-lock, and intent TMs).  Registration happens at import
time; :mod:`repro.scenarios` imports this module, so
``from repro.scenarios import iter_scenarios`` always sees the full
catalog.

The plans mirror the exhaustive benchmarks (``benchmarks/
engine_timing.py``), so ``agp-opacity`` here is the same instance whose
snapshot-vs-replay timings ``BENCH_engine.json`` records — fuzz-vs-
exhaustive throughput comparisons are therefore like for like.  The
``-deep`` and 3-process variants open the regime exhaustive search
cannot reach; they are fuzz-only (no ``small`` tag).

Tag vocabulary: ``consensus``/``tm`` (object kind), ``small``
(exhaustible, hence oracle-eligible), ``satisfying``/``violating``
(the expected *safety* verdict), ``registers-only`` (the hypothesis of
the register-model corollaries), ``liveness`` (carries a liveness
property and is runnable under ``backend=liveness`` — its expected
liveness verdict is ``Scenario.expect_liveness_violation``, declared
independently of the safety expectation: the paper's headline cases
are exactly *safety holds, liveness violated*).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.adversaries.consensus_flp import LockstepConsensusAdversary
from repro.adversaries.tm_local_progress import TMLocalProgressAdversary
from repro.algorithms.consensus import (
    CasConsensus,
    CommitAdoptConsensus,
    InventingConsensus,
    SilentConsensus,
    StubbornConsensus,
    TasConsensus,
)
from repro.algorithms.tm import (
    AgpTransactionalMemory,
    GlobalLockTransactionalMemory,
    I12TransactionalMemory,
    IntentTransactionalMemory,
    TrivialTransactionalMemory,
)
from repro.core.liveness import LocalProgress, WaitFreedom
from repro.objects.consensus import AgreementValidity
from repro.objects.opacity import OpacityChecker
from repro.scenarios.registry import register
from repro.scenarios.scenario import (
    TAG_LIVENESS,
    TAG_SATISFYING,
    TAG_SMALL,
    TAG_VIOLATING,
    Bounds,
    Scenario,
)
from repro.sim.explore import InvocationPlan

PROPOSE_PLAN: InvocationPlan = {0: [("propose", (0,))], 1: [("propose", (1,))]}

TM_PLAN: InvocationPlan = {
    0: [("start", ()), ("write", (0, 1)), ("tryC", ())],
    1: [("start", ()), ("read", (0,)), ("tryC", ())],
}

TM_DEEP_PLAN: InvocationPlan = {
    0: [("start", ()), ("write", (0, 1)), ("tryC", ()), ("start", ()), ("tryC", ())],
    1: [("start", ()), ("read", (0,)), ("tryC", ())],
}

TM_3P_PLAN: InvocationPlan = {
    0: [("start", ()), ("write", (0, 1)), ("tryC", ())],
    1: [("start", ()), ("read", (0,)), ("write", (0, 2)), ("tryC", ())],
    2: [("start", ()), ("read", (0,)), ("tryC", ())],
}

#: The all-abort TM rejects ``start`` itself, so the only well-formed
#: *static* plan against it is repeated start attempts (the reactive
#: ``TransactionWorkload`` of the battery experiments adapts instead).
TM_START_ONLY_PLAN: InvocationPlan = {
    0: [("start", ()), ("start", ())],
    1: [("start", ()), ("start", ())],
}


def _scenario(
    scenario_id: str,
    factory,
    plan: InvocationPlan,
    safety_factory,
    kind: str,
    expect_violation: bool = False,
    small: bool = False,
    extra_tags: Tuple[str, ...] = (),
    bounds: Optional[Bounds] = None,
    notes: str = "",
    liveness_factory=None,
    adversary_factory=None,
    expect_liveness_violation: bool = False,
) -> Scenario:
    """Build-and-register helper keeping the derived tags consistent."""
    tags = (kind,)
    tags += (TAG_VIOLATING,) if expect_violation else (TAG_SATISFYING,)
    if small:
        tags += (TAG_SMALL,)
    if liveness_factory is not None:
        tags += (TAG_LIVENESS,)
    tags += extra_tags
    return register(
        Scenario(
            scenario_id=scenario_id,
            factory=factory,
            plan=plan,
            safety_factory=safety_factory,
            bounds=bounds if bounds is not None else Bounds(),
            tags=tags,
            expect_violation=expect_violation,
            notes=notes,
            liveness_factory=liveness_factory,
            adversary_factory=adversary_factory,
            expect_liveness_violation=expect_liveness_violation,
        )
    )


# -- consensus ---------------------------------------------------------------

_scenario(
    "cas-consensus",
    lambda: CasConsensus(2),
    PROPOSE_PLAN,
    AgreementValidity,
    kind="consensus",
    small=True,
    notes="wait-free consensus; satisfying oracle instance",
)
_scenario(
    "tas-consensus",
    lambda: TasConsensus(2),
    PROPOSE_PLAN,
    AgreementValidity,
    kind="consensus",
    small=True,
    notes="wait-free for 2 processes (consensus number 2)",
)
_scenario(
    "commit-adopt-consensus",
    lambda: CommitAdoptConsensus(2),
    PROPOSE_PLAN,
    AgreementValidity,
    kind="consensus",
    extra_tags=("registers-only",),
    notes="obstruction-free register consensus; its round counter "
    "blows up the depth-64 configuration graph (~7.5k maximal "
    "runs, tens of seconds exhaustive), so it is fuzz-only",
)
_scenario(
    "silent-consensus",
    lambda: SilentConsensus(2),
    PROPOSE_PLAN,
    AgreementValidity,
    kind="consensus",
    small=True,
    extra_tags=("registers-only",),
    notes="never responds (Theorem 4.9's trivial implementation); "
    "safety holds vacuously on every interleaving",
)
_scenario(
    "stubborn-consensus",
    lambda: StubbornConsensus(2),
    PROPOSE_PLAN,
    AgreementValidity,
    kind="consensus",
    expect_violation=True,
    small=True,
    extra_tags=("registers-only",),
    notes="planted agreement violation (negative fixture)",
)
_scenario(
    "inventing-consensus",
    lambda: InventingConsensus(2),
    PROPOSE_PLAN,
    AgreementValidity,
    kind="consensus",
    expect_violation=True,
    small=True,
    extra_tags=("registers-only",),
    notes="planted validity violation (negative fixture)",
)

# -- transactional memory ----------------------------------------------------

_scenario(
    "agp-opacity",
    lambda: AgpTransactionalMemory(2, variables=(0,)),
    TM_PLAN,
    OpacityChecker,
    kind="tm",
    small=True,
    notes="the BENCH_engine.json reference TM instance",
)
_scenario(
    "i12-opacity",
    lambda: I12TransactionalMemory(2, variables=(0,)),
    TM_PLAN,
    OpacityChecker,
    kind="tm",
    small=True,
    notes="the paper's Algorithm 1 under the reference TM plan",
)
_scenario(
    "trivial-opacity",
    lambda: TrivialTransactionalMemory(2, variables=(0,)),
    TM_START_ONLY_PLAN,
    OpacityChecker,
    kind="tm",
    small=True,
    notes="aborts everything (even start, hence the start-only plan); "
    "the degenerate safe corner",
)
_scenario(
    "global-lock-opacity",
    lambda: GlobalLockTransactionalMemory(2, variables=(0,)),
    TM_PLAN,
    OpacityChecker,
    kind="tm",
    small=True,
    notes="blocking TM; opaque, marks the non-blocking boundary",
)
_scenario(
    "intent-opacity",
    lambda: IntentTransactionalMemory(2, variables=(0,)),
    TM_PLAN,
    OpacityChecker,
    kind="tm",
    small=True,
    notes="obstruction-free intent TM; livelocks under contention "
    "but every history stays opaque",
)
_scenario(
    "agp-opacity-deep",
    lambda: AgpTransactionalMemory(2, variables=(0,)),
    TM_DEEP_PLAN,
    OpacityChecker,
    kind="tm",
    notes="double-depth plan; exhaustive search takes ~10s here",
)
_scenario(
    "agp-opacity-3p",
    lambda: AgpTransactionalMemory(3, variables=(0,)),
    TM_3P_PLAN,
    OpacityChecker,
    kind="tm",
    notes="3-process regime beyond the exhaustive benchmarks",
)

# -- liveness: the paper's safety–liveness exclusion -------------------------
#
# Theorem 5.3's negative half operationalised: the Section 4.1 three-step
# adversary (F1, and its process-swapped twin F2) starves its victim
# against every opaque TM while the history stays opaque — so each
# scenario below is *safety-satisfying* under the safety backends and
# *liveness-violating* under ``backend=liveness``.  Against the trivial
# always-abort TM the strategy state repeats and the verdict is an exact
# lasso-certified proof; against the committing TMs the stored read
# values grow without bound, so the verdict is horizon evidence (both
# documented in the tm_local_progress module docstring).


def _f1_adversary():
    return TMLocalProgressAdversary(victim=0, helper=1, variable=0)


def _f2_adversary():
    return TMLocalProgressAdversary(victim=1, helper=0, variable=0)


_scenario(
    "trivial-local-progress-f1",
    lambda: TrivialTransactionalMemory(2, variables=(0,)),
    TM_START_ONLY_PLAN,
    OpacityChecker,
    kind="tm",
    small=True,
    liveness_factory=LocalProgress,
    adversary_factory=_f1_adversary,
    expect_liveness_violation=True,
    notes="F1 adversary vs the always-abort TM: exact lasso, the "
    "one-command starvation proof of the paper's headline",
)
_scenario(
    "trivial-local-progress-f2",
    lambda: TrivialTransactionalMemory(2, variables=(0,)),
    TM_START_ONLY_PLAN,
    OpacityChecker,
    kind="tm",
    small=True,
    liveness_factory=LocalProgress,
    adversary_factory=_f2_adversary,
    expect_liveness_violation=True,
    notes="the process-swapped F2 twin (Corollary 4.6's second set)",
)
_scenario(
    "agp-local-progress",
    lambda: AgpTransactionalMemory(2, variables=(0,)),
    TM_PLAN,
    OpacityChecker,
    kind="tm",
    small=True,
    liveness_factory=LocalProgress,
    adversary_factory=_f1_adversary,
    expect_liveness_violation=True,
    notes="F1 starves the victim against AGP; stored read values grow, "
    "so the verdict is horizon evidence rather than a lasso",
)
_scenario(
    "i12-local-progress",
    lambda: I12TransactionalMemory(2, variables=(0,)),
    TM_PLAN,
    OpacityChecker,
    kind="tm",
    small=True,
    liveness_factory=LocalProgress,
    adversary_factory=_f1_adversary,
    expect_liveness_violation=True,
    notes="F1 vs the paper's Algorithm I(1,2): (1,2)-freedom survives "
    "but local progress falls (horizon evidence)",
)
_scenario(
    "trivial-local-progress-schedules",
    lambda: TrivialTransactionalMemory(2, variables=(0,)),
    TM_START_ONLY_PLAN,
    OpacityChecker,
    kind="tm",
    small=True,
    liveness_factory=LocalProgress,
    expect_liveness_violation=True,
    notes="no adversary: exhaustive branching over every scheduler "
    "choice of the start-only plan; every fair schedule starves "
    "both processes (finite-certificate proof)",
)
_scenario(
    "commit-adopt-starvation",
    lambda: CommitAdoptConsensus(2),
    PROPOSE_PLAN,
    AgreementValidity,
    kind="consensus",
    extra_tags=("registers-only",),
    liveness_factory=WaitFreedom,
    adversary_factory=LockstepConsensusAdversary,
    expect_liveness_violation=True,
    notes="the CIL lockstep adversary vs commit-adopt: abstract-lasso "
    "proof that neither proposer ever decides (Theorem 5.2's "
    "negative half); fuzz-only for the safety backends like "
    "commit-adopt-consensus",
)
_scenario(
    "cas-escapes-lockstep",
    lambda: CasConsensus(2),
    PROPOSE_PLAN,
    AgreementValidity,
    kind="consensus",
    small=True,
    liveness_factory=WaitFreedom,
    adversary_factory=LockstepConsensusAdversary,
    expect_liveness_violation=False,
    notes="the escaping implementation: CAS consensus decides under "
    "the same lockstep adversary, so wait-freedom holds (proof)",
)
_scenario(
    "cas-wait-freedom-schedules",
    lambda: CasConsensus(2),
    PROPOSE_PLAN,
    AgreementValidity,
    kind="consensus",
    small=True,
    liveness_factory=WaitFreedom,
    expect_liveness_violation=False,
    notes="wait-freedom over every scheduler choice of the propose "
    "plan: all maximal runs complete fairly with both deciding",
)
