"""The process-global scenario registry.

One mapping ``id -> Scenario`` feeds every consumer: the verify facade,
the fuzzer's target resolution, the differential oracle's sweep,
campaign grid cells (which reference scenarios by id), and the
``scenarios list`` / ``verify`` CLI.  Lookups fail uniformly with
:class:`~repro.util.errors.UsageError` plus a did-you-mean suggestion
(exit code 2 at the CLI) — never a bare ``KeyError``.

The registry is populated at import time by
:mod:`repro.scenarios.catalog`; libraries and tests may
:func:`register` additional scenarios (e.g. parametrized families) at
runtime.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.scenarios.scenario import Scenario
from repro.util.errors import UsageError, unknown_choice

_SCENARIOS: Dict[str, Scenario] = {}


def register(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the global registry (returned for chaining).

    Duplicate ids raise :class:`UsageError` unless ``replace=True`` —
    an accidental redefinition should fail loudly, a deliberate
    override (tests, notebooks) should be easy.
    """
    if not replace and scenario.scenario_id in _SCENARIOS:
        raise UsageError(
            f"scenario {scenario.scenario_id!r} is already registered; "
            "pass replace=True to override it"
        )
    _SCENARIOS[scenario.scenario_id] = scenario
    return scenario


def unregister(scenario_id: str) -> None:
    """Remove a scenario (primarily for test isolation)."""
    _SCENARIOS.pop(scenario_id, None)


def get_scenario(scenario_id: Union[str, Scenario]) -> Scenario:
    """Look up a scenario by id (a ``Scenario`` passes through).

    Ids of the form ``family:key=value,...`` whose family is registered
    fall back to :func:`repro.scenarios.families.materialize` — a
    sampling budget may have kept the instance out of the registered
    slice, but every in-grid id stays addressable.  Other unknown ids
    raise :class:`~repro.util.errors.UsageError` with a did-you-mean
    suggestion and the known ids.
    """
    if isinstance(scenario_id, Scenario):
        return scenario_id
    try:
        return _SCENARIOS[scenario_id]
    except KeyError:
        pass
    if isinstance(scenario_id, str) and ":" in scenario_id:
        # Imported lazily: families itself registers scenarios at import.
        from repro.scenarios import families

        if scenario_id.partition(":")[0] in families.family_ids():
            return families.materialize(scenario_id)
    raise unknown_choice("scenario", scenario_id, _SCENARIOS)


def iter_scenarios(
    tags: Optional[Union[str, Iterable[str]]] = None
) -> List[Scenario]:
    """Registered scenarios in id order, optionally tag-filtered.

    ``tags`` is a single tag or an iterable; a scenario matches when it
    carries *every* requested tag (AND semantics —
    ``iter_scenarios(tags=("tm", "small"))`` is the exhaustible TM
    slice).
    """
    scenarios = [_SCENARIOS[key] for key in sorted(_SCENARIOS)]
    if tags is None:
        return scenarios
    return [scenario for scenario in scenarios if scenario.has_tags(tags)]


def scenario_ids() -> List[str]:
    """The sorted registered ids."""
    return sorted(_SCENARIOS)
