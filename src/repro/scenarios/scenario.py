"""The declarative scenario model: one instance, every backend.

A :class:`Scenario` bundles everything any verification backend needs
about one named instance — the implementation under test, the
invocation plan whose schedules are explored, and the safety property
that judges histories — plus the *policy* around it: an optional pinned
scheduler for directed fuzzing, an optional crash model, default search
bounds, and free-form tags that make the registry sliceable
(``iter_scenarios(tags="small")``).

The same ``Scenario`` is consumed by the exhaustive engine (every
schedule, a depth/configuration-bounded proof), the fuzzer (seeded
random sampling, horizon evidence), the differential oracle (both,
compared), campaign grids (by id), and the CLI.  The
:func:`~repro.scenarios.verify.verify` facade normalizes all of them to
one :class:`Verdict` shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Optional, Tuple

from repro.fuzz.trace import LassoTrace, ReplayTrace
from repro.util.errors import UsageError

#: The verdict outcomes every backend normalizes to.
OUTCOMES = ("holds", "violated", "budget-exhausted")

#: Tags with registry-wide meaning (free-form tags are also fine).
TAG_SMALL = "small"  #: exhaustible => oracle-eligible
TAG_VIOLATING = "violating"  #: a violation is the expected verdict
TAG_SATISFYING = "satisfying"  #: the property is expected to hold
TAG_LIVENESS = "liveness"  #: carries a liveness property (backend=liveness)


@dataclass(frozen=True)
class Bounds:
    """Default search budgets of a scenario (overridable per call).

    ``max_depth`` bounds schedule length on both backends;
    ``iterations`` is the fuzz sampling budget; ``max_configurations``
    is the exhaustive engine's unique-configuration budget (exceeding
    it yields a ``budget-exhausted`` verdict, never a silent
    truncation).
    """

    max_depth: int = 64
    iterations: int = 2_000
    max_configurations: int = 200_000
    #: Step horizon of the liveness backend: runs neither lassoed nor
    #: fairly finished by here are classified as horizon evidence.
    #: Separate from ``max_depth`` because starvation cycles need far
    #: longer runs than schedule-space sampling does.
    horizon: int = 2_000

    def override(self, **changes: Any) -> "Bounds":
        """A copy with the given fields replaced (None values ignored)."""
        return replace(
            self, **{k: v for k, v in changes.items() if v is not None}
        )


@dataclass(frozen=True)
class Scenario:
    """One named, declarative verification instance (see module doc)."""

    scenario_id: str
    #: Fresh-implementation factory (the object under test).
    factory: Callable[[], Any]
    #: The invocation plan whose interleavings are explored/sampled.
    plan: Any  # InvocationPlan; kept loose for frozen-dataclass typing
    #: Fresh-property factory (the checker judging each history).
    safety_factory: Callable[[], Any]
    #: Optional pinned scheduler factory: when given, fuzz exploration
    #: walks use it instead of mutating random swarms (directed fuzzing).
    scheduler_factory: Optional[Callable[[], Any]] = None
    #: Optional crash model (``parse_crash_spec`` grammar, e.g.
    #: ``"p0@40"``) applied by the fuzz backend unless overridden.
    crash: Optional[str] = None
    bounds: Bounds = field(default_factory=Bounds)
    tags: Tuple[str, ...] = ()
    #: Whether the expected verdict is a violation (planted fixtures).
    expect_violation: bool = False
    notes: str = ""
    #: Optional fresh-liveness-property factory
    #: (:class:`~repro.core.properties.LivenessProperty`); required by
    #: ``backend="liveness"``, ignored by the safety backends.
    liveness_factory: Optional[Callable[[], Any]] = None
    #: Optional adversary strategy factory
    #: (:class:`~repro.sim.drivers.Driver`): when given, the liveness
    #: backend plays this strategy; when ``None`` it branches over every
    #: scheduler choice of :attr:`plan` instead.
    adversary_factory: Optional[Callable[[], Any]] = None
    #: The liveness backend's expected verdict — independent of
    #: :attr:`expect_violation`, which judges the *safety* backends (the
    #: paper's core cases are exactly the safety-holds /
    #: liveness-violated combinations).
    expect_liveness_violation: bool = False

    def __post_init__(self) -> None:
        if not self.scenario_id or not isinstance(self.scenario_id, str):
            raise UsageError(
                f"scenario id must be a non-empty string, got "
                f"{self.scenario_id!r}"
            )

    # -- derived views ------------------------------------------------------

    @property
    def name(self) -> str:
        """Alias for :attr:`scenario_id` (the former ``FuzzWorkload``
        field name; the fuzz driver and trace artifacts use it)."""
        return self.scenario_id

    @property
    def small(self) -> bool:
        """Small enough to exhaust — eligible for the exhaustive
        backend's full proof and therefore for the differential
        oracle."""
        return TAG_SMALL in self.tags

    def has_tags(self, wanted) -> bool:
        """Whether every tag in ``wanted`` (a string or an iterable of
        strings) is present."""
        if isinstance(wanted, str):
            wanted = (wanted,)
        return all(tag in self.tags for tag in wanted)

    def describe(self) -> Dict[str, str]:
        """The catalog row: id, object, property, tags, notes.

        Instantiates the factories (implementations are stateless and
        cheap by the kernel's determinism contract) to report the real
        registered names rather than repeating the id.
        """
        prop = getattr(self.safety_factory(), "name", "?")
        if self.liveness_factory is not None:
            prop += " + " + getattr(self.liveness_factory(), "name", "?")
        return {
            "id": self.scenario_id,
            "object": getattr(self.factory(), "name", "?"),
            "property": prop,
            "tags": ", ".join(self.tags),
            "notes": self.notes,
        }


@dataclass
class Verdict:
    """The uniform outcome every backend reduces to.

    ``outcome`` is one of :data:`OUTCOMES`: the property held over the
    explored/sampled space, a genuine violation was found (see
    :attr:`counterexample`), or the exhaustive engine ran out of its
    configuration budget before finishing.  ``expected`` compares the
    outcome against the scenario's declared expectation — the CLI's
    exit-0 condition.  ``stats`` carries backend-specific evidence
    (runs checked, interleavings sampled, coverage, certainty,
    timings); ``counterexample`` is a replay-verified
    :class:`~repro.fuzz.trace.ReplayTrace` whenever a violation was
    found, replayable by ``python -m repro fuzz --replay``; ``lasso``
    is the liveness backend's counterpart — a replay-verified
    :class:`~repro.fuzz.trace.LassoTrace` starvation certificate.
    """

    scenario_id: str
    backend: str
    outcome: str
    expected: bool
    stats: Dict[str, Any] = field(default_factory=dict)
    counterexample: Optional[ReplayTrace] = None
    lasso: Optional[LassoTrace] = None

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise UsageError(
                f"verdict outcome must be one of {OUTCOMES}, got "
                f"{self.outcome!r}"
            )

    @property
    def holds(self) -> bool:
        return self.outcome == "holds"

    @property
    def violated(self) -> bool:
        return self.outcome == "violated"

    @property
    def budget_exhausted(self) -> bool:
        return self.outcome == "budget-exhausted"

    def to_document(self) -> Dict[str, Any]:
        """A JSON-safe encoding (the ``verify --out`` artifact)."""
        document: Dict[str, Any] = {
            "scenario": self.scenario_id,
            "backend": self.backend,
            "outcome": self.outcome,
            "expected": self.expected,
            "stats": dict(self.stats),
        }
        if self.counterexample is not None:
            document["counterexample"] = self.counterexample.to_document()
        if self.lasso is not None:
            document["lasso"] = self.lasso.to_document()
        return document
