"""Generative scenario families: parametric grids of registered scenarios.

A :class:`ScenarioFamily` is a declarative generator: an ordered
parameter grid (``impl`` × ``n`` × plan shape × ...) plus a builder
that turns one parameter assignment into a concrete
:class:`~repro.scenarios.scenario.Scenario`.  At import time every
family expands — deterministically, in declared parameter order — into
registered instances, turning the hand-curated catalog into hundreds of
addressable scenarios without hundreds of hand-written registrations.

Instance ids are ``family_id:key=value,...`` with the keys in declared
grid order (``tm-grid:impl=agp,n=2,plan=rw,vars=1``), so an id is also
a complete recipe: :func:`materialize` rebuilds the instance from its
id alone.  That keeps off-budget instances addressable — when
``REPRO_FAMILY_BUDGET`` caps the expansion below the full grid (an
evenly spaced, deterministic sample is registered instead), the
registry's lookup fallback still resolves any in-grid id on demand.

Every instance carries :data:`~repro.scenarios.scenario.TAG_FAMILY`
plus ``family:<family_id>``; instances cheap enough for an exhaustive
proof additionally carry
:data:`~repro.scenarios.scenario.TAG_EXHAUSTIBLE` (deliberately not
``small``: the curated ``small`` slice drives the CI oracle sweep, and
the generated grid would swamp it).

Determinism contract (regression-tested): two fresh interpreters
produce byte-identical ``scenarios list --format md`` output, because
expansion order is a pure function of the declared grids and the
budget.
"""

from __future__ import annotations

import itertools

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.algorithms.consensus import (
    CasConsensus,
    CommitAdoptConsensus,
    InventingConsensus,
    SilentConsensus,
    StubbornConsensus,
    TasConsensus,
)
from repro.algorithms.locks import BakeryLock, McsLock, TasLock
from repro.algorithms.tm import (
    AgpTransactionalMemory,
    GlobalLockTransactionalMemory,
    I12TransactionalMemory,
    IntentTransactionalMemory,
    NorecTransactionalMemory,
)
from repro.objects.consensus import AgreementValidity
from repro.objects.mutex import MutualExclusionChecker
from repro.objects.opacity import OpacityChecker
from repro.scenarios.registry import register
from repro.scenarios.scenario import (
    TAG_EXHAUSTIBLE,
    TAG_FAMILY,
    TAG_SATISFYING,
    TAG_VIOLATING,
    Scenario,
)
from repro.sim.explore import InvocationPlan
from repro.util.errors import UsageError, unknown_choice
from repro.util.params import env_int

#: Default per-family instance cap (override with ``REPRO_FAMILY_BUDGET``).
#: High enough that every shipped grid registers completely.
DEFAULT_FAMILY_BUDGET = 256


def family_budget() -> int:
    """Per-family instance cap from ``REPRO_FAMILY_BUDGET``.

    Validated through the shared ``REPRO_*`` env grammar
    (:func:`repro.util.params.env_int`); a cap below 1 clamps to 1 —
    an empty registry is never a useful interpretation of a budget.
    """
    return env_int("REPRO_FAMILY_BUDGET", default=DEFAULT_FAMILY_BUDGET, minimum=1)


@dataclass(frozen=True)
class ScenarioFamily:
    """A parametric scenario generator (see module docstring).

    ``parameters`` is the ordered grid: ``((name, (value, ...)), ...)``.
    ``builder(**params)`` returns a :class:`Scenario` whose id must be
    :meth:`instance_id` of the parameters — or ``None`` to skip a
    combination that does not exist (e.g. the test-and-set consensus
    protocol beyond two processes).
    """

    family_id: str
    description: str
    parameters: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    builder: Callable[..., Optional[Scenario]]

    def instance_id(self, params: Dict[str, Any]) -> str:
        """The canonical instance id for one parameter assignment."""
        rendered = ",".join(f"{name}={params[name]}" for name, _ in self.parameters)
        return f"{self.family_id}:{rendered}"

    def combos(self) -> List[Dict[str, Any]]:
        """Every parameter assignment, in declared declaration order."""
        names = [name for name, _ in self.parameters]
        value_lists = [values for _, values in self.parameters]
        return [
            dict(zip(names, values))
            for values in itertools.product(*value_lists)
        ]

    def build(self, params: Dict[str, Any]) -> Optional[Scenario]:
        """Build one instance (``None`` for skipped combinations)."""
        scenario = self.builder(**params)
        if scenario is not None:
            expected = self.instance_id(params)
            if scenario.scenario_id != expected:
                raise UsageError(
                    f"family {self.family_id!r} built scenario id "
                    f"{scenario.scenario_id!r}; expected {expected!r}"
                )
        return scenario

    def expand(self, budget: Optional[int] = None) -> List[Scenario]:
        """The registered slice of the grid: every buildable instance,
        evenly down-sampled (deterministically) to ``budget`` when the
        grid is larger."""
        instances = [
            scenario
            for scenario in (self.build(params) for params in self.combos())
            if scenario is not None
        ]
        if budget is None:
            budget = family_budget()
        if len(instances) <= budget:
            return instances
        # Evenly spaced indices keep the sample spread across the whole
        # grid (every impl, every plan shape) instead of truncating to
        # a prefix dominated by the first parameter values.
        step = len(instances) / budget
        picked = sorted({int(index * step) for index in range(budget)})
        return [instances[index] for index in picked]


# ---------------------------------------------------------------------------
# The family registry
# ---------------------------------------------------------------------------

_FAMILIES: Dict[str, ScenarioFamily] = {}


def register_family(family: ScenarioFamily) -> ScenarioFamily:
    """Add a family to the registry (duplicate ids fail loudly)."""
    if family.family_id in _FAMILIES:
        raise UsageError(
            f"scenario family {family.family_id!r} is already registered"
        )
    _FAMILIES[family.family_id] = family
    return family


def get_family(family_id: str) -> ScenarioFamily:
    """Look up a family by id (did-you-mean on unknown ids)."""
    try:
        return _FAMILIES[family_id]
    except KeyError:
        raise unknown_choice("scenario family", family_id, _FAMILIES) from None


def iter_families() -> List[ScenarioFamily]:
    """Registered families in id order."""
    return [_FAMILIES[key] for key in sorted(_FAMILIES)]


def family_ids() -> List[str]:
    """The sorted registered family ids."""
    return sorted(_FAMILIES)


def materialize(scenario_id: str) -> Scenario:
    """Rebuild a family instance from its id (``fam:key=value,...``).

    The path behind the registry's lookup fallback: any in-grid id
    resolves even when the sampling budget kept it out of the registered
    slice.  The rebuilt instance is registered (``replace=True``) so
    repeated lookups are cheap and ``iter_scenarios`` sees it too.
    """
    family_id, separator, assignment = scenario_id.partition(":")
    if not separator:
        raise UsageError(
            f"{scenario_id!r} is not a family instance id "
            "(expected family:key=value,...)"
        )
    family = get_family(family_id)
    params: Dict[str, Any] = {}
    for pair in assignment.split(",") if assignment else []:
        key, eq, raw = pair.partition("=")
        if not eq or not key:
            raise UsageError(
                f"malformed family parameter {pair!r} in {scenario_id!r} "
                "(expected key=value)"
            )
        if key in params:
            raise UsageError(
                f"family parameter {key!r} given twice in {scenario_id!r}"
            )
        params[key] = raw
    declared = {name: values for name, values in family.parameters}
    for key in params:
        if key not in declared:
            raise unknown_choice(
                f"{family_id!r} family parameter", key, declared
            )
    resolved: Dict[str, Any] = {}
    for name, values in family.parameters:
        if name not in params:
            raise UsageError(
                f"{scenario_id!r} is missing the {name!r} parameter of "
                f"family {family_id!r} (declared: "
                f"{', '.join(n for n, _ in family.parameters)})"
            )
        by_text = {str(value): value for value in values}
        if params[name] not in by_text:
            raise unknown_choice(
                f"{family_id!r} family value for {name!r}",
                params[name],
                by_text,
            )
        resolved[name] = by_text[params[name]]
    scenario = family.build(resolved)
    if scenario is None:
        raise UsageError(
            f"family {family_id!r} has no instance for {scenario_id!r} "
            "(the combination is declared but not buildable)"
        )
    return register(scenario, replace=True)


def register_all(budget: Optional[int] = None) -> int:
    """Expand every family into the scenario registry (import hook).

    Families expand in sorted-id order and each grid in declared
    parameter order, so registration is deterministic.  Returns the
    number of registered instances.  ``replace=True`` keeps re-imports
    (and materialize-then-expand races) idempotent.
    """
    count = 0
    for family in iter_families():
        for scenario in family.expand(budget):
            register(scenario, replace=True)
            count += 1
    return count


# ---------------------------------------------------------------------------
# Shared plan generators
# ---------------------------------------------------------------------------


def _variables(count: int) -> Tuple[int, ...]:
    return tuple(range(count))


def _tm_plan(shape: str, n: int, variables: Tuple[int, ...]) -> InvocationPlan:
    """One static TM plan per (shape, n, variables) point."""
    first, last = variables[0], variables[-1]
    if shape == "rw":
        plan: InvocationPlan = {
            0: [("start", ()), ("write", (first, 1)), ("tryC", ())]
        }
        for pid in range(1, n):
            plan[pid] = [("start", ()), ("read", (first,)), ("tryC", ())]
        return plan
    if shape == "ww":
        return {
            pid: [
                ("start", ()),
                ("write", (variables[pid % len(variables)], pid + 1)),
                ("tryC", ()),
            ]
            for pid in range(n)
        }
    if shape == "rmw":
        return {
            pid: [
                ("start", ()),
                ("read", (variables[pid % len(variables)],)),
                ("write", (variables[(pid + 1) % len(variables)], pid + 1)),
                ("tryC", ()),
            ]
            for pid in range(n)
        }
    if shape == "ro":
        reads = [("read", (variable,)) for variable in variables]
        return {pid: [("start", ())] + reads + [("tryC", ())] for pid in range(n)}
    if shape == "deep":
        plan = {
            0: [
                ("start", ()),
                ("write", (first, 1)),
                ("tryC", ()),
                ("start", ()),
                ("read", (last,)),
                ("tryC", ()),
            ]
        }
        for pid in range(1, n):
            plan[pid] = [("start", ()), ("read", (first,)), ("tryC", ())]
        return plan
    raise UsageError(f"unknown TM plan shape {shape!r}")


def _propose_plan(pattern: str, n: int) -> InvocationPlan:
    """Consensus proposal plans: who proposes which value."""
    proposals = {
        "asc": lambda pid: pid,
        "desc": lambda pid: n - 1 - pid,
        "same": lambda pid: 1,
        "alt": lambda pid: pid % 2,
        "ones": lambda pid: 0 if pid == 0 else 1,
    }
    try:
        proposal = proposals[pattern]
    except KeyError:
        raise unknown_choice("proposal pattern", pattern, proposals) from None
    return {pid: [("propose", (proposal(pid),))] for pid in range(n)}


def _lock_plan(n: int, rounds: int) -> InvocationPlan:
    return {
        pid: [("acquire", ()), ("release", ())] * rounds for pid in range(n)
    }


# ---------------------------------------------------------------------------
# The shipped families
# ---------------------------------------------------------------------------

_TM_IMPLS: Dict[str, Callable[[int, Tuple[int, ...]], Any]] = {
    "agp": lambda n, vs: AgpTransactionalMemory(n, variables=vs),
    "global-lock": lambda n, vs: GlobalLockTransactionalMemory(n, variables=vs),
    "i12": lambda n, vs: I12TransactionalMemory(n, variables=vs),
    "intent": lambda n, vs: IntentTransactionalMemory(n, variables=vs),
    "norec": lambda n, vs: NorecTransactionalMemory(n, variables=vs),
}


def _family_tags(kind: str, family_id: str, violating: bool, exhaustible: bool):
    tags = (kind,)
    tags += (TAG_VIOLATING,) if violating else (TAG_SATISFYING,)
    tags += (TAG_FAMILY, f"family:{family_id}")
    if exhaustible:
        tags += (TAG_EXHAUSTIBLE,)
    return tags


def _build_tm_grid(impl: str, n: int, plan: str, vars: int) -> Scenario:
    variables = _variables(vars)
    factory = _TM_IMPLS[impl]
    # Measured against the default Bounds: every implementation finishes
    # the two-process rw/ww grids in seconds, while rmw/ro/deep blow the
    # configuration budget for at least one implementation.
    exhaustible = n == 2 and plan in ("rw", "ww")
    family = _FAMILIES["tm-grid"]
    return Scenario(
        scenario_id=family.instance_id(
            {"impl": impl, "n": n, "plan": plan, "vars": vars}
        ),
        factory=lambda: factory(n, variables),
        plan=_tm_plan(plan, n, variables),
        safety_factory=OpacityChecker,
        tags=_family_tags("tm", "tm-grid", False, exhaustible),
        notes=f"generated: {impl} TM, {n} processes, {plan} plan, "
        f"{vars} variable(s)",
    )


def _build_consensus_grid(impl: str, n: int, proposals: str) -> Optional[Scenario]:
    if impl == "tas" and n != 2:
        return None  # test-and-set consensus number is exactly 2
    factories = {
        "cas": CasConsensus,
        "commit-adopt": CommitAdoptConsensus,
        "silent": SilentConsensus,
        "tas": TasConsensus,
    }
    factory = factories[impl]
    family = _FAMILIES["consensus-grid"]
    return Scenario(
        scenario_id=family.instance_id(
            {"impl": impl, "n": n, "proposals": proposals}
        ),
        factory=lambda: factory(n),
        plan=_propose_plan(proposals, n),
        safety_factory=AgreementValidity,
        # Commit-adopt's round structure and the silent implementation's
        # three-process spin space both exceed the default configuration
        # budget; CAS consensus stays cheap at every grid point.
        tags=_family_tags(
            "consensus",
            "consensus-grid",
            False,
            impl != "commit-adopt" and (n == 2 or impl == "cas"),
        ),
        notes=f"generated: {impl} consensus, {n} processes, "
        f"{proposals} proposals",
    )


def _build_faulty_consensus(impl: str, n: int, proposals: str) -> Scenario:
    factories = {"inventing": InventingConsensus, "stubborn": StubbornConsensus}
    factory = factories[impl]
    family = _FAMILIES["faulty-consensus"]
    return Scenario(
        scenario_id=family.instance_id(
            {"impl": impl, "n": n, "proposals": proposals}
        ),
        factory=lambda: factory(n),
        plan=_propose_plan(proposals, n),
        safety_factory=AgreementValidity,
        tags=_family_tags("consensus", "faulty-consensus", True, True),
        expect_violation=True,
        notes=f"generated negative fixture: {impl} consensus, {n} "
        f"processes, {proposals} proposals",
    )


def _build_lock_mutex(impl: str, n: int, rounds: int) -> Scenario:
    factories = {"bakery": BakeryLock, "mcs": McsLock, "tas-lock": TasLock}
    factory = factories[impl]
    family = _FAMILIES["lock-mutex"]
    return Scenario(
        scenario_id=family.instance_id({"impl": impl, "n": n, "rounds": rounds}),
        factory=lambda: factory(n),
        plan=_lock_plan(n, rounds),
        safety_factory=MutualExclusionChecker,
        # Only the single-round two-process instances exhaust within the
        # default configuration budget (bakery/MCS spin states blow up
        # from rounds=2); the rest are fuzz-first.
        tags=_family_tags("lock", "lock-mutex", False, n == 2 and rounds == 1),
        notes=f"generated: {impl} under mutual exclusion, {n} processes, "
        f"{rounds} acquire/release round(s)",
    )


def _build_crash_tm(impl: str, vars: int, crash: str) -> Scenario:
    variables = _variables(vars)
    factory = _TM_IMPLS[impl]
    family = _FAMILIES["crash-tm"]
    return Scenario(
        scenario_id=family.instance_id(
            {"impl": impl, "vars": vars, "crash": crash}
        ),
        factory=lambda: factory(2, variables),
        plan=_tm_plan("rw", 2, variables),
        safety_factory=OpacityChecker,
        crash=crash,
        # No exhaustible tag: the crash model is the point, and the
        # exhaustive backend enumerates the crash-free space only.
        tags=_family_tags("tm", "crash-tm", False, False) + ("crash",),
        notes=f"generated: {impl} TM under injected crash {crash} "
        "(fuzz backend; opacity must survive the crash)",
    )


register_family(
    ScenarioFamily(
        family_id="tm-grid",
        description="every TM implementation x processes x plan shape x "
        "variable count, judged by opacity",
        parameters=(
            ("impl", tuple(sorted(_TM_IMPLS))),
            ("n", (2, 3)),
            ("plan", ("rw", "ww", "rmw", "ro", "deep")),
            ("vars", (1, 2)),
        ),
        builder=_build_tm_grid,
    )
)

register_family(
    ScenarioFamily(
        family_id="consensus-grid",
        description="correct consensus implementations x processes x "
        "proposal pattern, judged by agreement & validity",
        parameters=(
            ("impl", ("cas", "commit-adopt", "silent", "tas")),
            ("n", (2, 3)),
            ("proposals", ("alt", "asc", "desc", "ones", "same")),
        ),
        builder=_build_consensus_grid,
    )
)

register_family(
    ScenarioFamily(
        family_id="faulty-consensus",
        description="planted agreement/validity violations x processes x "
        "proposal pattern (negative fixtures for oracle sensitivity)",
        parameters=(
            ("impl", ("inventing", "stubborn")),
            ("n", (2, 3)),
            # Distinct-proposal patterns only: the stubborn implementation
            # violates agreement only when proposals actually differ.
            ("proposals", ("alt", "asc", "desc", "ones")),
        ),
        builder=_build_faulty_consensus,
    )
)

register_family(
    ScenarioFamily(
        family_id="lock-mutex",
        description="lock implementations x processes x acquire/release "
        "rounds, judged by mutual exclusion",
        parameters=(
            ("impl", ("bakery", "mcs", "tas-lock")),
            ("n", (2, 3)),
            ("rounds", (1, 2, 3)),
        ),
        builder=_build_lock_mutex,
    )
)

register_family(
    ScenarioFamily(
        family_id="crash-tm",
        description="TM implementations x variable count x injected crash "
        "pattern (fuzz backend: opacity under crashes)",
        parameters=(
            ("impl", tuple(sorted(_TM_IMPLS))),
            ("vars", (1, 2)),
            ("crash", ("p0@3", "p0@7", "p1@5", "p0@4+p1@9")),
        ),
        builder=_build_crash_tm,
    )
)

#: Number of instances registered at import (under the current budget).
REGISTERED_INSTANCES = register_all()
