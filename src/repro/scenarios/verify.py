"""``verify()``: one facade, every backend, one verdict shape.

``verify(scenario, backend="exhaustive"|"fuzz"|"liveness", **overrides)``
resolves a scenario (by id or object), runs the requested backend with
the scenario's bounds (overridable per call), and normalizes the
outcome to a :class:`~repro.scenarios.scenario.Verdict`:

* ``exhaustive`` — enumerate every interleaving of the plan through the
  snapshot engine (:func:`repro.sim.explore.check_all_histories`).  A
  completed enumeration is a depth-bounded *proof* (``certainty:
  "proof"``); blowing the configuration budget is reported as the
  ``budget-exhausted`` outcome instead of an exception.
* ``fuzz`` — sample seeded random interleavings
  (:func:`repro.fuzz.driver.fuzz_workload`); a clean run is *horizon*
  evidence only (``certainty: "horizon"``).
* ``liveness`` — play the scenario's adversary strategy (or branch
  exhaustively over the scheduler choices of its plan) through the
  snapshot engine (:class:`repro.sim.liveness_search.LivenessSearch`)
  and judge the scenario's liveness property on every maximal run.  A
  fair cycle in which the victims collect no good response is an exact
  starvation *proof* (``outcome: "violated"``, ``certainty: "proof"``)
  packaged as a replayable
  :class:`~repro.fuzz.trace.LassoTrace`; horizon-truncated runs yield
  ``certainty: "horizon"`` evidence either way.

A safety violation is ddmin-shrunk (unless ``shrink=False``),
re-executed on a fresh plain runtime independent of the snapshot
machinery, and attached as a replayable
:class:`~repro.fuzz.trace.ReplayTrace` — the same artifact
``python -m repro fuzz --replay`` consumes.  A liveness proof is
cycle/stem-shrunk (:func:`repro.sim.lasso_shrink.shrink_lasso`) and
replay-verified the same way.  Either artifact failing to re-violate on
the independent replay is surfaced loudly (``shrink_unfaithful`` /
``lasso_shrink_unfaithful`` stats), never silently.

Stats key schema
----------------
Every backend reports a consistent ``Verdict.stats`` schema instead of
hand-rolled timings: ``elapsed`` is always the ``elapsed_stat`` of the
one obs span wrapping the backend's search (``verify/exhaustive``,
``verify/fuzz``, ``verify/liveness`` — seconds rounded to 4 digits,
present on success *and* budget paths); evidence counts keep their
backend-specific names (``runs_checked`` for exhaustive enumeration,
``interleavings``/``interleavings_per_second`` for fuzz sampling,
``runs``/``certainty`` for liveness classification); shrink fidelity
flags are ``shrink_unfaithful`` / ``lasso_shrink_unfaithful``.  When an
obs recorder is active the per-call ``repro-metrics`` document rides
along as ``stats["metrics"]`` (in memory only — see
:meth:`~repro.scenarios.scenario.Verdict.to_document`).

Unknown override keys and overrides the chosen backend cannot honour
raise :class:`~repro.util.errors.UsageError` (exit code 2 at the CLI)
rather than being silently dropped — except under ``backend="auto"``,
where the resolved backend drops the *other* backend's exclusive knobs
(:data:`FUZZ_ONLY_OVERRIDES` / :data:`EXHAUSTIVE_ONLY_OVERRIDES`) so
one override set can serve a mixed-backend sweep, at the CLI and at the
library level alike.
"""

from __future__ import annotations

import os

from typing import Any, Dict, Optional, Tuple, Union

from repro.engine.dpor import DporParityError, check_reduction
from repro.engine.frontier import SearchBudgetExceeded
from repro.objects.opacity import (
    SearchBudgetExceeded as CheckerBudgetExceeded,
)
from repro.fuzz.driver import fuzz_workload
from repro.fuzz.shrink import shrink_schedule
from repro.obs.metrics import metrics_document
from repro.obs.recorder import (
    active as _obs_active,
    recording as _obs_recording,
    span as _obs_span,
)
from repro.fuzz.trace import (
    LassoTrace,
    ReplayTrace,
    decisions_to_labels,
    replay_schedule,
)
from repro.scenarios.registry import get_scenario
from repro.scenarios.scenario import Scenario, Verdict
from repro.sim.explore import check_all_histories
from repro.sim.lasso_shrink import certifies_starvation, shrink_lasso
from repro.sim.liveness_search import (
    AdversaryPolicy,
    LivenessSearch,
    PlanPolicy,
)
from repro.util.errors import UsageError, unknown_choice

#: The verification backends the facade dispatches on.
BACKENDS = ("exhaustive", "fuzz", "liveness")

#: Overrides each backend honours (everything else is an error).
_EXHAUSTIVE_OVERRIDES = (
    "max_depth",
    "max_configurations",
    "mode",
    "processes",
    "shrink",
    "crash",  # accepted only as none: the enumerated space is crash-free
    "reduction",  # "none" | "dpor" | "dpor-parity" (repro.engine.dpor)
)
_FUZZ_OVERRIDES = (
    "seed",
    "iterations",
    "max_depth",
    "crash",
    "shrink",
    "crash_probability",
    "corpus_size",
    "min_corpus_depth",
    "explore_every",
)
_LIVENESS_OVERRIDES = (
    "max_depth",  # the step horizon (default: Bounds.horizon)
    "max_configurations",
    "shrink",  # cycle/stem minimization of the lasso certificate
    "lasso_stride",
    "reduction",  # "none" | "dpor" | "dpor-parity" (repro.engine.dpor)
)

#: Sampling knobs only the fuzz backend understands.  Auto-mode callers
#: (the CLI, the ``verify`` experiment) drop these for scenarios that
#: resolve to the exhaustive backend instead of erroring — ``crash`` is
#: deliberately NOT here: a crash model changes the verified space, so
#: an exhaustive cell must fail loudly rather than silently run
#: crash-free.
FUZZ_ONLY_OVERRIDES = tuple(
    key for key in _FUZZ_OVERRIDES if key not in _EXHAUSTIVE_OVERRIDES and key != "crash"
)

#: The mirror image: budget knobs only the exhaustive backend
#: understands, dropped by auto-mode callers for fuzz-resolved
#: scenarios so one override set can serve a mixed-backend list.
EXHAUSTIVE_ONLY_OVERRIDES = tuple(
    key for key in _EXHAUSTIVE_OVERRIDES if key not in _FUZZ_OVERRIDES
)

#: The budget exceptions the exhaustive backend folds into the
#: ``budget-exhausted`` outcome: the engine's configuration budget and
#: the opacity checker's per-history serialization-search budget (two
#: distinct classes sharing a name).
_BUDGET_ERRORS = (SearchBudgetExceeded, CheckerBudgetExceeded)


def resolve_backend(scenario: Union[str, Scenario], backend: str) -> str:
    """Resolve ``"auto"`` to a concrete backend: ``exhaustive`` for
    scenarios tagged ``small`` (a full proof is affordable there),
    ``fuzz`` otherwise.  Concrete backends pass through unchanged."""
    if backend == "auto":
        return "exhaustive" if get_scenario(scenario).small else "fuzz"
    return backend


def _expected(scenario: Scenario, outcome: str, backend: str = "exhaustive") -> bool:
    """A budget-exhausted run is never the expected verdict; otherwise
    the outcome must match the scenario's declared expectation for the
    backend's property kind (safety vs liveness)."""
    if outcome == "budget-exhausted":
        return False
    expectation = (
        scenario.expect_liveness_violation
        if backend == "liveness"
        else scenario.expect_violation
    )
    return (outcome == "violated") == expectation


def _check_overrides(backend: str, overrides: Dict[str, Any], known) -> None:
    for key in overrides:
        if key not in known:
            raise unknown_choice(f"{backend!r}-backend verify override", key, known)


def _counterexample(
    scenario: Scenario,
    schedule: Tuple,
    reason: Optional[str],
    seed: Optional[int],
    shrink: bool,
) -> Tuple[ReplayTrace, Dict[str, Any]]:
    """Minimize (optionally), replay-verify, and package a violation.

    ``reason=None`` derives the recorded failure reason from the replay
    verdict (the exhaustive backend's path — the enumeration does not
    keep the failing verdict, and re-checking a deep history just for
    its reason would repeat the most expensive check of the run).

    Shrinking can lose the violation only when the safety checker is
    non-monotone across calls (stateful, or not prefix-closed over the
    replayed candidates) — then the shrunk schedule, or even the
    original, fails to re-violate on a fresh replay.  That is never
    silent: the unshrunk schedule is replayed as a fallback for the
    recorded reason, and a ``shrink_unfaithful`` stat flags the witness
    as suspect alongside ``counterexample_replays``.
    """
    original = tuple(schedule)
    stats: Dict[str, Any] = {"counterexample_length": len(schedule)}
    replay = None
    try:
        if shrink:
            try:
                with _obs_span("shrink/schedule"):
                    shrunk = shrink_schedule(
                        scenario.factory, scenario.plan, schedule,
                        scenario.safety_factory(),
                    )
                schedule = shrunk.schedule
                stats["shrunk_from"] = shrunk.original_length
                stats["counterexample_length"] = len(schedule)
            except UsageError as exc:
                # The enumerated witness itself does not replay to a
                # violation (non-monotone/stateful checker): keep it,
                # but loudly.
                stats["shrink_unfaithful"] = True
                stats["shrink_error"] = str(exc)
        replay = replay_schedule(
            scenario.factory, scenario.plan, schedule, scenario.safety_factory()
        )
        stats["counterexample_replays"] = replay.violates
        if not replay.violates and tuple(schedule) != original:
            # The shrunk schedule lost the violation: fall back to the
            # unshrunk witness for the reason (and, if it still
            # violates, for the recorded schedule too).
            stats["shrink_unfaithful"] = True
            fallback = replay_schedule(
                scenario.factory, scenario.plan, original,
                scenario.safety_factory(),
            )
            stats["unshrunk_replays"] = fallback.violates
            if fallback.violates:
                schedule = original
                replay = fallback
                stats["counterexample_replays"] = True
                stats["counterexample_length"] = len(original)
    except _BUDGET_ERRORS as exc:
        # The violation itself stands (the real checker judged a real
        # history); only minimization/replay of *candidate* schedules
        # blew the checker's search budget.  Keep the best witness we
        # have and record why the follow-up checks are missing.
        stats["witness_check_error"] = str(exc)
    if reason is None:
        reason = (
            replay.verdict.reason or ""
            if replay is not None
            and replay.verdict is not None
            and replay.violates
            else ""
        )
    trace = ReplayTrace(
        plan=scenario.plan,
        schedule=tuple(schedule),
        workload=scenario.scenario_id,
        implementation=getattr(scenario.factory(), "name", None),
        safety=getattr(scenario.safety_factory(), "name", None),
        holds=False,
        reason=reason,
        seed=seed,
    )
    return trace, stats


def _verify_exhaustive(scenario: Scenario, overrides: Dict[str, Any]) -> Verdict:
    _check_overrides("exhaustive", overrides, _EXHAUSTIVE_OVERRIDES)
    crash = overrides.get("crash")
    if crash not in (None, "", "none"):
        raise UsageError(
            f"the exhaustive backend enumerates the crash-free schedule "
            f"space; a crash model (got {crash!r}) only applies to "
            "backend='fuzz'"
        )
    bounds = scenario.bounds.override(
        max_depth=overrides.get("max_depth"),
        max_configurations=overrides.get("max_configurations"),
    )
    mode = overrides.get("mode", "snapshot")
    reduction = check_reduction(str(overrides.get("reduction", "none")))
    stats: Dict[str, Any] = {
        "max_depth": bounds.max_depth,
        "max_configurations": bounds.max_configurations,
        "mode": mode,
    }
    if reduction != "none":
        stats["reduction"] = reduction
    # Every backend's ``elapsed`` stat is one obs span around the search
    # itself (witness minimization excluded): the span's rounded reading
    # is the one normalized encoding, and the same timer feeds the
    # metrics document whenever a recorder is active.
    error: Optional[Exception] = None
    report = None
    with _obs_span("verify/exhaustive") as span:
        try:
            report = check_all_histories(
                scenario.factory,
                scenario.plan,
                scenario.safety_factory(),
                max_depth=bounds.max_depth,
                max_configurations=bounds.max_configurations,
                mode=mode,
                processes=int(overrides.get("processes", 0)),
                reduction=reduction,
            )
        except _BUDGET_ERRORS as exc:
            error = exc
    stats["elapsed"] = span.elapsed_stat
    if report is None:
        stats["error"] = str(error)
        return Verdict(
            scenario_id=scenario.scenario_id,
            backend="exhaustive",
            outcome="budget-exhausted",
            expected=_expected(scenario, "budget-exhausted"),
            stats=stats,
        )
    stats["runs_checked"] = report.runs_checked
    if report.runs_checked_unreduced is not None:
        stats["runs_checked_unreduced"] = report.runs_checked_unreduced
    if report.counterexample is None:
        stats["certainty"] = "proof"
        return Verdict(
            scenario_id=scenario.scenario_id,
            backend="exhaustive",
            outcome="holds",
            expected=_expected(scenario, "holds"),
            stats=stats,
        )
    run = report.counterexample
    trace, witness_stats = _counterexample(
        scenario,
        run.schedule,
        reason=None,  # derived from the replay verdict
        seed=None,
        shrink=bool(overrides.get("shrink", True)),
    )
    stats.update(witness_stats)
    stats["reason"] = trace.reason
    return Verdict(
        scenario_id=scenario.scenario_id,
        backend="exhaustive",
        outcome="violated",
        expected=_expected(scenario, "violated"),
        stats=stats,
        counterexample=trace,
    )


def _verify_fuzz(scenario: Scenario, overrides: Dict[str, Any]) -> Verdict:
    _check_overrides("fuzz", overrides, _FUZZ_OVERRIDES)
    bounds = scenario.bounds.override(
        max_depth=overrides.get("max_depth"),
        iterations=overrides.get("iterations"),
    )
    seed = overrides.get("seed", 0)
    crash = overrides.get("crash", scenario.crash)
    options = {
        key: overrides[key]
        for key in (
            "crash_probability",
            "corpus_size",
            "min_corpus_depth",
            "explore_every",
        )
        if key in overrides
    }
    error: Optional[Exception] = None
    report = None
    with _obs_span("verify/fuzz") as span:
        try:
            report = fuzz_workload(
                scenario,
                seed=seed,
                iterations=bounds.iterations,
                max_depth=bounds.max_depth,
                crash=crash,
                **options,
            )
        except CheckerBudgetExceeded as exc:
            # The safety checker's own search budget (e.g. the opacity
            # serialization search) folds into the same explicit outcome.
            error = exc
    if report is None:
        return Verdict(
            scenario_id=scenario.scenario_id,
            backend="fuzz",
            outcome="budget-exhausted",
            expected=_expected(scenario, "budget-exhausted"),
            stats={
                "seed": seed,
                "iterations": bounds.iterations,
                "max_depth": bounds.max_depth,
                "elapsed": span.elapsed_stat,
                "error": str(error),
            },
        )
    stats: Dict[str, Any] = {
        "seed": report.seed,
        "iterations": report.iterations,
        "max_depth": bounds.max_depth,
        "interleavings": report.interleavings,
        "coverage": report.coverage,
        "corpus": report.corpus,
        "histories_checked": report.histories_checked,
        "elapsed": span.elapsed_stat,
        "interleavings_per_second": round(report.interleavings_per_second, 1),
    }
    if crash:
        stats["crash"] = crash
    if report.violation is None:
        stats["certainty"] = "horizon"
        return Verdict(
            scenario_id=scenario.scenario_id,
            backend="fuzz",
            outcome="holds",
            expected=_expected(scenario, "holds"),
            stats=stats,
        )
    stats["violation_iteration"] = report.violation.iteration
    stats["reason"] = report.violation.reason
    trace, witness_stats = _counterexample(
        scenario,
        report.violation.schedule,
        report.violation.reason,
        seed=report.seed,
        shrink=bool(overrides.get("shrink", True)),
    )
    stats.update(witness_stats)
    return Verdict(
        scenario_id=scenario.scenario_id,
        backend="fuzz",
        outcome="violated",
        expected=_expected(scenario, "violated"),
        stats=stats,
        counterexample=trace,
    )


# ---------------------------------------------------------------------------
# The liveness backend
# ---------------------------------------------------------------------------

#: Preference order when several proof-certainty violations compete for
#: the packaged certificate: exact lassos are unconditionally sound,
#: abstract ones conditionally (bisimulation-quotient contract), finite
#: fair executions carry no cycle at all.
_CERTIFICATE_RANK = {"exact": 0, "abstract": 1, "finite": 2}


def _lasso_artifact(
    scenario: Scenario,
    liveness,
    progress_mode,
    run,
    starving,
    reason: str,
    shrink: bool,
) -> Tuple[LassoTrace, Dict[str, Any]]:
    """Split, minimize (optionally), replay-verify, and package a
    proof-certainty starvation witness as a :class:`LassoTrace`."""
    certificate = run.result.lasso
    if certificate is not None:
        stem = tuple(run.decisions[: certificate.cycle_start])
        cycle = tuple(
            run.decisions[certificate.cycle_start : certificate.cycle_end]
        )
        kind = certificate.fingerprint_kind
    else:  # a complete fair finite execution that starves the victims
        stem = tuple(run.decisions)
        cycle = ()
        kind = "finite"
    stats: Dict[str, Any] = {"lasso_kind": kind}
    if shrink:
        with _obs_span("shrink/lasso"):
            shrunk = shrink_lasso(
                scenario.factory, stem, cycle, kind, liveness, progress_mode,
                starving=starving,
            )
        if shrunk.faithful:
            if (len(shrunk.stem), len(shrunk.cycle)) != (len(stem), len(cycle)):
                stats["lasso_shrunk_from"] = [len(stem), len(cycle)]
            stem, cycle = shrunk.stem, shrunk.cycle
        else:
            stats["lasso_shrink_unfaithful"] = True
        # faithful == the kept stem/cycle passed certifies_starvation
        # during shrinking (replays are deterministic) — re-running the
        # same replay here would be pure duplication.
        replays = shrunk.faithful
    else:
        replays = certifies_starvation(
            scenario.factory, stem, cycle, kind, liveness, progress_mode,
            starving,
        )
    stats["lasso_replays"] = replays
    stats["lasso_stem"] = len(stem)
    stats["lasso_cycle"] = len(cycle)
    trace = LassoTrace(
        stem=tuple(tuple(label) for label in decisions_to_labels(stem)),
        cycle=tuple(tuple(label) for label in decisions_to_labels(cycle)),
        fingerprint_kind=kind,
        scenario=scenario.scenario_id,
        implementation=getattr(scenario.factory(), "name", None),
        liveness=getattr(liveness, "name", None),
        starving=tuple(starving),
        reason=reason,
    )
    return trace, stats


def _verify_liveness(scenario: Scenario, overrides: Dict[str, Any]) -> Verdict:
    from repro.core.properties import Certainty

    _check_overrides("liveness", overrides, _LIVENESS_OVERRIDES)
    if scenario.liveness_factory is None:
        raise UsageError(
            f"scenario {scenario.scenario_id!r} declares no liveness "
            "property; backend='liveness' needs Scenario.liveness_factory "
            "(and optionally an adversary_factory)"
        )
    reduction = check_reduction(str(overrides.get("reduction", "none")))
    if reduction == "dpor-parity":
        unreduced = _verify_liveness(
            scenario, {**overrides, "reduction": "none"}
        )
        reduced = _verify_liveness(scenario, {**overrides, "reduction": "dpor"})
        if unreduced.outcome != reduced.outcome:
            raise DporParityError(
                f"liveness verdict divergence on {scenario.scenario_id}: "
                f"unreduced {unreduced.outcome} "
                f"({unreduced.stats.get('runs')} runs) vs dpor "
                f"{reduced.outcome} ({reduced.stats.get('runs')} runs)"
            )
        reduced.stats["reduction"] = "dpor-parity"
        reduced.stats["runs_unreduced"] = unreduced.stats.get("runs")
        reduced.stats["configurations_unreduced"] = unreduced.stats.get(
            "configurations"
        )
        return reduced
    liveness = scenario.liveness_factory()
    progress_mode = scenario.factory().object_type.progress_mode
    horizon = int(overrides.get("max_depth", scenario.bounds.horizon))
    budget = int(
        overrides.get("max_configurations", scenario.bounds.max_configurations)
    )
    policy = (
        AdversaryPolicy(scenario.adversary_factory())
        if scenario.adversary_factory is not None
        else PlanPolicy(scenario.plan)
    )
    search = LivenessSearch(
        scenario.factory,
        policy,
        max_depth=horizon,
        max_configurations=budget,
        lasso_stride=int(overrides.get("lasso_stride", 1)),
        reduction=reduction,
    )
    stats: Dict[str, Any] = {
        "liveness": getattr(liveness, "name", "?"),
        "policy": policy.name,
        "max_depth": horizon,
        "max_configurations": budget,
    }
    if reduction != "none":
        stats["reduction"] = reduction
    counts = {"lasso": 0, "finite": 0, "horizon": 0}
    runs = escaped = 0
    all_proved = True
    best_proof = None  # (rank, run, starving, reason)
    best_horizon = None  # (run, starving, reason)
    error: Optional[Exception] = None
    with _obs_span("verify/liveness") as span:
        try:
            for run in search.runs():
                runs += 1
                counts[run.kind] += 1
                if run.escaped:
                    escaped += 1
                summary = run.result.summary(progress_mode)
                verdict = liveness.evaluate(summary)
                if verdict.holds:
                    if verdict.certainty is not Certainty.PROVED:
                        all_proved = False
                    continue
                starving = sorted(summary.correct - summary.progressors)
                if verdict.certainty is Certainty.PROVED:
                    kind = (
                        run.result.lasso.fingerprint_kind
                        if run.result.lasso is not None
                        else "finite"
                    )
                    rank = _CERTIFICATE_RANK.get(kind, len(_CERTIFICATE_RANK))
                    if best_proof is None or rank < best_proof[0]:
                        best_proof = (rank, run, starving, verdict.reason)
                elif best_horizon is None:
                    best_horizon = (run, starving, verdict.reason)
        except SearchBudgetExceeded as exc:
            error = exc
    stats["elapsed"] = span.elapsed_stat
    if error is not None:
        stats["error"] = str(error)
        stats["runs"] = runs
        return Verdict(
            scenario_id=scenario.scenario_id,
            backend="liveness",
            outcome="budget-exhausted",
            expected=_expected(scenario, "budget-exhausted", "liveness"),
            stats=stats,
        )
    stats["runs"] = runs
    stats["lassos"] = counts["lasso"]
    stats["finite_runs"] = counts["finite"]
    stats["horizon_runs"] = counts["horizon"]
    stats["configurations"] = search.configurations
    if search.merges:
        stats["merged_schedules"] = search.merges
    if escaped:
        stats["escaped"] = escaped
    if best_proof is not None:
        _, run, starving, reason = best_proof
        stats["certainty"] = "proof"
        stats["starving"] = starving
        stats["reason"] = reason
        trace, witness_stats = _lasso_artifact(
            scenario,
            liveness,
            progress_mode,
            run,
            starving,
            reason,
            shrink=bool(overrides.get("shrink", True)),
        )
        stats.update(witness_stats)
        return Verdict(
            scenario_id=scenario.scenario_id,
            backend="liveness",
            outcome="violated",
            expected=_expected(scenario, "violated", "liveness"),
            stats=stats,
            lasso=trace,
        )
    if best_horizon is not None:
        run, starving, reason = best_horizon
        stats["certainty"] = "horizon"
        stats["starving"] = starving
        stats["reason"] = reason
        stats["horizon_steps"] = run.result.total_steps
        return Verdict(
            scenario_id=scenario.scenario_id,
            backend="liveness",
            outcome="violated",
            expected=_expected(scenario, "violated", "liveness"),
            stats=stats,
        )
    stats["certainty"] = "proof" if all_proved and runs else "horizon"
    return Verdict(
        scenario_id=scenario.scenario_id,
        backend="liveness",
        outcome="holds",
        expected=_expected(scenario, "holds", "liveness"),
        stats=stats,
    )


def verify(
    scenario: Union[str, Scenario],
    backend: str = "exhaustive",
    cache: Optional[str] = None,
    cache_path: Optional[str] = None,
    **overrides: Any,
) -> Verdict:
    """Verify one scenario under one backend; see the module docstring.

    ``backend="auto"`` picks ``exhaustive`` for scenarios tagged
    ``small`` (a full proof is affordable there) and ``fuzz``
    otherwise — the CLI default.  Auto mode may resolve the scenarios
    of one mixed list to different backends, so it drops the overrides
    exclusive to the backend it did *not* pick
    (:data:`FUZZ_ONLY_OVERRIDES` / :data:`EXHAUSTIVE_ONLY_OVERRIDES`)
    instead of erroring; an explicit backend stays strict.

    ``cache`` selects the content-addressed verdict cache mode
    (:mod:`repro.service`): ``"off"`` (the default — this code path is
    byte-identical to the pre-cache facade), ``"read"`` (hits are
    served from the cache, misses are computed but not stored), or
    ``"readwrite"`` (misses are stored for the next caller).  ``None``
    defers to the ``REPRO_VERIFY_CACHE`` environment variable (how the
    campaign worker pool shares one mode), falling back to ``"off"``.
    ``cache_path`` names the SQLite cache file (default:
    ``REPRO_CACHE_DB`` or ``verdicts.db``).  A cache hit returns
    :meth:`Verdict.from_document` of the stored document — serialized
    byte-identically to the cold verdict — flagged with the in-memory
    markers ``verdict.cached=True`` / ``verdict.cache_key``; a miss
    under any mode also carries its ``cache_key``.

    When an obs recorder is active (``repro.obs.recording``), the call
    runs under a nested per-verify recorder and attaches its
    ``repro-metrics`` v1 document as ``verdict.stats["metrics"]`` (also
    available as ``verdict.metrics``).  The sub-document lives on the
    in-memory verdict only: :meth:`Verdict.to_document` excludes it, so
    serialized verdicts are byte-identical with metrics on or off, and
    with no recorder installed the stats gain no keys at all.
    """
    scenario = get_scenario(scenario)
    resolved = resolve_backend(scenario, backend)
    if resolved not in BACKENDS:
        raise unknown_choice("verify backend", resolved, BACKENDS + ("auto",))
    if backend == "auto":
        dropped = (
            FUZZ_ONLY_OVERRIDES
            if resolved == "exhaustive"
            else EXHAUSTIVE_ONLY_OVERRIDES
        )
        overrides = {
            key: value for key, value in overrides.items() if key not in dropped
        }

    def dispatch() -> Verdict:
        if resolved == "exhaustive":
            return _verify_exhaustive(scenario, overrides)
        if resolved == "liveness":
            return _verify_liveness(scenario, overrides)
        return _verify_fuzz(scenario, overrides)

    def observed() -> Verdict:
        parent = _obs_active()
        if parent is None:
            return dispatch()
        with _obs_recording(
            label=f"verify:{scenario.scenario_id}", trace=parent.trace
        ) as recorder:
            verdict = dispatch()
        verdict.stats["metrics"] = metrics_document(recorder)
        return verdict

    if cache is None:
        cache = os.environ.get("REPRO_VERIFY_CACHE", "").strip() or "off"
    # Imported lazily and only on the cache path: the "off" path must
    # stay byte-identical to (and as import-light as) the pre-cache
    # facade.
    if cache != "off":
        from repro.service.cache import VerdictCache, check_cache_mode

        mode = check_cache_mode(cache)
        from repro.service.keys import cache_key as _cache_key

        key = _cache_key(scenario, resolved, overrides)
        with VerdictCache.open(cache_path) as store:
            document = store.get(key)
            if document is not None:
                hit = Verdict.from_document(document)
                hit.cached = True
                hit.cache_key = key
                return hit
            verdict = observed()
            if mode == "readwrite":
                store.put(key, verdict.to_document())
        verdict.cache_key = key
        return verdict
    return observed()
