"""``verify()``: one facade, every backend, one verdict shape.

``verify(scenario, backend="exhaustive"|"fuzz", **overrides)`` resolves
a scenario (by id or object), runs the requested backend with the
scenario's bounds (overridable per call), and normalizes the outcome to
a :class:`~repro.scenarios.scenario.Verdict`:

* ``exhaustive`` — enumerate every interleaving of the plan through the
  snapshot engine (:func:`repro.sim.explore.check_all_histories`).  A
  completed enumeration is a depth-bounded *proof* (``certainty:
  "proof"``); blowing the configuration budget is reported as the
  ``budget-exhausted`` outcome instead of an exception.
* ``fuzz`` — sample seeded random interleavings
  (:func:`repro.fuzz.driver.fuzz_workload`); a clean run is *horizon*
  evidence only (``certainty: "horizon"``).

Either way a found violation is ddmin-shrunk (unless ``shrink=False``),
re-executed on a fresh plain runtime independent of the snapshot
machinery, and attached as a replayable
:class:`~repro.fuzz.trace.ReplayTrace` — the same artifact
``python -m repro fuzz --replay`` consumes.

Unknown override keys and overrides the chosen backend cannot honour
raise :class:`~repro.util.errors.UsageError` (exit code 2 at the CLI)
rather than being silently dropped.
"""

from __future__ import annotations

import time

from typing import Any, Dict, Optional, Tuple, Union

from repro.engine.frontier import SearchBudgetExceeded
from repro.objects.opacity import (
    SearchBudgetExceeded as CheckerBudgetExceeded,
)
from repro.fuzz.driver import fuzz_workload
from repro.fuzz.shrink import shrink_schedule
from repro.fuzz.trace import ReplayTrace, replay_schedule
from repro.scenarios.registry import get_scenario
from repro.scenarios.scenario import Scenario, Verdict
from repro.sim.explore import check_all_histories
from repro.util.errors import UsageError, unknown_choice

#: The verification backends the facade dispatches on.
BACKENDS = ("exhaustive", "fuzz")

#: Overrides each backend honours (everything else is an error).
_EXHAUSTIVE_OVERRIDES = (
    "max_depth",
    "max_configurations",
    "mode",
    "processes",
    "shrink",
    "crash",  # accepted only as none: the enumerated space is crash-free
)
_FUZZ_OVERRIDES = (
    "seed",
    "iterations",
    "max_depth",
    "crash",
    "shrink",
    "crash_probability",
    "corpus_size",
    "min_corpus_depth",
    "explore_every",
)

#: Sampling knobs only the fuzz backend understands.  Auto-mode callers
#: (the CLI, the ``verify`` experiment) drop these for scenarios that
#: resolve to the exhaustive backend instead of erroring — ``crash`` is
#: deliberately NOT here: a crash model changes the verified space, so
#: an exhaustive cell must fail loudly rather than silently run
#: crash-free.
FUZZ_ONLY_OVERRIDES = tuple(
    key for key in _FUZZ_OVERRIDES if key not in _EXHAUSTIVE_OVERRIDES and key != "crash"
)

#: The mirror image: budget knobs only the exhaustive backend
#: understands, dropped by auto-mode callers for fuzz-resolved
#: scenarios so one override set can serve a mixed-backend list.
EXHAUSTIVE_ONLY_OVERRIDES = tuple(
    key for key in _EXHAUSTIVE_OVERRIDES if key not in _FUZZ_OVERRIDES
)

#: The budget exceptions the exhaustive backend folds into the
#: ``budget-exhausted`` outcome: the engine's configuration budget and
#: the opacity checker's per-history serialization-search budget (two
#: distinct classes sharing a name).
_BUDGET_ERRORS = (SearchBudgetExceeded, CheckerBudgetExceeded)


def resolve_backend(scenario: Union[str, Scenario], backend: str) -> str:
    """Resolve ``"auto"`` to a concrete backend: ``exhaustive`` for
    scenarios tagged ``small`` (a full proof is affordable there),
    ``fuzz`` otherwise.  Concrete backends pass through unchanged."""
    if backend == "auto":
        return "exhaustive" if get_scenario(scenario).small else "fuzz"
    return backend


def _expected(scenario: Scenario, outcome: str) -> bool:
    """A budget-exhausted run is never the expected verdict; otherwise
    the outcome must match the scenario's declared expectation."""
    if outcome == "budget-exhausted":
        return False
    return (outcome == "violated") == scenario.expect_violation


def _check_overrides(backend: str, overrides: Dict[str, Any], known) -> None:
    for key in overrides:
        if key not in known:
            raise unknown_choice(f"{backend!r}-backend verify override", key, known)


def _counterexample(
    scenario: Scenario,
    schedule: Tuple,
    reason: Optional[str],
    seed: Optional[int],
    shrink: bool,
) -> Tuple[ReplayTrace, Dict[str, Any]]:
    """Minimize (optionally), replay-verify, and package a violation.

    ``reason=None`` derives the recorded failure reason from the replay
    verdict (the exhaustive backend's path — the enumeration does not
    keep the failing verdict, and re-checking a deep history just for
    its reason would repeat the most expensive check of the run).
    """
    stats: Dict[str, Any] = {"counterexample_length": len(schedule)}
    replay = None
    try:
        if shrink:
            shrunk = shrink_schedule(
                scenario.factory, scenario.plan, schedule,
                scenario.safety_factory(),
            )
            schedule = shrunk.schedule
            stats["shrunk_from"] = shrunk.original_length
            stats["counterexample_length"] = len(schedule)
        replay = replay_schedule(
            scenario.factory, scenario.plan, schedule, scenario.safety_factory()
        )
        stats["counterexample_replays"] = replay.violates
    except _BUDGET_ERRORS as exc:
        # The violation itself stands (the real checker judged a real
        # history); only minimization/replay of *candidate* schedules
        # blew the checker's search budget.  Keep the best witness we
        # have and record why the follow-up checks are missing.
        stats["witness_check_error"] = str(exc)
    if reason is None:
        reason = (
            replay.verdict.reason or ""
            if replay is not None and replay.verdict is not None
            else ""
        )
    trace = ReplayTrace(
        plan=scenario.plan,
        schedule=tuple(schedule),
        workload=scenario.scenario_id,
        implementation=getattr(scenario.factory(), "name", None),
        safety=getattr(scenario.safety_factory(), "name", None),
        holds=False,
        reason=reason,
        seed=seed,
    )
    return trace, stats


def _verify_exhaustive(scenario: Scenario, overrides: Dict[str, Any]) -> Verdict:
    _check_overrides("exhaustive", overrides, _EXHAUSTIVE_OVERRIDES)
    crash = overrides.get("crash")
    if crash not in (None, "", "none"):
        raise UsageError(
            f"the exhaustive backend enumerates the crash-free schedule "
            f"space; a crash model (got {crash!r}) only applies to "
            "backend='fuzz'"
        )
    bounds = scenario.bounds.override(
        max_depth=overrides.get("max_depth"),
        max_configurations=overrides.get("max_configurations"),
    )
    mode = overrides.get("mode", "snapshot")
    stats: Dict[str, Any] = {
        "max_depth": bounds.max_depth,
        "max_configurations": bounds.max_configurations,
        "mode": mode,
    }
    started = time.perf_counter()
    try:
        report = check_all_histories(
            scenario.factory,
            scenario.plan,
            scenario.safety_factory(),
            max_depth=bounds.max_depth,
            max_configurations=bounds.max_configurations,
            mode=mode,
            processes=int(overrides.get("processes", 0)),
        )
    except _BUDGET_ERRORS as exc:
        stats["elapsed"] = round(time.perf_counter() - started, 4)
        stats["error"] = str(exc)
        return Verdict(
            scenario_id=scenario.scenario_id,
            backend="exhaustive",
            outcome="budget-exhausted",
            expected=_expected(scenario, "budget-exhausted"),
            stats=stats,
        )
    stats["elapsed"] = round(time.perf_counter() - started, 4)
    stats["runs_checked"] = report.runs_checked
    if report.counterexample is None:
        stats["certainty"] = "proof"
        return Verdict(
            scenario_id=scenario.scenario_id,
            backend="exhaustive",
            outcome="holds",
            expected=_expected(scenario, "holds"),
            stats=stats,
        )
    run = report.counterexample
    trace, witness_stats = _counterexample(
        scenario,
        run.schedule,
        reason=None,  # derived from the replay verdict
        seed=None,
        shrink=bool(overrides.get("shrink", True)),
    )
    stats.update(witness_stats)
    stats["reason"] = trace.reason
    return Verdict(
        scenario_id=scenario.scenario_id,
        backend="exhaustive",
        outcome="violated",
        expected=_expected(scenario, "violated"),
        stats=stats,
        counterexample=trace,
    )


def _verify_fuzz(scenario: Scenario, overrides: Dict[str, Any]) -> Verdict:
    _check_overrides("fuzz", overrides, _FUZZ_OVERRIDES)
    bounds = scenario.bounds.override(
        max_depth=overrides.get("max_depth"),
        iterations=overrides.get("iterations"),
    )
    seed = overrides.get("seed", 0)
    crash = overrides.get("crash", scenario.crash)
    options = {
        key: overrides[key]
        for key in (
            "crash_probability",
            "corpus_size",
            "min_corpus_depth",
            "explore_every",
        )
        if key in overrides
    }
    try:
        report = fuzz_workload(
            scenario,
            seed=seed,
            iterations=bounds.iterations,
            max_depth=bounds.max_depth,
            crash=crash,
            **options,
        )
    except CheckerBudgetExceeded as exc:
        # The safety checker's own search budget (e.g. the opacity
        # serialization search) folds into the same explicit outcome.
        return Verdict(
            scenario_id=scenario.scenario_id,
            backend="fuzz",
            outcome="budget-exhausted",
            expected=_expected(scenario, "budget-exhausted"),
            stats={
                "seed": seed,
                "iterations": bounds.iterations,
                "max_depth": bounds.max_depth,
                "error": str(exc),
            },
        )
    stats: Dict[str, Any] = {
        "seed": report.seed,
        "iterations": report.iterations,
        "max_depth": bounds.max_depth,
        "interleavings": report.interleavings,
        "coverage": report.coverage,
        "corpus": report.corpus,
        "histories_checked": report.histories_checked,
        "elapsed": round(report.elapsed, 4),
        "interleavings_per_second": round(report.interleavings_per_second, 1),
    }
    if crash:
        stats["crash"] = crash
    if report.violation is None:
        stats["certainty"] = "horizon"
        return Verdict(
            scenario_id=scenario.scenario_id,
            backend="fuzz",
            outcome="holds",
            expected=_expected(scenario, "holds"),
            stats=stats,
        )
    stats["violation_iteration"] = report.violation.iteration
    stats["reason"] = report.violation.reason
    trace, witness_stats = _counterexample(
        scenario,
        report.violation.schedule,
        report.violation.reason,
        seed=report.seed,
        shrink=bool(overrides.get("shrink", True)),
    )
    stats.update(witness_stats)
    return Verdict(
        scenario_id=scenario.scenario_id,
        backend="fuzz",
        outcome="violated",
        expected=_expected(scenario, "violated"),
        stats=stats,
        counterexample=trace,
    )


def verify(
    scenario: Union[str, Scenario],
    backend: str = "exhaustive",
    **overrides: Any,
) -> Verdict:
    """Verify one scenario under one backend; see the module docstring.

    ``backend="auto"`` picks ``exhaustive`` for scenarios tagged
    ``small`` (a full proof is affordable there) and ``fuzz``
    otherwise — the CLI default.
    """
    scenario = get_scenario(scenario)
    backend = resolve_backend(scenario, backend)
    if backend not in BACKENDS:
        raise unknown_choice("verify backend", backend, BACKENDS + ("auto",))
    if backend == "exhaustive":
        return _verify_exhaustive(scenario, overrides)
    return _verify_fuzz(scenario, overrides)
