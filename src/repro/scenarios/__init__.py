"""First-class scenarios: one declarative registry, every backend.

A :class:`Scenario` is the unit of verification everywhere in this
repository: a named bundle of (implementation factory, invocation
plan, safety property, scheduler/crash policy, bounds, tags).  The
process-global registry (:func:`register` / :func:`get_scenario` /
:func:`iter_scenarios`) is populated by :mod:`repro.scenarios.catalog`
at import time, and the :func:`verify` facade runs any scenario under
any backend — the exhaustive snapshot engine or the coverage-guided
fuzzer — returning one uniform :class:`Verdict` (holds / violated /
budget-exhausted, stats, a replayable counterexample trace).

Consumers: the experiment evaluators (:mod:`repro.analysis`), the fuzz
CLI and differential oracle, campaign grids (cells reference scenarios
by id), and ``python -m repro scenarios list`` / ``verify``.
"""

from repro.scenarios.scenario import (
    OUTCOMES,
    TAG_EXHAUSTIBLE,
    TAG_FAMILY,
    TAG_LIVENESS,
    TAG_SATISFYING,
    TAG_SMALL,
    TAG_VIOLATING,
    Bounds,
    Scenario,
    Verdict,
)
from repro.scenarios.registry import (
    get_scenario,
    iter_scenarios,
    register,
    scenario_ids,
    unregister,
)
from repro.scenarios.verify import (
    BACKENDS,
    EXHAUSTIVE_ONLY_OVERRIDES,
    FUZZ_ONLY_OVERRIDES,
    resolve_backend,
    verify,
)
from repro.scenarios import catalog as _catalog  # populate the registry
from repro.scenarios.families import (  # expand the generated families
    ScenarioFamily,
    family_ids,
    get_family,
    iter_families,
    materialize,
    register_family,
)

__all__ = [
    "BACKENDS",
    "EXHAUSTIVE_ONLY_OVERRIDES",
    "FUZZ_ONLY_OVERRIDES",
    "Bounds",
    "OUTCOMES",
    "Scenario",
    "ScenarioFamily",
    "TAG_EXHAUSTIBLE",
    "TAG_FAMILY",
    "TAG_LIVENESS",
    "TAG_SATISFYING",
    "TAG_SMALL",
    "TAG_VIOLATING",
    "Verdict",
    "family_ids",
    "get_family",
    "get_scenario",
    "iter_families",
    "iter_scenarios",
    "materialize",
    "register",
    "register_family",
    "resolve_backend",
    "scenario_ids",
    "unregister",
    "verify",
]
