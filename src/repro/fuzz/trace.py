"""Replayable schedule traces: the fuzzer's counterexample artifact.

A violating fuzz run is persisted as a small JSON document — the
invocation plan plus the labelled schedule that reached the violation —
and replayed through the ordinary simulation runtime
(:class:`~repro.sim.runtime.Runtime` driving a
:class:`~repro.sim.drivers.ScriptedDriver`), i.e. through a code path
entirely independent of the engine's snapshot machinery.  A trace is
therefore both a regression artifact (check it into a bug report, replay
it anywhere) and a soundness check: a violation that does not reproduce
under plain replay would indicate an engine bug, not an implementation
bug.

Schedule labels are the exploration engine's
(:data:`repro.sim.explore.Choice` plus crash): ``("invoke", pid)``
issues the process's next planned invocation, ``("step", pid)``
advances its pending operation by one primitive, ``("crash", pid)``
crashes it.

Trace document (format version 1)::

    {
      "format": "repro-fuzz-trace", "version": 1,
      "workload": "stubborn-consensus",        # optional registry name
      "implementation": "stubborn-consensus",  # informational
      "plan": {"0": [["propose", [0]]], "1": [["propose", [1]]]},
      "schedule": [["invoke", 0], ["step", 0], ...],
      "safety": "agreement-validity",          # informational
      "holds": false,                          # recorded verdict
      "reason": "...",                         # recorded failure reason
      "seed": 2025                             # fuzz seed (optional)
    }
"""

from __future__ import annotations

import json

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.history import History
from repro.core.properties import SafetyProperty, Verdict
from repro.sim.drivers import (
    CrashDecision,
    Decision,
    InvokeDecision,
    ScriptedDriver,
    StepDecision,
)
from repro.sim.explore import Choice, InvocationPlan
from repro.sim.runtime import Runtime
from repro.util.errors import SimulationError, UsageError

TRACE_FORMAT = "repro-fuzz-trace"
TRACE_VERSION = 1


def _plain(value: Any) -> Any:
    """Tuples to lists, recursively (JSON encoding)."""
    if isinstance(value, (tuple, list)):
        return [_plain(part) for part in value]
    return value


def _tupled(value: Any) -> Any:
    """Lists to tuples, recursively (JSON decoding; invocation args must
    be hashable)."""
    if isinstance(value, list):
        return tuple(_tupled(part) for part in value)
    return value


def schedule_to_decisions(
    plan: InvocationPlan, schedule: Sequence[Choice]
) -> List[Decision]:
    """Translate a labelled schedule into runtime decisions.

    ``("invoke", pid)`` consumes the process's next planned invocation
    (a per-pid cursor over ``plan``); over-running the plan raises
    :class:`~repro.util.errors.SimulationError` like any other invalid
    schedule, so shrink candidates that drop too much fail cleanly.
    """
    cursors: Dict[int, int] = {pid: 0 for pid in plan}
    decisions: List[Decision] = []
    for label in schedule:
        kind, pid = label[0], int(label[1])
        if kind == "invoke":
            cursor = cursors.get(pid, 0)
            if pid not in plan or cursor >= len(plan[pid]):
                raise SimulationError(
                    f"schedule invokes p{pid} beyond its plan (cursor {cursor})"
                )
            operation, args = plan[pid][cursor]
            cursors[pid] = cursor + 1
            decisions.append(InvokeDecision(pid, operation, tuple(args)))
        elif kind == "step":
            decisions.append(StepDecision(pid))
        elif kind == "crash":
            decisions.append(CrashDecision(pid))
        else:
            raise UsageError(f"unknown schedule label kind {kind!r}")
    return decisions


@dataclass
class ReplayResult:
    """Outcome of replaying a schedule through the plain runtime."""

    history: History
    verdict: Optional[Verdict]
    valid: bool
    error: Optional[str] = None

    @property
    def violates(self) -> bool:
        """Replayed validly and the safety property failed."""
        return self.valid and self.verdict is not None and not self.verdict.holds


def replay_schedule(
    factory,
    plan: InvocationPlan,
    schedule: Sequence[Choice],
    safety: Optional[SafetyProperty] = None,
) -> ReplayResult:
    """Re-execute a labelled schedule from scratch on a fresh runtime.

    An invalid schedule (stepping an idle process, invoking past the
    plan, …) yields ``valid=False`` rather than raising — the shrinker
    treats invalidity as "candidate rejected".
    """
    try:
        decisions = schedule_to_decisions(plan, schedule)
    except SimulationError as exc:
        return ReplayResult(History(), None, valid=False, error=str(exc))
    runtime = Runtime(
        factory(),
        ScriptedDriver(decisions, name="fuzz-replay"),
        max_steps=len(decisions) + 1,
        detect_lasso=False,
    )
    try:
        result = runtime.run()
    except SimulationError as exc:
        return ReplayResult(History(), None, valid=False, error=str(exc))
    verdict = safety.check_history(result.history) if safety is not None else None
    return ReplayResult(result.history, verdict, valid=True)


@dataclass
class ReplayTrace:
    """The persisted counterexample artifact (see module docstring)."""

    plan: InvocationPlan
    schedule: Tuple[Choice, ...]
    workload: Optional[str] = None
    implementation: Optional[str] = None
    safety: Optional[str] = None
    holds: Optional[bool] = None
    reason: str = ""
    seed: Optional[int] = None

    def to_document(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "plan": {
                str(pid): [[op, _plain(args)] for op, args in ops]
                for pid, ops in sorted(self.plan.items())
            },
            "schedule": [[kind, pid] for kind, pid in self.schedule],
        }
        for key in ("workload", "implementation", "safety", "holds", "seed"):
            value = getattr(self, key)
            if value is not None:
                document[key] = value
        if self.reason:
            document["reason"] = self.reason
        return document

    def to_json(self) -> str:
        return json.dumps(self.to_document(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "ReplayTrace":
        if document.get("format") != TRACE_FORMAT:
            raise UsageError(
                f"not a {TRACE_FORMAT} document (format="
                f"{document.get('format')!r})"
            )
        if document.get("version") != TRACE_VERSION:
            raise UsageError(
                f"unsupported trace version {document.get('version')!r} "
                f"(this build reads version {TRACE_VERSION})"
            )
        plan: InvocationPlan = {
            int(pid): [(op, _tupled(args)) for op, args in ops]
            for pid, ops in document["plan"].items()
        }
        schedule = tuple(
            (str(kind), int(pid)) for kind, pid in document["schedule"]
        )
        return cls(
            plan=plan,
            schedule=schedule,
            workload=document.get("workload"),
            implementation=document.get("implementation"),
            safety=document.get("safety"),
            holds=document.get("holds"),
            reason=document.get("reason", ""),
            seed=document.get("seed"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ReplayTrace":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise UsageError(f"bad trace JSON: {exc}") from None
        return cls.from_document(document)


def save_trace(path: str, trace: ReplayTrace) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace.to_json())


def load_trace(path: str) -> ReplayTrace:
    with open(path, "r", encoding="utf-8") as handle:
        return ReplayTrace.from_json(handle.read())


# ---------------------------------------------------------------------------
# Lasso traces: the liveness backend's counterexample artifact
# ---------------------------------------------------------------------------

LASSO_FORMAT = "repro-lasso-trace"
LASSO_VERSION = 1


def decisions_to_labels(decisions: Sequence[Decision]) -> List[List[Any]]:
    """Encode full runtime decisions as JSON-safe labels.

    Unlike schedule labels (which resolve invocations through a plan
    cursor), lasso traces carry the operations and arguments verbatim —
    adversary strategies compute invocation arguments from earlier
    responses, so there is no static plan to resolve against.
    Encodings: ``["invoke", pid, operation, [args]]``,
    ``["step", pid]``, ``["crash", pid]``.
    """
    labels: List[List[Any]] = []
    for decision in decisions:
        if isinstance(decision, InvokeDecision):
            labels.append(
                ["invoke", decision.pid, decision.operation, _plain(decision.args)]
            )
        elif isinstance(decision, StepDecision):
            labels.append(["step", decision.pid])
        elif isinstance(decision, CrashDecision):
            labels.append(["crash", decision.pid])
        else:
            raise UsageError(f"cannot encode decision {decision!r}")
    return labels


def labels_to_decisions(labels: Sequence[Sequence[Any]]) -> List[Decision]:
    """Decode :func:`decisions_to_labels` output."""
    decisions: List[Decision] = []
    for label in labels:
        kind = label[0]
        if kind == "invoke":
            _, pid, operation, args = label
            decisions.append(InvokeDecision(int(pid), str(operation), _tupled(args)))
        elif kind == "step":
            decisions.append(StepDecision(int(label[1])))
        elif kind == "crash":
            decisions.append(CrashDecision(int(label[1])))
        else:
            raise UsageError(f"unknown decision label kind {kind!r}")
    return decisions


@dataclass
class LassoTrace:
    """A serialized starvation certificate: ``stem · cycle^ω``.

    The liveness counterpart of :class:`ReplayTrace`.  ``stem`` and
    ``cycle`` are full decision labels (see :func:`decisions_to_labels`);
    replaying them through the plain runtime re-verifies the state
    repetition under ``fingerprint_kind`` (``"exact"``/``"abstract"``,
    or ``"finite"`` for a complete fair finite execution with an empty
    cycle) and that the ``starving`` processes receive no good response
    inside the cycle.

    Trace document (format version 1)::

        {
          "format": "repro-lasso-trace", "version": 1,
          "scenario": "trivial-local-progress-f1",   # registry id
          "implementation": "trivial-tm",            # informational
          "liveness": "local-progress",              # property name
          "fingerprint_kind": "exact",               # exact|abstract|finite
          "stem": [["invoke", 0, "start", []], ["step", 0]],
          "cycle": [["invoke", 0, "start", []], ["step", 0]],
          "starving": [0],                           # starving processes
          "reason": "correct processes [0] make no progress"
        }
    """

    stem: Tuple[Tuple[Any, ...], ...]
    cycle: Tuple[Tuple[Any, ...], ...]
    fingerprint_kind: str
    scenario: Optional[str] = None
    implementation: Optional[str] = None
    liveness: Optional[str] = None
    starving: Tuple[int, ...] = ()
    reason: str = ""

    def stem_decisions(self) -> List[Decision]:
        return labels_to_decisions(self.stem)

    def cycle_decisions(self) -> List[Decision]:
        return labels_to_decisions(self.cycle)

    def replay(self, factory):
        """Re-execute the certificate on a fresh plain runtime.

        Returns :class:`repro.sim.lasso_shrink.LassoReplayResult`; the
        certificate stands iff ``result.certifies(self.fingerprint_kind)``
        and the starving processes collected no good response in the
        cycle (finite kind: none at all).
        """
        from repro.sim.lasso_shrink import replay_lasso

        return replay_lasso(
            factory,
            self.stem_decisions(),
            self.cycle_decisions(),
            self.fingerprint_kind,
        )

    def to_document(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "format": LASSO_FORMAT,
            "version": LASSO_VERSION,
            "fingerprint_kind": self.fingerprint_kind,
            "stem": [_plain(label) for label in self.stem],
            "cycle": [_plain(label) for label in self.cycle],
            "starving": list(self.starving),
        }
        for key in ("scenario", "implementation", "liveness"):
            value = getattr(self, key)
            if value is not None:
                document[key] = value
        if self.reason:
            document["reason"] = self.reason
        return document

    def to_json(self) -> str:
        return json.dumps(self.to_document(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "LassoTrace":
        if document.get("format") != LASSO_FORMAT:
            raise UsageError(
                f"not a {LASSO_FORMAT} document (format="
                f"{document.get('format')!r})"
            )
        if document.get("version") != LASSO_VERSION:
            raise UsageError(
                f"unsupported lasso trace version {document.get('version')!r} "
                f"(this build reads version {LASSO_VERSION})"
            )
        return cls(
            stem=tuple(_tupled(label) for label in document["stem"]),
            cycle=tuple(_tupled(label) for label in document["cycle"]),
            fingerprint_kind=document["fingerprint_kind"],
            scenario=document.get("scenario"),
            implementation=document.get("implementation"),
            liveness=document.get("liveness"),
            starving=tuple(int(pid) for pid in document.get("starving", [])),
            reason=document.get("reason", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "LassoTrace":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise UsageError(f"bad lasso trace JSON: {exc}") from None
        return cls.from_document(document)


def save_lasso_trace(path: str, trace: LassoTrace) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace.to_json())


def load_lasso_trace(path: str) -> LassoTrace:
    with open(path, "r", encoding="utf-8") as handle:
        return LassoTrace.from_json(handle.read())
