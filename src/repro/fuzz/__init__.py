"""Randomized schedule/crash fuzzing over the simulation kernel.

The randomized counterpart of the exhaustive exploration engine: where
:mod:`repro.sim.explore` enumerates every schedule of an invocation
plan, this subsystem *samples* schedules, crash patterns, and swarm-
mutated schedulers at high rate, steered by a configuration-fingerprint
coverage map — opening the large-instance regime exhaustive search
cannot reach, while the differential oracle keeps the two layers
honest against each other on small instances.

Fuzz targets are the declarative scenarios of :mod:`repro.scenarios`
(one registry feeding both backends); this package stays *below* the
scenario layer and takes scenario objects as plain inputs.

* :mod:`repro.fuzz.driver` — :class:`FuzzDriver`: snapshot-restart
  sampling with swarm scheduler mutation, crash-point injection, and
  coverage-guided corpus restarts;
* :mod:`repro.fuzz.shrink` — ddmin minimization of violating schedules
  to locally minimal, replay-verified traces;
* :mod:`repro.fuzz.trace` — the JSON replay artifacts (schedule
  counterexamples and the liveness backend's lasso certificates),
  replayed through the plain :mod:`repro.sim.runtime` (independent of
  the engine);
* :mod:`repro.fuzz.oracle` — fuzz-vs-exhaustive verdict comparison.
"""

from repro.fuzz.driver import FuzzDriver, FuzzReport, FuzzViolation, fuzz_workload
from repro.fuzz.oracle import OracleResult, differential_check, differential_sweep
from repro.fuzz.shrink import ShrinkResult, shrink_schedule
from repro.fuzz.trace import (
    LassoTrace,
    ReplayResult,
    ReplayTrace,
    decisions_to_labels,
    labels_to_decisions,
    load_lasso_trace,
    load_trace,
    replay_schedule,
    save_lasso_trace,
    save_trace,
    schedule_to_decisions,
)

__all__ = [
    "FuzzDriver",
    "FuzzReport",
    "FuzzViolation",
    "LassoTrace",
    "OracleResult",
    "ReplayResult",
    "ReplayTrace",
    "ShrinkResult",
    "decisions_to_labels",
    "differential_check",
    "differential_sweep",
    "fuzz_workload",
    "labels_to_decisions",
    "load_lasso_trace",
    "load_trace",
    "replay_schedule",
    "save_lasso_trace",
    "save_trace",
    "schedule_to_decisions",
    "shrink_schedule",
]
