"""Randomized schedule/crash fuzzing over the simulation kernel.

The randomized counterpart of the exhaustive exploration engine: where
:mod:`repro.sim.explore` enumerates every schedule of an invocation
plan, this subsystem *samples* schedules, crash patterns, and swarm-
mutated schedulers at high rate, steered by a configuration-fingerprint
coverage map — opening the large-instance regime exhaustive search
cannot reach, while the differential oracle keeps the two layers
honest against each other on small instances.

* :mod:`repro.fuzz.workloads` — named instances (implementation, plan,
  safety, expectations);
* :mod:`repro.fuzz.driver` — :class:`FuzzDriver`: snapshot-restart
  sampling with swarm scheduler mutation, crash-point injection, and
  coverage-guided corpus restarts;
* :mod:`repro.fuzz.shrink` — ddmin minimization of violating schedules
  to locally minimal, replay-verified traces;
* :mod:`repro.fuzz.trace` — the JSON replay artifact, replayed through
  the plain :mod:`repro.sim.runtime` (independent of the engine);
* :mod:`repro.fuzz.oracle` — fuzz-vs-exhaustive verdict comparison.
"""

from repro.fuzz.driver import FuzzDriver, FuzzReport, FuzzViolation, fuzz_workload
from repro.fuzz.oracle import OracleResult, differential_check, differential_sweep
from repro.fuzz.shrink import ShrinkResult, shrink_schedule
from repro.fuzz.trace import (
    ReplayResult,
    ReplayTrace,
    load_trace,
    replay_schedule,
    save_trace,
    schedule_to_decisions,
)
from repro.fuzz.workloads import (
    FUZZ_WORKLOADS,
    FuzzWorkload,
    get_workload,
    oracle_workloads,
)

__all__ = [
    "FUZZ_WORKLOADS",
    "FuzzDriver",
    "FuzzReport",
    "FuzzViolation",
    "FuzzWorkload",
    "OracleResult",
    "ReplayResult",
    "ReplayTrace",
    "ShrinkResult",
    "differential_check",
    "differential_sweep",
    "fuzz_workload",
    "get_workload",
    "load_trace",
    "oracle_workloads",
    "replay_schedule",
    "save_trace",
    "schedule_to_decisions",
    "shrink_schedule",
]
