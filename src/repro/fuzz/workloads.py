"""Named fuzz instances: (implementation, invocation plan, safety).

A fuzz *workload* bundles everything one fuzzing campaign needs — a
fresh-implementation factory, the invocation plan whose schedules are
sampled, and the safety property that judges each sampled history —
plus two bits of metadata: whether a violation is *expected* (the
registry deliberately includes the faulty consensus fixtures as planted
violations), and whether the instance is small enough for the
exhaustive engine, which is what makes it usable by the differential
oracle (:mod:`repro.fuzz.oracle`).

The plans mirror the exhaustive benchmarks (``benchmarks/
engine_timing.py``), so ``agp-opacity`` here is the same instance whose
snapshot-vs-replay timings ``BENCH_engine.json`` records — fuzz-vs-
exhaustive throughput comparisons are therefore like for like.  The
``-deep`` and 3-process variants open the regime exhaustive search
cannot reach; they are fuzz-only (``small=False``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.algorithms.consensus import (
    CasConsensus,
    CommitAdoptConsensus,
    InventingConsensus,
    StubbornConsensus,
)
from repro.algorithms.tm import AgpTransactionalMemory, I12TransactionalMemory
from repro.core.properties import SafetyProperty
from repro.objects.consensus import AgreementValidity
from repro.objects.opacity import OpacityChecker
from repro.sim.explore import InvocationPlan
from repro.sim.kernel import Implementation
from repro.util.errors import UsageError

PROPOSE_PLAN: InvocationPlan = {0: [("propose", (0,))], 1: [("propose", (1,))]}

TM_PLAN: InvocationPlan = {
    0: [("start", ()), ("write", (0, 1)), ("tryC", ())],
    1: [("start", ()), ("read", (0,)), ("tryC", ())],
}

TM_DEEP_PLAN: InvocationPlan = {
    0: [("start", ()), ("write", (0, 1)), ("tryC", ()), ("start", ()), ("tryC", ())],
    1: [("start", ()), ("read", (0,)), ("tryC", ())],
}

TM_3P_PLAN: InvocationPlan = {
    0: [("start", ()), ("write", (0, 1)), ("tryC", ())],
    1: [("start", ()), ("read", (0,)), ("write", (0, 2)), ("tryC", ())],
    2: [("start", ()), ("read", (0,)), ("tryC", ())],
}


@dataclass(frozen=True)
class FuzzWorkload:
    """One named fuzz instance."""

    name: str
    factory: Callable[[], Implementation]
    plan: InvocationPlan
    safety_factory: Callable[[], SafetyProperty]
    #: Whether random schedules are expected to expose a safety
    #: violation (the faulty fixtures) or not (the real algorithms).
    expect_violation: bool
    #: Small enough for the exhaustive engine — eligible for the
    #: differential oracle.
    small: bool
    notes: str = ""


def _workload_list() -> List[FuzzWorkload]:
    return [
        FuzzWorkload(
            name="cas-consensus",
            factory=lambda: CasConsensus(2),
            plan=PROPOSE_PLAN,
            safety_factory=AgreementValidity,
            expect_violation=False,
            small=True,
            notes="wait-free consensus; satisfying oracle instance",
        ),
        FuzzWorkload(
            name="commit-adopt-consensus",
            factory=lambda: CommitAdoptConsensus(2),
            plan=PROPOSE_PLAN,
            safety_factory=AgreementValidity,
            expect_violation=False,
            small=False,
            notes="obstruction-free register consensus; its round counter "
            "blows up the depth-64 configuration graph (~7.5k maximal "
            "runs, tens of seconds exhaustive), so it is fuzz-only",
        ),
        FuzzWorkload(
            name="stubborn-consensus",
            factory=lambda: StubbornConsensus(2),
            plan=PROPOSE_PLAN,
            safety_factory=AgreementValidity,
            expect_violation=True,
            small=True,
            notes="planted agreement violation (negative fixture)",
        ),
        FuzzWorkload(
            name="inventing-consensus",
            factory=lambda: InventingConsensus(2),
            plan=PROPOSE_PLAN,
            safety_factory=AgreementValidity,
            expect_violation=True,
            small=True,
            notes="planted validity violation (negative fixture)",
        ),
        FuzzWorkload(
            name="agp-opacity",
            factory=lambda: AgpTransactionalMemory(2, variables=(0,)),
            plan=TM_PLAN,
            safety_factory=OpacityChecker,
            expect_violation=False,
            small=True,
            notes="the BENCH_engine.json reference TM instance",
        ),
        FuzzWorkload(
            name="i12-opacity",
            factory=lambda: I12TransactionalMemory(2, variables=(0,)),
            plan=TM_PLAN,
            safety_factory=OpacityChecker,
            expect_violation=False,
            small=True,
            notes="the paper's Algorithm 1 under the reference TM plan",
        ),
        FuzzWorkload(
            name="agp-opacity-deep",
            factory=lambda: AgpTransactionalMemory(2, variables=(0,)),
            plan=TM_DEEP_PLAN,
            safety_factory=OpacityChecker,
            expect_violation=False,
            small=False,
            notes="double-depth plan; exhaustive search takes ~10s here",
        ),
        FuzzWorkload(
            name="agp-opacity-3p",
            factory=lambda: AgpTransactionalMemory(3, variables=(0,)),
            plan=TM_3P_PLAN,
            safety_factory=OpacityChecker,
            expect_violation=False,
            small=False,
            notes="3-process regime beyond the exhaustive benchmarks",
        ),
    ]


#: The fuzz workload registry, keyed by name.
FUZZ_WORKLOADS: Dict[str, FuzzWorkload] = {
    workload.name: workload for workload in _workload_list()
}


def get_workload(name: str) -> FuzzWorkload:
    """Look up a workload by name; unknown names raise
    :class:`~repro.util.errors.UsageError` listing the known ones."""
    try:
        return FUZZ_WORKLOADS[name]
    except KeyError:
        raise UsageError(
            f"unknown fuzz workload {name!r}; known: {sorted(FUZZ_WORKLOADS)}"
        ) from None


def oracle_workloads() -> List[FuzzWorkload]:
    """The workloads small enough for the differential oracle."""
    return [w for w in FUZZ_WORKLOADS.values() if w.small]
