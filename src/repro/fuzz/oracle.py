"""The differential oracle: fuzzer vs exhaustive engine.

On instances small enough to exhaust, the randomized fuzzer and the
exhaustive engine must tell the same story: either both certify the
safety property over the schedule space, or both produce a violating
interleaving.  :func:`differential_check` runs both on one registered
:class:`~repro.scenarios.scenario.Scenario` and compares:

* **verdict agreement** — ``fuzz.holds == exhaustive.holds``.  A fuzz
  violation on a workload the engine certifies would expose a bug in
  the sampler/snapshot machinery (the fuzzer judges real histories with
  the real checker, so the violating history itself would be the
  smoking gun); a fuzz *miss* on a violating workload means the budget
  or the seeds are inadequate — either way the disagreement is loud.
* **counterexample validity** — a fuzz violation must replay to the
  same verdict through the plain runtime
  (:func:`~repro.fuzz.trace.replay_schedule`), independent of the
  snapshot engine.

Run over several instances (satisfying and violating — the scenarios
tagged ``small``), this turns the two exploration layers into mutual
regression tests: CI asserts agreement under fixed seeds on every push.

Scenario lookups import :mod:`repro.scenarios` lazily: the scenario
layer sits *above* fuzz (its verify facade drives this module), so the
package-level dependency must point only one way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.fuzz.driver import FuzzReport, fuzz_workload
from repro.fuzz.trace import replay_schedule
from repro.sim.explore import check_all_histories
from repro.util.errors import UsageError


@dataclass
class OracleResult:
    """Fuzz-vs-exhaustive comparison on one small scenario."""

    workload: str
    exhaustive_holds: bool
    exhaustive_runs: int
    fuzz: FuzzReport
    #: ``None`` when the fuzzer found no violation; else whether the
    #: violating schedule replayed to a failing verdict independently.
    counterexample_replays: Optional[bool]

    @property
    def fuzz_holds(self) -> bool:
        return self.fuzz.holds

    @property
    def agree(self) -> bool:
        """Verdicts match, and any fuzz counterexample is replay-valid."""
        if self.exhaustive_holds != self.fuzz_holds:
            return False
        return self.counterexample_replays in (None, True)


def differential_check(
    workload,
    seed: object = 0,
    iterations: int = 2_000,
    max_depth: int = 64,
    max_configurations: int = 200_000,
    **fuzz_options,
) -> OracleResult:
    """Cross-check fuzzer and exhaustive verdicts on one scenario
    (a :class:`~repro.scenarios.scenario.Scenario` or a registered
    id)."""
    if isinstance(workload, str):
        from repro.scenarios import get_scenario

        workload = get_scenario(workload)
    if not workload.small:
        raise UsageError(
            f"scenario {workload.name!r} is not small enough for the "
            "exhaustive oracle (not tagged 'small'); fuzz it without "
            "--oracle"
        )
    # The oracle compares verdicts over the *crash-free* schedule space
    # (the space the exhaustive engine enumerates), so random crash
    # injection is off unless the caller explicitly re-enables it.
    fuzz_options.setdefault("crash_probability", 0.0)
    exhaustive = check_all_histories(
        workload.factory,
        workload.plan,
        workload.safety_factory(),
        max_depth=max_depth,
        max_configurations=max_configurations,
        mode="snapshot",
    )
    report = fuzz_workload(
        workload,
        seed=seed,
        iterations=iterations,
        max_depth=max_depth,
        **fuzz_options,
    )
    replays: Optional[bool] = None
    if report.violation is not None:
        replay = replay_schedule(
            workload.factory,
            workload.plan,
            report.violation.schedule,
            workload.safety_factory(),
        )
        replays = replay.violates
    return OracleResult(
        workload=workload.name,
        exhaustive_holds=exhaustive.holds,
        exhaustive_runs=exhaustive.runs_checked,
        fuzz=report,
        counterexample_replays=replays,
    )


def differential_sweep(
    workloads: Optional[List[Union[object, str]]] = None,
    seed: object = 0,
    iterations: int = 2_000,
    **options,
) -> List[OracleResult]:
    """Run the oracle over several scenarios (default: everything
    tagged ``small`` in the registry)."""
    if workloads is None:
        from repro.scenarios import iter_scenarios

        workloads = list(iter_scenarios(tags="small"))
    return [
        differential_check(workload, seed=seed, iterations=iterations, **options)
        for workload in workloads
    ]
